//! RocksDB-style stats report (DESIGN.md §8b).
//!
//! [`Db::stats_report`] freezes one shard's shape into a [`StatsReport`]:
//! a per-level table (files, bytes, compaction score), write/read
//! amplification, stall attribution, and a remote-memory section covering
//! the CN-controlled flush zone and live extents by GC origin. `Display`
//! renders the familiar `** Compaction Stats **`-style table; `db_bench`
//! dumps it at the end of a run and the chaos oracle dumps it on failure.
//!
//! The whole report is built from ONE pinned version, with extent lengths
//! rounded to the allocator's 8-byte granule — so `total_bytes()`
//! reconciles exactly with [`Db::live_extents`] accounting.

use std::time::Duration;

use crate::compaction::level_score;
use crate::db::Db;
use crate::handle::Origin;
use crate::shard::ShardedDb;
use crate::stats::DbStatsSnapshot;
use crate::telemetry::StallReason;

/// One level's row in the report.
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Level number (0 = freshest).
    pub level: usize,
    /// Table count.
    pub files: usize,
    /// Bytes, rounded to the allocator's 8-byte granule per table.
    pub bytes: u64,
    /// Compaction pressure (≥ 1.0 ⇒ over trigger); see
    /// [`crate::compaction::level_score`].
    pub score: f64,
}

/// A frozen per-shard stats report.
#[derive(Debug, Clone)]
pub struct StatsReport {
    /// Per-level rows, `L0` first.
    pub levels: Vec<LevelStats>,
    /// Bytes in the current MemTable's arena.
    pub memtable_bytes: u64,
    /// Configured MemTable rotation threshold.
    pub memtable_limit: u64,
    /// Entries in the current MemTable.
    pub memtable_entries: u64,
    /// Sequence numbers left in the current table's pre-assigned range.
    pub seq_headroom: u64,
    /// Immutable MemTables awaiting flush.
    pub imm_count: usize,
    /// MemTables enqueued to flush workers.
    pub flush_queue_len: usize,
    /// Time since `Db::open`.
    pub uptime: Duration,
    /// `(flush_bytes + compaction_bytes_out) / flush_bytes` — how many
    /// times each flushed byte is rewritten, including its first write.
    pub write_amp: f64,
    /// Static worst-case point-read amplification: L0 table count plus
    /// one probe per non-empty deeper level.
    pub read_amp: u64,
    /// Fraction of uptime writers spent stalled (can exceed 1.0 with
    /// several concurrent writers).
    pub stall_fraction: f64,
    /// Microseconds stalled on a full immutable queue.
    pub stall_imm_micros: u64,
    /// Microseconds stalled on the L0 stop-writes limit.
    pub stall_l0_micros: u64,
    /// Live bytes by GC origin: `[compute, memnode, external]`, 8-byte
    /// granules.
    pub live_bytes: [u64; 3],
    /// Flush-zone (CN-controlled window) bytes in use.
    pub flush_zone_used: u64,
    /// Flush-zone window capacity.
    pub flush_zone_capacity: u64,
    /// Flush-zone free-list fragment count.
    pub flush_zone_fragments: usize,
    /// MemNode-origin extents queued for the next batched free RPC.
    pub gc_backlog: usize,
    /// Read-cache counters and occupancy (`None` when the cache is off).
    pub cache: Option<dlsm_cache::CacheStatsSnapshot>,
    /// Every [`crate::DbStats`] counter at report time.
    pub counters: DbStatsSnapshot,
}

impl StatsReport {
    /// Total tables across levels.
    pub fn total_files(&self) -> usize {
        self.levels.iter().map(|l| l.files).sum()
    }

    /// Total bytes across levels (8-byte granules — reconciles with
    /// [`Db::live_extents`]).
    pub fn total_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.bytes).sum()
    }

    /// Total live bytes across GC origins (equals [`total_bytes`] — the
    /// same tables, grouped differently).
    ///
    /// [`total_bytes`]: StatsReport::total_bytes
    pub fn live_total_bytes(&self) -> u64 {
        self.live_bytes.iter().sum()
    }
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 20) as f64
}

impl std::fmt::Display for StatsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "** dLSM stats report (uptime {:.1} s) **", self.uptime.as_secs_f64())?;
        writeln!(
            f,
            "MemTable: {:.2}/{:.2} MiB, {} entries, seq headroom {}; imm queue {}, flush queue {}",
            mib(self.memtable_bytes),
            mib(self.memtable_limit),
            self.memtable_entries,
            self.seq_headroom,
            self.imm_count,
            self.flush_queue_len,
        )?;
        writeln!(f, "{:>5} {:>7} {:>12} {:>7}", "Level", "Files", "Size(MiB)", "Score")?;
        for l in &self.levels {
            if l.files == 0 && l.level > 0 {
                continue;
            }
            writeln!(
                f,
                "{:>5} {:>7} {:>12.2} {:>7.2}",
                format!("L{}", l.level),
                l.files,
                mib(l.bytes),
                l.score,
            )?;
        }
        writeln!(
            f,
            "{:>5} {:>7} {:>12.2}",
            "Sum",
            self.total_files(),
            mib(self.total_bytes()),
        )?;
        writeln!(
            f,
            "Write amp: {:.2}   Read amp: {}   Stall: {:.2}% (imm {} us, l0 {} us)",
            self.write_amp,
            self.read_amp,
            self.stall_fraction * 100.0,
            self.stall_imm_micros,
            self.stall_l0_micros,
        )?;
        writeln!(
            f,
            "Remote memory: flush zone {:.2}/{:.2} MiB in use ({} fragments); \
             live compute {:.2} MiB, memnode {:.2} MiB, external {:.2} MiB; \
             GC backlog {} extents",
            mib(self.flush_zone_used),
            mib(self.flush_zone_capacity),
            self.flush_zone_fragments,
            mib(self.live_bytes[0]),
            mib(self.live_bytes[1]),
            mib(self.live_bytes[2]),
            self.gc_backlog,
        )?;
        if let Some(cs) = &self.cache {
            writeln!(
                f,
                "Read cache: {:.2}/{:.2} MiB resident, hit ratio {:.1}% \
                 (block {}/{}, extent {}/{}); {:.2} MiB fabric reads saved; \
                 {} evictions, {} invalidations, {} promotions",
                mib(cs.resident_bytes),
                mib(cs.capacity_bytes),
                cs.hit_ratio() * 100.0,
                cs.block_hits,
                cs.block_hits + cs.block_misses,
                cs.extent_hits,
                cs.extent_hits + cs.extent_misses,
                mib(cs.bytes_saved),
                cs.evictions,
                cs.invalidations,
                cs.extent_promotions,
            )?;
        }
        writeln!(f, "Counters: {}", self.counters)
    }
}

impl Db {
    /// Build a [`StatsReport`] from one pinned version of this shard.
    pub fn stats_report(&self) -> StatsReport {
        let shared = self.shared();
        let live = shared.live_state();
        let version = shared.versions.current();

        let mut levels = Vec::with_capacity(version.level_count());
        let mut live_bytes = [0u64; 3];
        for level in 0..version.level_count() {
            let tables = version.level(level);
            let mut bytes = 0u64;
            for t in tables {
                let rounded = t.extent.len.div_ceil(8) * 8;
                bytes += rounded;
                let slot = match t.origin {
                    Origin::Compute => 0,
                    Origin::MemNode => 1,
                    Origin::External => 2,
                };
                live_bytes[slot] += rounded;
            }
            levels.push(LevelStats {
                level,
                files: tables.len(),
                bytes,
                score: level_score(&version, &shared.cfg, level),
            });
        }
        let read_amp = levels[0].files as u64
            + levels.iter().skip(1).filter(|l| l.files > 0).count() as u64;

        let counters = shared.stats.snapshot();
        let write_amp = if counters.flush_bytes == 0 {
            0.0
        } else {
            (counters.flush_bytes + counters.compaction_bytes_out) as f64
                / counters.flush_bytes as f64
        };
        let stall_fraction =
            counters.stall_nanos as f64 / (live.uptime.as_nanos().max(1)) as f64;
        let (_, stall_imm_micros) = shared.telemetry.stall_micros(StallReason::ImmQueueFull);
        let (_, stall_l0_micros) = shared.telemetry.stall_micros(StallReason::L0Limit);

        let alloc = shared.memnode.flush_alloc();
        let report = StatsReport {
            levels,
            memtable_bytes: live.mem_bytes,
            memtable_limit: live.mem_limit,
            memtable_entries: live.mem_entries,
            seq_headroom: live.seq_headroom,
            imm_count: live.imm_count,
            flush_queue_len: live.flush_queue_len,
            uptime: live.uptime,
            write_amp,
            read_amp,
            stall_fraction,
            stall_imm_micros,
            stall_l0_micros,
            live_bytes,
            // Allocator read while `version` is still pinned, as in
            // `crate::metrics`: compute-origin live bytes ≤ in_use holds.
            flush_zone_used: alloc.in_use(),
            flush_zone_capacity: alloc.capacity(),
            flush_zone_fragments: alloc.fragments(),
            gc_backlog: shared.gc.remote_pending_len(),
            cache: self.cache_stats(),
            counters,
        };
        drop(version);
        report
    }
}

impl ShardedDb {
    /// Per-shard stats reports, shard 0 first.
    pub fn stats_reports(&self) -> Vec<StatsReport> {
        self.shards().iter().map(Db::stats_report).collect()
    }

    /// All shard reports rendered as one text block, with a header per
    /// shard (the form `db_bench` and the chaos oracle print).
    pub fn stats_report(&self) -> String {
        let mut out = String::new();
        for (i, r) in self.stats_reports().into_iter().enumerate() {
            out.push_str(&format!("--- shard {i} ---\n{r}"));
        }
        out
    }
}
