//! Range scans (paper Sec. VI, "supporting point and range queries").
//!
//! A scan builds one sub-iterator per MemTable, per L0 table, and per deeper
//! *level* (a lazy concatenation over that level's disjoint tables), merges
//! them, and applies snapshot visibility: for each user key, the newest
//! version at or below the snapshot horizon is surfaced, tombstones hide the
//! key. Table sub-iterators prefetch multi-MB chunks so sequential scans pay
//! one RDMA round trip per chunk instead of per record.

use std::sync::Arc;

use dlsm_sstable::iter::{ForwardIter, MergingIter};
use dlsm_sstable::key::{self, InternalKey, SeqNo, ValueType};

use crate::db::Shared;
use crate::handle::TableHandle;
use crate::memtable::MemTable;
use crate::remote::{table_iter, ReadChannel};
use crate::version::Version;
use crate::{DbError, Result};

/// Lazy concatenation over one level's disjoint, sorted tables: only the
/// table under the cursor is open (LevelDB's two-level iterator).
pub struct LevelConcatIter {
    tables: Vec<Arc<TableHandle>>,
    channel: ReadChannel,
    prefetch: usize,
    idx: usize,
    cur: Option<Box<dyn ForwardIter>>,
    /// Read cache, consulted peek-only (scans must not perturb it).
    cache: Option<Arc<dlsm_cache::ReadCache>>,
}

impl LevelConcatIter {
    /// Iterate over `tables` (sorted by smallest key, non-overlapping).
    pub fn new(
        tables: Vec<Arc<TableHandle>>,
        channel: ReadChannel,
        prefetch: usize,
        cache: Option<Arc<dlsm_cache::ReadCache>>,
    ) -> LevelConcatIter {
        LevelConcatIter { tables, channel, prefetch, idx: usize::MAX, cur: None, cache }
    }

    fn open(&mut self, i: usize) {
        self.idx = i;
        self.cur = (i < self.tables.len()).then(|| {
            table_iter(&self.channel, &self.tables[i], self.prefetch, self.cache.as_ref())
        });
    }

    /// Move forward past exhausted tables.
    fn skip_empty_forward(&mut self) -> dlsm_sstable::Result<()> {
        while let Some(cur) = &self.cur {
            if cur.valid() {
                return Ok(());
            }
            let next = self.idx + 1;
            if next >= self.tables.len() {
                self.cur = None;
                return Ok(());
            }
            self.open(next);
            if let Some(c) = &mut self.cur {
                c.seek_to_first()?;
            }
        }
        Ok(())
    }
}

impl ForwardIter for LevelConcatIter {
    fn valid(&self) -> bool {
        self.cur.as_ref().is_some_and(|c| c.valid())
    }

    fn key(&self) -> &[u8] {
        self.cur.as_ref().expect("valid").key()
    }

    fn value(&self) -> &[u8] {
        self.cur.as_ref().expect("valid").value()
    }

    fn next(&mut self) -> dlsm_sstable::Result<()> {
        self.cur.as_mut().expect("valid").next()?;
        self.skip_empty_forward()
    }

    fn seek(&mut self, ikey: &[u8]) -> dlsm_sstable::Result<()> {
        let user = key::user_key(ikey);
        let i = self.tables.partition_point(|t| t.largest_user() < user);
        if i >= self.tables.len() {
            self.cur = None;
            return Ok(());
        }
        self.open(i);
        if let Some(c) = &mut self.cur {
            c.seek(ikey)?;
        }
        self.skip_empty_forward()
    }

    fn seek_to_first(&mut self) -> dlsm_sstable::Result<()> {
        if self.tables.is_empty() {
            self.cur = None;
            return Ok(());
        }
        self.open(0);
        if let Some(c) = &mut self.cur {
            c.seek_to_first()?;
        }
        self.skip_empty_forward()
    }
}

/// A streaming range scan. Yields `(user_key, value)` pairs in key order,
/// newest visible version per key, tombstoned keys skipped.
pub struct DbScan {
    merged: MergingIter<Box<dyn ForwardIter>>,
    snapshot: SeqNo,
    last_user: Vec<u8>,
    have_last: bool,
    /// Exclusive upper bound on user keys (empty = unbounded).
    end: Vec<u8>,
    telemetry: Arc<crate::telemetry::DbTelemetry>,
    // Pins: MemTables live through their iterators; the version's handles
    // keep SSTable extents alive.
    _version: Arc<Version>,
    _mems: Vec<Arc<MemTable>>,
}

impl DbScan {
    pub(crate) fn build(
        shared: &Arc<Shared>,
        channel: &ReadChannel,
        mems: Vec<Arc<MemTable>>,
        version: Arc<Version>,
        snapshot: SeqNo,
        start: &[u8],
        prefetch: usize,
    ) -> Result<DbScan> {
        let mut children: Vec<Box<dyn ForwardIter>> = Vec::new();
        for mem in &mems {
            children.push(Box::new(mem.iter()));
        }
        for t in version.level(0) {
            children.push(table_iter(channel, t, prefetch, shared.cache.as_ref()));
        }
        for level in 1..version.level_count() {
            if !version.level(level).is_empty() {
                children.push(Box::new(LevelConcatIter::new(
                    version.level(level).to_vec(),
                    channel.clone(),
                    prefetch,
                    shared.cache.clone(),
                )));
            }
        }
        let children_count = children.len();
        let mut merged = MergingIter::new(children);
        let target = InternalKey::for_lookup(start, snapshot);
        {
            let _sp = dlsm_trace::span_arg(
                dlsm_trace::Category::Db,
                "scan_seek",
                children_count as u64,
            );
            merged
                .seek(target.as_bytes())
                .map_err(|e| DbError::Sst(e.to_string()))?;
        }
        Ok(DbScan {
            merged,
            snapshot,
            last_user: Vec::new(),
            have_last: false,
            end: Vec::new(),
            telemetry: Arc::clone(&shared.telemetry),
            _version: version,
            _mems: mems,
        })
    }

    /// Restrict the scan to user keys strictly below `end` (builder-style).
    #[must_use]
    pub fn until(mut self, end: &[u8]) -> DbScan {
        self.end = end.to_vec();
        self
    }

    fn step(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        while self.merged.valid() {
            let (user, seq, vt) = match key::split(self.merged.key()) {
                Some(parts) => parts,
                None => {
                    self.merged.next().map_err(|e| DbError::Sst(e.to_string()))?;
                    continue;
                }
            };
            // Past the bound: the merged stream is key-ordered, so stop.
            if !self.end.is_empty() && user >= self.end.as_slice() {
                return Ok(None);
            }
            // Invisible to the snapshot.
            if seq > self.snapshot {
                self.merged.next().map_err(|e| DbError::Sst(e.to_string()))?;
                continue;
            }
            // Older version of a user key we already emitted/skipped.
            if self.have_last && user == self.last_user.as_slice() {
                self.merged.next().map_err(|e| DbError::Sst(e.to_string()))?;
                continue;
            }
            self.last_user.clear();
            self.last_user.extend_from_slice(user);
            self.have_last = true;
            let out = match vt {
                ValueType::Value => Some((user.to_vec(), self.merged.value().to_vec())),
                ValueType::Deletion => None,
            };
            self.merged.next().map_err(|e| DbError::Sst(e.to_string()))?;
            if let Some(pair) = out {
                return Ok(Some(pair));
            }
        }
        Ok(None)
    }
}

impl Iterator for DbScan {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        let t0 = std::time::Instant::now();
        let item = self.step().transpose();
        if item.is_some() {
            self.telemetry.record_op(dlsm_telemetry::OpClass::ScanNext, t0.elapsed());
        }
        item
    }
}
