//! In-order sequence publication.
//!
//! Concurrent writers draw sequence numbers with `fetch_add` (paper Sec. IV)
//! and insert lock-free, so inserts *complete* out of order. If readers took
//! the raw counter as their snapshot horizon, a read could observe sequence
//! `s` but miss a still-in-flight `s' < s` — and a later read could then
//! surface `s'`'s older sibling, a non-monotone anomaly. LevelDB/RocksDB
//! avoid this by only advancing the visible `last_sequence` once every
//! earlier write has landed; this module provides that publication order for
//! concurrent writers.
//!
//! Every drawn sequence block is published exactly once — after its insert
//! completes, or immediately when a writer abandons it (stale range, arena
//! full), or by the switch path for counter jumps — and the visible horizon
//! `upto` advances only across a contiguous published prefix. Out-of-order
//! publishers park their block in a side map; the publisher of the gap
//! drains the parked prefix. The fast path (in-order publish) is a single
//! compare-free store under the parked lock only when parking is possible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::collections::BTreeMap;

use dlsm_sstable::key::SeqNo;
use parking_lot::Mutex;

/// Tracks the contiguous prefix of published sequence numbers.
pub struct Publication {
    /// First unpublished sequence number. `horizon() = upto - 1`.
    upto: AtomicU64,
    /// Blocks published out of order: start → length.
    parked: Mutex<BTreeMap<SeqNo, u64>>,
}

impl Publication {
    /// Start with `first` as the first sequence number ever drawn.
    pub fn new(first: SeqNo) -> Publication {
        Publication { upto: AtomicU64::new(first), parked: Mutex::new(BTreeMap::new()) }
    }

    /// The snapshot horizon: every sequence number ≤ this is either inserted
    /// or permanently unused.
    pub fn horizon(&self) -> SeqNo {
        self.upto.load(Ordering::Acquire).saturating_sub(1)
    }

    /// Publish the block `[first, first + n)`. Never blocks on other
    /// publishers beyond the parked-map lock.
    pub fn publish(&self, first: SeqNo, n: u64) {
        if n == 0 {
            return;
        }
        let mut parked = self.parked.lock();
        let cur = self.upto.load(Ordering::Acquire);
        debug_assert!(cur <= first, "block {first} (+{n}) published twice (upto {cur})");
        if cur != first {
            parked.insert(first, n);
            return;
        }
        // We close the gap: drain the contiguous parked prefix.
        let mut end = first + n;
        while let Some((&s, &c)) = parked.first_key_value() {
            if s == end {
                parked.remove(&s);
                end += c;
            } else {
                debug_assert!(s > end, "parked block {s} overlaps published prefix {end}");
                break;
            }
        }
        self.upto.store(end, Ordering::Release);
    }

    /// Spin (with yields) until `seq` is visible — i.e. every write up to and
    /// including `seq` is published. Writers call this before returning so
    /// callers get read-your-writes.
    pub fn wait_visible(&self, seq: SeqNo) {
        let mut spins = 0u32;
        while self.upto.load(Ordering::Acquire) <= seq {
            spins += 1;
            if spins.is_multiple_of(16) {
                // HOTPATH: read-your-writes publication wait; gaps close in
                // nanoseconds (a racing writer's store), so spinning beats a
                // parked wait. ROADMAP item 3 tracks bounding the spin.
                std::thread::yield_now();
            } else {
                // HOTPATH: same publication wait (see above).
                std::hint::spin_loop();
            }
        }
    }
}

impl std::fmt::Debug for Publication {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publication")
            // ORDERING: relaxed — Debug formatting only.
            .field("upto", &self.upto.load(Ordering::Relaxed))
            .field("parked", &self.parked.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn in_order_publish_advances() {
        let p = Publication::new(1);
        assert_eq!(p.horizon(), 0);
        p.publish(1, 1);
        assert_eq!(p.horizon(), 1);
        p.publish(2, 3);
        assert_eq!(p.horizon(), 4);
    }

    #[test]
    fn out_of_order_parks_then_drains() {
        let p = Publication::new(1);
        p.publish(3, 1); // parked
        p.publish(2, 1); // parked
        assert_eq!(p.horizon(), 0);
        p.publish(1, 1); // closes the gap, drains 2 and 3
        assert_eq!(p.horizon(), 3);
    }

    #[test]
    fn jump_blocks_cover_unfetched_ranges() {
        let p = Publication::new(1);
        p.publish(1, 1);
        // A switch jumped the counter from 2 to 100.
        p.publish(2, 98);
        p.publish(100, 1);
        assert_eq!(p.horizon(), 100);
    }

    #[test]
    fn wait_visible_returns_once_published() {
        let p = Arc::new(Publication::new(1));
        let p2 = Arc::clone(&p);
        let t = std::thread::spawn(move || {
            p2.wait_visible(3);
            p2.horizon()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        p.publish(2, 2); // parked
        p.publish(1, 1); // drains through 3
        assert!(t.join().unwrap() >= 3);
    }

    #[test]
    fn concurrent_publishers_form_contiguous_prefix() {
        let p = Arc::new(Publication::new(0));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    // Each thread publishes the blocks congruent to t mod 8.
                    for b in (t..800).step_by(8) {
                        p.publish(b, 1);
                    }
                });
            }
        });
        assert_eq!(p.horizon(), 799);
    }
}
