//! Database configuration.

use std::time::Duration;

use dlsm_cache::CacheConfig;
use dlsm_memnode::{RetryPolicy, TableFormat};

/// How the MemTable is switched when it fills (paper Sec. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchProtocol {
    /// dLSM's approach: every MemTable owns a pre-assigned sequence-number
    /// range; a writer whose sequence number falls past the range triggers
    /// the switch (double-checked locking). Writers within range never take
    /// a lock on the write path.
    SeqRange,
    /// The straw-man the paper argues against: writers check the table's
    /// *size* after inserting and switch under double-checked locking.
    /// Kept for the ablation benchmark; it permits the
    /// newer-version-in-older-table anomaly the paper describes.
    NaiveDoubleChecked,
}

/// How SSTable bytes move between compute and memory nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPath {
    /// One-sided RDMA reads/writes (dLSM and the RocksDB-RDMA ports).
    OneSided,
    /// Two-sided RPC file reads/writes through the memory node's CPU — the
    /// Nova-LSM-on-tmpfs data path with its extra memory copy.
    TwoSidedRpc,
}

/// Tuning knobs for one [`crate::Db`] (one shard).
///
/// Defaults follow the paper's parameter table (Sec. XI-B) scaled down so
/// experiments run at laptop scale: the paper's 64 MB MemTable/SSTable with
/// 100 M keys becomes configurable, with the same *ratios* preserved.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// MemTable size limit in bytes (paper: 64 MB).
    pub memtable_size: usize,
    /// Sequence-number range width pre-assigned to each MemTable. The skip
    /// list arena is sized for `memtable_size`, so this should be roughly
    /// `memtable_size / expected_entry_bytes`; a size-triggered switch also
    /// rotates the table early if entries run large.
    pub seq_range_width: u64,
    /// Maximum immutable MemTables awaiting flush before writers stall
    /// (paper: 16).
    pub max_immutables: usize,
    /// Background flush threads (paper: 4).
    pub flush_threads: usize,
    /// Compaction sub-task fan-out (paper: 12 subcompaction workers).
    pub compaction_subtasks: usize,
    /// Number of L0 tables that triggers a compaction (RocksDB default: 4).
    pub l0_compaction_trigger: usize,
    /// Number of L0 tables at which writers stall; `None` = bulkload mode
    /// (paper Fig. 7(b): `level0_stop_writes_trigger` = infinity).
    pub l0_stop_writes_trigger: Option<usize>,
    /// Target SSTable data size (paper: 64 MB).
    pub sstable_size: u64,
    /// Bloom-filter bits per key (paper: 10).
    pub bits_per_key: usize,
    /// Level size multiplier (L1 = `l1_max_bytes`, Ln = L1 * mult^(n-1)).
    pub level_multiplier: u64,
    /// Max bytes at L1 before compaction into L2.
    pub l1_max_bytes: u64,
    /// Number of levels below L0.
    pub max_levels: usize,
    /// Offload compaction to the memory node (near-data compaction). When
    /// false, the compute node pulls inputs over the network, merges
    /// locally, and writes outputs back — the Fig. 12 comparison bar.
    pub near_data_compaction: bool,
    /// SSTable format: dLSM proper uses [`TableFormat::ByteAddr`]; the
    /// dLSM-Block ablation (Fig. 13) uses `Block(8192)`.
    pub format: TableFormat,
    /// Flush-buffer size for the asynchronous flush pipeline (Sec. X-C).
    pub flush_buf_size: usize,
    /// Number of in-flight flush buffers before the flusher must recycle.
    pub flush_buf_count: usize,
    /// Prefetch window for range scans (paper: several MB).
    pub scan_prefetch: usize,
    /// RPC reply/argument buffer size (must hold compaction replies, whose
    /// dominant part is the per-record index of each output table).
    pub rpc_buf_size: usize,
    /// MemTable switch protocol (ablation knob).
    pub switch_protocol: SwitchProtocol,
    /// Queue remote frees until this many extents are pending (Sec. V-B).
    pub gc_batch: usize,
    /// How table bytes cross the network.
    pub data_path: DataPath,
    /// Serialize the whole write path behind one mutex, emulating the
    /// single-writer queue of disk-era LSM implementations — the software
    /// overhead dLSM removes (used by the RocksDB-RDMA baselines and the
    /// Fig. 7(b) comparison).
    pub serialized_writes: bool,
    /// Deprecated alias for the compute-side read cache: when `cache` is
    /// left disabled and this is nonzero, `normalized` maps it onto an
    /// extent-only [`CacheConfig`] of the same budget (the old behavior:
    /// freshly-flushed L0 images pinned in local memory). Prefer `cache`.
    pub local_l0_cache_bytes: u64,
    /// Compute-side read cache (blocks + hot extents, S3-FIFO admission,
    /// version-aware invalidation — DESIGN.md §11). `capacity_bytes == 0`
    /// disables caching and reads behave exactly as before.
    pub cache: CacheConfig,
    /// Retry/backoff policy applied to every RPC client the database opens
    /// (flush, GC, read channels, near-data compaction). Timed-out calls
    /// are re-issued under the same request id; the memory node dedups.
    pub rpc_retry: RetryPolicy,
    /// How long the one-sided flush pipeline waits for a single WRITE
    /// completion before failing the flush (which frees the extent and
    /// lets the flush loop retry the whole MemTable). Keep short under
    /// fault injection so a dropped completion cannot stall a flush
    /// thread for long.
    pub flush_poll_timeout: Duration,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            memtable_size: 8 << 20,
            seq_range_width: 0, // derived in `normalized`
            max_immutables: 16,
            flush_threads: 4,
            compaction_subtasks: 12,
            l0_compaction_trigger: 4,
            l0_stop_writes_trigger: Some(36),
            sstable_size: 8 << 20,
            bits_per_key: 10,
            level_multiplier: 10,
            l1_max_bytes: 32 << 20,
            max_levels: 6,
            near_data_compaction: true,
            format: TableFormat::ByteAddr,
            flush_buf_size: 512 << 10,
            flush_buf_count: 8,
            scan_prefetch: 2 << 20,
            rpc_buf_size: 24 << 20,
            switch_protocol: SwitchProtocol::SeqRange,
            gc_batch: 32,
            data_path: DataPath::OneSided,
            serialized_writes: false,
            local_l0_cache_bytes: 0,
            cache: CacheConfig::default(),
            rpc_retry: RetryPolicy::default(),
            flush_poll_timeout: Duration::from_secs(10),
        }
    }
}

impl DbConfig {
    /// A tiny configuration for unit tests: small tables so flushes and
    /// compactions happen after a few hundred writes.
    pub fn small() -> DbConfig {
        DbConfig {
            memtable_size: 64 << 10,
            max_immutables: 4,
            flush_threads: 2,
            compaction_subtasks: 2,
            sstable_size: 64 << 10,
            l1_max_bytes: 256 << 10,
            flush_buf_size: 8 << 10,
            rpc_buf_size: 4 << 20,
            ..DbConfig::default()
        }
    }

    /// Fill in derived fields (currently `seq_range_width`) and sanity-check.
    pub fn normalized(mut self, expected_entry_bytes: usize) -> DbConfig {
        if self.seq_range_width == 0 {
            // A range roughly matching the MemTable capacity; the size
            // trigger rotates early when entries run large, and ranges this
            // wide mean the switch lock is touched once per table.
            let per_entry = expected_entry_bytes.max(16);
            self.seq_range_width = (self.memtable_size / per_entry).max(64) as u64;
        }
        if !self.cache.enabled() && self.local_l0_cache_bytes > 0 {
            // Legacy knob: the old hot-L0 mirror becomes an extent-only
            // cache of the same budget (no block pool, no promotion —
            // flush-time admission keeps the original semantics).
            self.cache = CacheConfig {
                capacity_bytes: self.local_l0_cache_bytes,
                extent_percent: 100,
                promote_extent_after: 0,
                ..CacheConfig::default()
            };
        }
        assert!(self.max_levels >= 2, "need at least L0 and L1");
        assert!(self.flush_buf_size >= 4 << 10, "flush buffers must hold a record");
        self
    }

    /// Bytes to reserve in the skip-list arena for one MemTable: the size
    /// limit plus slack for node/link overhead so a size-triggered switch
    /// fires before the arena does.
    pub fn arena_capacity(&self) -> usize {
        self.memtable_size * 2 + (self.seq_range_width as usize) * 48 + (64 << 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper_ratios() {
        let c = DbConfig::default();
        assert_eq!(c.memtable_size as u64, c.sstable_size);
        assert_eq!(c.max_immutables, 16);
        assert_eq!(c.flush_threads, 4);
        assert_eq!(c.compaction_subtasks, 12);
        assert_eq!(c.l0_stop_writes_trigger, Some(36));
        assert_eq!(c.bits_per_key, 10);
        assert!(c.near_data_compaction);
    }

    #[test]
    fn normalized_derives_range_width() {
        let c = DbConfig::default().normalized(428);
        assert!(c.seq_range_width > 0);
        assert_eq!(c.seq_range_width, (c.memtable_size / 428) as u64);
        // Explicit width survives normalization.
        let c2 = DbConfig { seq_range_width: 1234, ..DbConfig::default() }.normalized(428);
        assert_eq!(c2.seq_range_width, 1234);
    }

    #[test]
    fn legacy_l0_cache_knob_maps_to_extent_cache() {
        let c = DbConfig { local_l0_cache_bytes: 1 << 20, ..DbConfig::small() }.normalized(64);
        assert_eq!(c.cache.capacity_bytes, 1 << 20);
        assert_eq!(c.cache.extent_percent, 100);
        assert_eq!(c.cache.promote_extent_after, 0, "legacy mode: flush-time admission only");
        // An explicit cache config wins over the legacy alias.
        let explicit = DbConfig {
            local_l0_cache_bytes: 1 << 20,
            cache: CacheConfig::with_capacity(4 << 20),
            ..DbConfig::small()
        }
        .normalized(64);
        assert_eq!(explicit.cache.capacity_bytes, 4 << 20);
        assert_ne!(explicit.cache.extent_percent, 100);
    }

    #[test]
    fn arena_capacity_exceeds_memtable_size() {
        let c = DbConfig::small().normalized(64);
        assert!(c.arena_capacity() > c.memtable_size);
    }
}
