//! λ-way range sharding (paper Sec. VII).
//!
//! The key space is divided into λ static ranges; each shard is an
//! independent [`Db`] (own MemTables, own LSM-tree, own L0). Sharding adds
//! parallelism to L0 compaction and shrinks the number of overlapping L0
//! tables a reader must probe — the mixed-workload fix evaluated in the
//! paper's Fig. 10.
//!
//! Routing interprets the first 8 bytes of the user key as a big-endian
//! fraction of the key space, matching the uniform fixed-width keys of
//! db_bench-style workloads; keys shorter than 8 bytes are zero-padded.

use std::sync::Arc;

use dlsm_sstable::key::SeqNo;

use crate::config::DbConfig;
use crate::context::{ComputeContext, MemNodeHandle};
use crate::db::{Db, DbReader};
use crate::Result;

/// A λ-sharded dLSM: λ independent LSM-trees over one (or more) memory
/// nodes.
pub struct ShardedDb {
    shards: Vec<Db>,
}

/// Route `key` to one of `n` shards by its leading 8 bytes.
pub fn shard_of(key: &[u8], n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let mut prefix = [0u8; 8];
    let take = key.len().min(8);
    prefix[..take].copy_from_slice(&key[..take]);
    let x = u64::from_be_bytes(prefix);
    // Map the 64-bit fraction onto [0, n).
    ((x as u128 * n as u128) >> 64) as usize
}

/// Divide the read-cache budget across λ shards: `cfg.cache.capacity_bytes`
/// is the *node-wide* budget, and each per-shard `Db` owns its own cache, so
/// the total stays what the caller configured. (The deprecated
/// `local_l0_cache_bytes` alias keeps its historical per-shard meaning.)
fn split_cache_budget(mut cfg: DbConfig, lambda: usize) -> DbConfig {
    if cfg.cache.enabled() && lambda > 1 {
        cfg.cache.capacity_bytes = (cfg.cache.capacity_bytes / lambda as u64).max(1 << 20);
        cfg.cache.ghost_entries = (cfg.cache.ghost_entries / lambda).max(1024);
    }
    cfg
}

impl ShardedDb {
    /// Open λ shards on one compute node against the given memory nodes
    /// (shard *i* uses `memnodes[i % memnodes.len()]` — round-robin
    /// placement, Sec. IX).
    pub fn open(
        ctx: Arc<ComputeContext>,
        memnodes: &[Arc<MemNodeHandle>],
        cfg: DbConfig,
        lambda: usize,
    ) -> Result<ShardedDb> {
        assert!(!memnodes.is_empty(), "need at least one memory node");
        let cfg = split_cache_budget(cfg, lambda.max(1));
        let mut shards = Vec::with_capacity(lambda.max(1));
        for i in 0..lambda.max(1) {
            let mem = Arc::clone(&memnodes[i % memnodes.len()]);
            shards.push(Db::open(Arc::clone(&ctx), mem, cfg.clone())?);
        }
        Ok(ShardedDb { shards })
    }

    /// Open shards with an explicit memory-node handle per shard (used by
    /// [`crate::Cluster`], where each shard gets its own flush window).
    pub fn open_with_handles(
        ctx: Arc<ComputeContext>,
        handles: Vec<Arc<MemNodeHandle>>,
        cfg: DbConfig,
    ) -> Result<ShardedDb> {
        assert!(!handles.is_empty(), "need at least one shard handle");
        let cfg = split_cache_budget(cfg, handles.len());
        let mut shards = Vec::with_capacity(handles.len());
        for mem in handles {
            shards.push(Db::open(Arc::clone(&ctx), mem, cfg.clone())?);
        }
        Ok(ShardedDb { shards })
    }

    /// Number of shards (λ).
    pub fn lambda(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `key`.
    pub fn shard_for(&self, key: &[u8]) -> &Db {
        &self.shards[shard_of(key, self.shards.len())]
    }

    /// All shards.
    pub fn shards(&self) -> &[Db] {
        &self.shards
    }

    /// Insert or overwrite `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<SeqNo> {
        let _sp = dlsm_trace::span(dlsm_trace::Category::Db, "shard_put");
        self.shard_for(key).put(key, value)
    }

    /// Delete `key`.
    pub fn delete(&self, key: &[u8]) -> Result<SeqNo> {
        self.shard_for(key).delete(key)
    }

    /// A read handle holding one reader per shard. Fails if any shard's
    /// fabric connection is refused (see [`Db::try_reader`]).
    pub fn try_reader(&self) -> Result<ShardedReader> {
        Ok(ShardedReader {
            readers: self.shards.iter().map(Db::try_reader).collect::<Result<_>>()?,
            lambda: self.shards.len(),
        })
    }

    /// Infallible convenience wrapper over [`ShardedDb::try_reader`].
    pub fn reader(&self) -> ShardedReader {
        // PANIC-SAFE: convenience API mirroring Db::reader; data-path code
        // uses try_reader().
        self.try_reader().expect("sharded reader channels")
    }

    /// Merged telemetry across all shards: histograms merge pointwise,
    /// counters add. RDMA verb traffic is attached by the caller from the
    /// fabric (shards share it; see [`crate::telemetry::verb_traffic`]).
    pub fn telemetry_snapshot(&self) -> dlsm_telemetry::TelemetrySnapshot {
        let mut merged = dlsm_telemetry::TelemetrySnapshot::new();
        for s in &self.shards {
            merged.merge(&s.telemetry_snapshot());
        }
        merged
    }

    /// Merged [`crate::DbStatsSnapshot`] across all shards.
    pub fn stats_snapshot(&self) -> crate::stats::DbStatsSnapshot {
        let mut merged = crate::stats::DbStatsSnapshot::default();
        for s in &self.shards {
            merged.merge(&s.stats().snapshot());
        }
        merged
    }

    /// Wait for every shard to become quiescent.
    pub fn wait_until_quiescent(&self) {
        for s in &self.shards {
            s.wait_until_quiescent();
        }
    }

    /// Shut down every shard.
    pub fn shutdown(&self) {
        for s in &self.shards {
            s.shutdown();
        }
    }
}

/// Per-thread read handle over all shards.
pub struct ShardedReader {
    readers: Vec<DbReader>,
    lambda: usize,
}

impl ShardedReader {
    /// Point lookup, routed to the owning shard.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let i = shard_of(key, self.lambda);
        let _sp = dlsm_trace::span_arg(dlsm_trace::Category::Db, "shard_get", i as u64);
        self.readers[i].get(key)
    }

    /// Scan from `start` across all shards in key order.
    ///
    /// Shards own contiguous key ranges, so scanning shard `i` to exhaustion
    /// before opening shard `i + 1` preserves global order.
    pub fn scan(&mut self, start: &[u8]) -> Result<ShardedScan<'_>> {
        let first = shard_of(start, self.lambda);
        let scan = self.readers[first].scan(start)?;
        Ok(ShardedScan { readers: &mut self.readers, shard: first, cur: Some(scan) })
    }
}

/// Cross-shard scan: drains shards in range order.
pub struct ShardedScan<'r> {
    readers: &'r mut Vec<DbReader>,
    shard: usize,
    cur: Option<crate::scan::DbScan>,
}

impl<'r> Iterator for ShardedScan<'r> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(scan) = &mut self.cur {
                if let Some(item) = scan.next() {
                    return Some(item);
                }
            }
            self.shard += 1;
            if self.shard >= self.readers.len() {
                return None;
            }
            match self.readers[self.shard].scan(b"") {
                Ok(s) => self.cur = Some(s),
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_balanced_and_stable() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for i in 0..8000u64 {
            // Uniform fixed-width binary keys, like the benchmark workload:
            // an 8-byte big-endian prefix followed by padding.
            let mut key = i.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes().to_vec();
            key.extend_from_slice(b"-pad-pad-pad");
            let s = shard_of(&key, n);
            assert_eq!(s, shard_of(&key, n), "stable");
            counts[s] += 1;
        }
        for &c in &counts {
            assert!(c > 8000 / n / 2, "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn shard_routing_is_range_ordered() {
        // Larger keys route to equal-or-larger shards (range partitioning).
        let n = 4;
        let keys: Vec<Vec<u8>> = [0u64 << 62, 1 << 62, 2 << 62, 3 << 62]
            .iter()
            .map(|v| v.to_be_bytes().to_vec())
            .collect();
        let shards: Vec<usize> = keys.iter().map(|k| shard_of(k, n)).collect();
        let mut sorted = shards.clone();
        sorted.sort_unstable();
        assert_eq!(shards, sorted);
        assert_eq!(shard_of(b"", 4), 0);
        assert_eq!(shard_of(b"\xff\xff\xff\xff\xff\xff\xff\xff", 4), 3);
    }

    #[test]
    fn single_shard_short_circuits() {
        assert_eq!(shard_of(b"anything", 1), 0);
        assert_eq!(shard_of(b"anything", 0), 0);
    }
}
