//! # dlsm — an LSM-based index for disaggregated memory
//!
//! A from-scratch Rust reproduction of **dLSM** (ICDE 2023): an LSM-tree
//! whose MemTables live on the compute node and whose SSTables live in
//! remote memory behind a (simulated) RDMA fabric.
//!
//! The headline mechanisms, each mapped to its module:
//!
//! * **Minimal software overhead** ([`memtable`], [`db`]) — lock-free
//!   skip-list MemTables with *pre-assigned sequence-number ranges*: a
//!   writer whose sequence number falls outside the current table's range
//!   triggers the switch under double-checked locking, so a newer version
//!   of a key can never land in an older MemTable (paper Sec. IV, Fig. 3).
//! * **Near-data compaction** ([`compaction`]) — the compute node picks the
//!   compaction and ships only metadata; the memory node merges SSTables in
//!   its own DRAM and replies with new-table metadata (Sec. V). Large L0
//!   compactions are split into parallel key-range sub-compactions.
//! * **Byte-addressable SSTables** ([`dlsm_sstable::byte_addr`]) — point
//!   reads fetch exactly one record with one RDMA read; the per-record
//!   index and bloom filters stay in compute-node memory (Sec. VI).
//! * **Asynchronous flushing** ([`flush`]) — MemTables serialize straight
//!   into a FIFO ring of RDMA buffers recycled on completion (Sec. X-C).
//! * **Snapshot isolation & GC** ([`version`], [`handle`]) — copy-on-write
//!   version metadata pinned by `Arc`; owner-aware, batched garbage
//!   collection of remote extents (Sec. V-B).
//! * **Sharding and scale-out** ([`shard`], [`cluster`]) — λ range shards
//!   per compute node, placed round-robin over memory nodes (Sec. VII, IX).
//!
//! Quick start:
//!
//! ```
//! use dlsm::{ComputeContext, Db, DbConfig, MemNodeHandle};
//! use dlsm_memnode::{MemServer, MemServerConfig};
//! use rdma_sim::{Fabric, NetworkProfile};
//!
//! let fabric = Fabric::new(NetworkProfile::instant());
//! let server = MemServer::start(&fabric, MemServerConfig {
//!     region_size: 64 << 20, flush_zone: 24 << 20,
//!     compaction_workers: 2, dispatchers: 1,
//! });
//! let ctx = ComputeContext::new(&fabric);
//! let mem = MemNodeHandle::from_server(&server);
//! let db = Db::open(ctx, mem, DbConfig::small()).unwrap();
//!
//! db.put(b"hello", b"world").unwrap();
//! let mut reader = db.reader();
//! assert_eq!(reader.get(b"hello").unwrap(), Some(b"world".to_vec()));
//! db.shutdown();
//! server.shutdown();
//! ```

pub mod batch;
pub mod cluster;
pub mod compaction;
pub mod config;
pub mod context;
pub mod db;
pub mod flush;
pub mod handle;
pub mod memtable;
pub mod metrics;
pub mod publication;
pub mod remote;
pub mod report;
pub mod scan;
pub mod shard;
pub mod stats;
pub mod telemetry;
pub mod version;

pub use batch::{BatchCommit, WriteBatch};
pub use cluster::{Cluster, ClusterConfig};
pub use config::{DataPath, DbConfig, SwitchProtocol};
pub use context::{ComputeContext, MemNodeHandle};
pub use db::{Db, DbReader, Snapshot};
pub use dlsm_cache::{CacheConfig, CacheStatsSnapshot, ReadCache};
pub use report::{LevelStats, StatsReport};
pub use shard::ShardedDb;
pub use stats::{DbStats, DbStatsSnapshot};
pub use telemetry::{DbTelemetry, StallReason};

/// The read cache's counters as `(name, value)` telemetry rows, with the
/// `cache_` prefix every consumer (stats report, Prometheus exporter,
/// bench JSON, telemetry oracles) keys on. Counters merge additively
/// across shards; `cache_resident_bytes` / `cache_capacity_bytes` sum to
/// fleet totals.
pub fn named_cache_counters(cs: &dlsm_cache::CacheStatsSnapshot) -> Vec<(&'static str, u64)> {
    vec![
        ("cache_block_hits", cs.block_hits),
        ("cache_block_misses", cs.block_misses),
        ("cache_extent_hits", cs.extent_hits),
        ("cache_extent_misses", cs.extent_misses),
        ("cache_inserts", cs.inserts),
        ("cache_evictions", cs.evictions),
        ("cache_invalidations", cs.invalidations),
        ("cache_bytes_saved", cs.bytes_saved),
        ("cache_extent_promotions", cs.extent_promotions),
        ("cache_promoted_bytes", cs.promoted_bytes),
        ("cache_resident_bytes", cs.resident_bytes),
        ("cache_capacity_bytes", cs.capacity_bytes),
    ]
}

/// Errors surfaced by the database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// RDMA-level failure.
    Rdma(String),
    /// Table format failure.
    Sst(String),
    /// Memory-node RPC failure.
    MemNode(String),
    /// The flush zone is exhausted (remote memory full).
    OutOfRemoteMemory {
        /// Bytes requested.
        requested: u64,
    },
    /// The database is shutting down.
    ShuttingDown,
    /// The caller passed an argument the engine cannot serve (e.g. a write
    /// batch wider than the MemTable sequence-range width).
    InvalidArgument(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Rdma(m) => write!(f, "rdma: {m}"),
            DbError::Sst(m) => write!(f, "sstable: {m}"),
            DbError::MemNode(m) => write!(f, "memory node: {m}"),
            DbError::OutOfRemoteMemory { requested } => {
                write!(f, "out of remote memory ({requested} bytes requested)")
            }
            DbError::ShuttingDown => write!(f, "database is shutting down"),
            DbError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<rdma_sim::RdmaError> for DbError {
    fn from(e: rdma_sim::RdmaError) -> Self {
        DbError::Rdma(e.to_string())
    }
}

impl From<dlsm_sstable::SstError> for DbError {
    fn from(e: dlsm_sstable::SstError) -> Self {
        DbError::Sst(e.to_string())
    }
}

impl From<dlsm_memnode::MemNodeError> for DbError {
    fn from(e: dlsm_memnode::MemNodeError) -> Self {
        DbError::MemNode(e.to_string())
    }
}

/// Result alias for database operations.
pub type Result<T> = std::result::Result<T, DbError>;
