//! Copy-on-write LSM-tree metadata (paper Sec. III, V-B).
//!
//! A [`Version`] is an immutable snapshot of the table layout: one `Vec` of
//! table handles per level. Installing an edit clones the affected levels
//! under a short mutex (the paper measures a metadata change every ~0.02 s,
//! so a mutex is plenty). Readers pin a version by cloning its `Arc`; the
//! pinned `Arc`s of the handles inside keep every referenced SSTable alive,
//! which is the entire snapshot-GC story.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::handle::TableHandle;

/// Immutable table layout. Level 0 is ordered newest-first and may overlap;
/// levels ≥ 1 are ordered by smallest key and are disjoint.
#[derive(Clone)]
pub struct Version {
    levels: Vec<Vec<Arc<TableHandle>>>,
}

impl Version {
    /// An empty layout with `levels` levels (including L0).
    pub fn empty(levels: usize) -> Version {
        Version { levels: vec![Vec::new(); levels] }
    }

    /// Number of levels (including L0).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Tables at `level`.
    pub fn level(&self, level: usize) -> &[Arc<TableHandle>] {
        &self.levels[level]
    }

    /// Total number of tables.
    pub fn table_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Total data bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|t| t.extent.len).sum()
    }

    /// Tables at `level` whose user-key range intersects `[lo, hi]`.
    pub fn overlapping(&self, level: usize, lo: &[u8], hi: &[u8]) -> Vec<Arc<TableHandle>> {
        self.levels[level]
            .iter()
            .filter(|t| t.overlaps_user_range(lo, hi))
            .cloned()
            .collect()
    }

    /// For levels ≥ 1: the single table that may contain `user_key`.
    pub fn table_for_key(&self, level: usize, user_key: &[u8]) -> Option<&Arc<TableHandle>> {
        debug_assert!(level >= 1);
        let tables = &self.levels[level];
        // First table whose largest user key is >= user_key.
        let i = tables.partition_point(|t| t.largest_user() < user_key);
        let t = tables.get(i)?;
        (t.smallest_user() <= user_key).then_some(t)
    }

    /// Apply `edit`, producing the next version.
    fn apply(&self, edit: &VersionEdit) -> Version {
        let mut next = self.clone();
        for (level, ids) in &edit.deleted {
            next.levels[*level].retain(|t| !ids.contains(&t.id));
        }
        for (level, table) in &edit.added {
            let lvl = &mut next.levels[*level];
            if *level == 0 {
                // L0: newest first, ordered by descending table id (flush
                // order). Compaction outputs never land in L0.
                let pos = lvl.partition_point(|t| t.id > table.id);
                lvl.insert(pos, Arc::clone(table));
            } else {
                let pos = lvl.partition_point(|t| {
                    dlsm_sstable::key::compare_internal(&t.smallest, &table.smallest)
                        == std::cmp::Ordering::Less
                });
                lvl.insert(pos, Arc::clone(table));
            }
        }
        next
    }

    /// Debug summary like `[3, 1, 0, ...]` (tables per level).
    pub fn shape(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }
}

impl std::fmt::Debug for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Version{:?}", self.shape())
    }
}

/// A batch of table additions/removals applied atomically.
#[derive(Default)]
pub struct VersionEdit {
    added: Vec<(usize, Arc<TableHandle>)>,
    deleted: Vec<(usize, Vec<u64>)>,
}

impl VersionEdit {
    /// Add `table` at `level`.
    pub fn add(&mut self, level: usize, table: Arc<TableHandle>) -> &mut Self {
        self.added.push((level, table));
        self
    }

    /// Remove the tables with the given ids from `level`.
    pub fn delete(&mut self, level: usize, ids: Vec<u64>) -> &mut Self {
        self.deleted.push((level, ids));
        self
    }
}

/// The mutable head of the version chain.
pub struct VersionSet {
    current: Mutex<Arc<Version>>,
}

impl VersionSet {
    /// Start with an empty layout.
    pub fn new(levels: usize) -> VersionSet {
        VersionSet { current: Mutex::new(Arc::new(Version::empty(levels))) }
    }

    /// Pin the current version (cheap `Arc` clone).
    pub fn current(&self) -> Arc<Version> {
        Arc::clone(&self.current.lock())
    }

    /// Atomically apply `edit` on top of the current version.
    pub fn install(&self, edit: &VersionEdit) -> Arc<Version> {
        let mut cur = self.current.lock();
        let next = Arc::new(cur.apply(edit));
        *cur = Arc::clone(&next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::RemoteRegion;
    use crate::handle::{Extent, MetaKind, Origin};
    use dlsm_sstable::byte_addr::ByteAddrBuilder;
    use dlsm_sstable::key::{InternalKey, ValueType};
    use rdma_sim::{MrId, NodeId};

    fn handle(id: u64, lo: &str, hi: &str) -> Arc<TableHandle> {
        let mut b = ByteAddrBuilder::new(Vec::new(), 10);
        b.add(InternalKey::new(lo.as_bytes(), 9, ValueType::Value).as_bytes(), b"v").unwrap();
        if hi != lo {
            b.add(InternalKey::new(hi.as_bytes(), 9, ValueType::Value).as_bytes(), b"v").unwrap();
        }
        let (_, meta) = b.finish();
        let s = meta.smallest().unwrap().to_vec();
        let l = meta.largest().unwrap().to_vec();
        TableHandle::new(
            id,
            RemoteRegion { node: NodeId(0), mr: MrId(0), rkey: 0, len: 1 << 20 },
            Extent { offset: id * 4096, len: 100 },
            Origin::External,
            MetaKind::ByteAddr(Arc::new(meta)),
            s,
            l,
            2,
            None,
        )
    }

    #[test]
    fn l0_orders_newest_first() {
        let vs = VersionSet::new(3);
        let mut e = VersionEdit::default();
        e.add(0, handle(1, "a", "z"));
        vs.install(&e);
        let mut e = VersionEdit::default();
        e.add(0, handle(3, "a", "z"));
        e.add(0, handle(2, "a", "z"));
        let v = vs.install(&e);
        let ids: Vec<u64> = v.level(0).iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![3, 2, 1]);
    }

    #[test]
    fn deeper_levels_order_by_smallest_key() {
        let vs = VersionSet::new(3);
        let mut e = VersionEdit::default();
        e.add(1, handle(1, "m", "p"));
        e.add(1, handle(2, "a", "c"));
        e.add(1, handle(3, "x", "z"));
        let v = vs.install(&e);
        let ids: Vec<u64> = v.level(1).iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn table_for_key_binary_search() {
        let vs = VersionSet::new(3);
        let mut e = VersionEdit::default();
        e.add(1, handle(1, "a", "c"));
        e.add(1, handle(2, "m", "p"));
        let v = vs.install(&e);
        assert_eq!(v.table_for_key(1, b"b").unwrap().id, 1);
        assert_eq!(v.table_for_key(1, b"m").unwrap().id, 2);
        assert_eq!(v.table_for_key(1, b"p").unwrap().id, 2);
        assert!(v.table_for_key(1, b"d").is_none());
        assert!(v.table_for_key(1, b"q").is_none());
    }

    #[test]
    fn edits_are_copy_on_write() {
        let vs = VersionSet::new(2);
        let mut e = VersionEdit::default();
        e.add(0, handle(1, "a", "b"));
        let v1 = vs.install(&e);
        let mut e = VersionEdit::default();
        e.delete(0, vec![1]);
        e.add(1, handle(2, "a", "b"));
        let v2 = vs.install(&e);
        // The old pinned version still sees the old layout.
        assert_eq!(v1.shape(), vec![1, 0]);
        assert_eq!(v2.shape(), vec![0, 1]);
        assert_eq!(vs.current().shape(), vec![0, 1]);
    }

    #[test]
    fn overlapping_filters_by_range() {
        let vs = VersionSet::new(2);
        let mut e = VersionEdit::default();
        e.add(1, handle(1, "a", "c"));
        e.add(1, handle(2, "f", "h"));
        e.add(1, handle(3, "m", "z"));
        let v = vs.install(&e);
        let ids: Vec<u64> = v.overlapping(1, b"b", b"g").iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert!(v.overlapping(1, b"d", b"e").is_empty());
    }

    #[test]
    fn level_bytes_sums_extents() {
        let vs = VersionSet::new(2);
        let mut e = VersionEdit::default();
        e.add(1, handle(1, "a", "b"));
        e.add(1, handle(2, "c", "d"));
        let v = vs.install(&e);
        assert_eq!(v.level_bytes(1), 200);
        assert_eq!(v.table_count(), 2);
    }
}
