//! Write batches (paper Sec. II-C).
//!
//! "Inserts, updates, and deletes are all appended entries into a write
//! buffer. The entries are first written into a write batch that are
//! committed all at once. Then, the write batches are assigned with sequence
//! numbers to reflect the time order of the entries."
//!
//! A [`WriteBatch`] is applied with one sequence-number block
//! (`fetch_add(n)`), so its entries are consecutive in time order and land
//! in a single MemTable (the sequence-range switch protocol guarantees the
//! whole block belongs to one table; if the block straddles a range
//! boundary or the arena fills mid-batch, the batch re-fetches a fresh
//! block and re-applies — the partial prefix of a failed attempt is
//! harmlessly shadowed by the retry's higher sequence numbers).

use dlsm_sstable::key::{SeqNo, ValueType};

/// A buffered group of writes applied together.
///
/// ```
/// use dlsm::WriteBatch;
/// let mut batch = WriteBatch::new();
/// batch.put(b"account:alice", b"90");
/// batch.put(b"account:bob", b"110");
/// batch.delete(b"pending:transfer-42");
/// assert_eq!(batch.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    pub(crate) entries: Vec<(ValueType, Vec<u8>, Vec<u8>)>,
    bytes: usize,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Queue an insert/overwrite.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut Self {
        self.bytes += key.len() + value.len();
        self.entries.push((ValueType::Value, key.to_vec(), value.to_vec()));
        self
    }

    /// Queue a delete.
    pub fn delete(&mut self, key: &[u8]) -> &mut Self {
        self.bytes += key.len();
        self.entries.push((ValueType::Deletion, key.to_vec(), Vec::new()));
        self
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate payload bytes queued.
    pub fn approximate_bytes(&self) -> usize {
        self.bytes
    }

    /// Drop all queued entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }
}

/// Outcome of applying a batch: the sequence block it received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchCommit {
    /// Sequence number of the first entry.
    pub first_seq: SeqNo,
    /// Number of entries committed.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder() {
        let mut b = WriteBatch::new();
        assert!(b.is_empty());
        b.put(b"a", b"1").put(b"b", b"2").delete(b"c");
        assert_eq!(b.len(), 3);
        assert_eq!(b.approximate_bytes(), 2 + 2 + 1);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.approximate_bytes(), 0);
    }
}
