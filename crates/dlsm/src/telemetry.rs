//! Compute-side telemetry: op-class latency histograms, read-path breakdown
//! spans, and RPC/RDMA accounting (DESIGN.md §8).
//!
//! One [`DbTelemetry`] lives in each [`crate::Db`]'s shared state. Recording
//! costs a few relaxed atomic RMWs (lock-free, wait-free on the hot path);
//! reading freezes everything into a [`TelemetrySnapshot`], which merges
//! across shards and diffs against an earlier snapshot for phase
//! measurement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dlsm_memnode::ClientNetStats;
use dlsm_telemetry::{Histogram, OpClass, OpHistograms, TelemetrySnapshot, VerbTraffic};

/// Lock-free telemetry shared by one database instance and every reader,
/// flush thread, and compaction coordinator it spawns.
#[derive(Debug, Default)]
pub struct DbTelemetry {
    /// Latency per op class (put, get hit/miss, scan-next, flush,
    /// compaction round-trip).
    pub ops: OpHistograms,
    /// Time a `get` spends probing MemTables (every get enters this phase).
    pub get_memtable: Histogram,
    /// Time a `get` spends probing overlapping L0 tables (only gets that
    /// miss the MemTables).
    pub get_l0: Histogram,
    /// Time a `get` spends probing levels ≥ 1.
    pub get_deep: Histogram,
    /// Byte-addressable table probes answered `NotFound` from compute-local
    /// metadata (bloom filter / index rejection) — zero RDMA reads issued.
    pub bloom_skips: AtomicU64,
    /// Table probes resolved from a compute-local L0 image (hot-L0 cache).
    pub l0_cache_hits: AtomicU64,
    /// `get`s answered "absent" by a tombstone (as opposed to never finding
    /// any version of the key). Delete-heavy workloads watch this to verify
    /// that deletes actually shadow older values.
    pub get_tombstones: AtomicU64,
    /// RPC retry/reconnect totals aggregated over every client this
    /// database opens (flush, GC, compaction pool, two-sided readers).
    pub net: Arc<ClientNetStats>,
    /// Write stalls whose blocking condition was the immutable queue.
    pub stall_imm_events: AtomicU64,
    /// Microseconds writers spent stalled on a full immutable queue.
    pub stall_imm_micros: AtomicU64,
    /// Write stalls whose blocking condition was the L0 stop-writes limit.
    pub stall_l0_events: AtomicU64,
    /// Microseconds writers spent stalled on the L0 stop-writes limit.
    pub stall_l0_micros: AtomicU64,
}

/// Why a writer stalled in `wait_for_write_room` (the condition that was
/// failing when the stall began).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The immutable-MemTable queue is at `max_immutables` (flushes are
    /// behind).
    ImmQueueFull,
    /// The L0 table count reached `l0_stop_writes_trigger` (compaction is
    /// behind).
    L0Limit,
}

impl StallReason {
    /// The reason code carried as the `arg` of a `write_stall` trace span.
    pub fn trace_arg(self) -> u64 {
        match self {
            StallReason::ImmQueueFull => dlsm_trace::STALL_IMM_QUEUE,
            StallReason::L0Limit => dlsm_trace::STALL_L0_LIMIT,
        }
    }
}

impl DbTelemetry {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        // ORDERING: relaxed — monotonic telemetry counters; stats readers tolerate staleness.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one finished op, pinning the sample to the op's open trace
    /// (if any) so high-bucket latencies carry an exemplar trace id. Call
    /// while the op span is still open; with tracing off this is exactly
    /// `ops.record_elapsed`.
    #[inline]
    pub(crate) fn record_op(&self, class: OpClass, d: std::time::Duration) {
        // LOSSY: ~584 years of nanoseconds fit in u64.
        let nanos = d.as_nanos() as u64;
        match dlsm_trace::current_ctx() {
            Some(ctx) => self.ops.record_traced(class, nanos, ctx.trace_id),
            None => self.ops.record(class, nanos),
        }
    }

    /// Account one finished stall episode to its cause.
    pub(crate) fn note_stall(&self, reason: StallReason, micros: u64) {
        let (events, total) = match reason {
            StallReason::ImmQueueFull => (&self.stall_imm_events, &self.stall_imm_micros),
            StallReason::L0Limit => (&self.stall_l0_events, &self.stall_l0_micros),
        };
        // ORDERING: relaxed — event/total pair is read independently for averages; approximate by design.
        events.fetch_add(1, Ordering::Relaxed);
        total.fetch_add(micros, Ordering::Relaxed);
        // The journaled episode carries the exact micros added to the
        // counter above, so summed episode durations reconcile with the
        // stall_*_micros deltas (timeline_check's invariant).
        dlsm_timeline::post(dlsm_timeline::EngineEvent::StallEnd {
            reason: reason.trace_arg(),
            micros,
        });
    }

    /// Freeze op histograms, breakdown histograms and counters. RDMA verb
    /// traffic is attached by callers that own a channel or fabric (see
    /// [`verb_traffic`]) so shard merges never double-count the fabric.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.ops = self.ops.snapshot().to_vec();
        for class in OpClass::ALL {
            let high = self.ops.exemplars_above_p99(class);
            if !high.is_empty() {
                s.set_exemplars(class.name(), high);
            }
        }
        s.set_breakdown("get_memtable", self.get_memtable.snapshot());
        s.set_breakdown("get_l0", self.get_l0.snapshot());
        s.set_breakdown("get_deep", self.get_deep.snapshot());
        // ORDERING: relaxed — stats-report reads of monotonic counters.
        s.set_counter("bloom_skips", self.bloom_skips.load(Ordering::Relaxed));
        s.set_counter("l0_cache_hits", self.l0_cache_hits.load(Ordering::Relaxed));
        // ORDERING: relaxed — stats-report read of a monotonic counter.
        s.set_counter("get_tombstones", self.get_tombstones.load(Ordering::Relaxed));
        let (retries, reconnects) = self.net.totals();
        s.set_counter("rpc_retries", retries);
        s.set_counter("rpc_reconnects", reconnects);
        // ORDERING: relaxed — stats-report reads of monotonic counters.
        s.set_counter("stall_imm_events", self.stall_imm_events.load(Ordering::Relaxed));
        s.set_counter("stall_imm_micros", self.stall_imm_micros.load(Ordering::Relaxed));
        s.set_counter("stall_l0_events", self.stall_l0_events.load(Ordering::Relaxed));
        // ORDERING: relaxed — stats-report reads of monotonic counters.
        s.set_counter("stall_l0_micros", self.stall_l0_micros.load(Ordering::Relaxed));
        s
    }

    /// `(events, micros)` stalled for one reason, from the live counters.
    pub fn stall_micros(&self, reason: StallReason) -> (u64, u64) {
        match reason {
            StallReason::ImmQueueFull => (
                // ORDERING: relaxed — stall gauge reads; tolerate staleness.
                self.stall_imm_events.load(Ordering::Relaxed),
                self.stall_imm_micros.load(Ordering::Relaxed),
            ),
            StallReason::L0Limit => (
                // ORDERING: relaxed — stall gauge reads; tolerate staleness.
                self.stall_l0_events.load(Ordering::Relaxed),
                self.stall_l0_micros.load(Ordering::Relaxed),
            ),
        }
    }
}

/// Convert an `rdma-sim` traffic snapshot into telemetry verb rows (verbs
/// with zero ops are omitted).
pub fn verb_traffic(stats: &rdma_sim::StatsSnapshot) -> Vec<VerbTraffic> {
    rdma_sim::Verb::ALL
        .iter()
        .filter(|&&v| stats.ops(v) != 0 || stats.bytes(v) != 0)
        .map(|&v| VerbTraffic {
            verb: v.name().to_string(),
            ops: stats.ops(v),
            bytes: stats.bytes(v),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsm_telemetry::OpClass;

    #[test]
    fn snapshot_carries_breakdowns_and_counters() {
        let t = DbTelemetry::default();
        t.ops.record(OpClass::GetHit, 1_000);
        t.get_memtable.record(200);
        DbTelemetry::bump(&t.bloom_skips);
        DbTelemetry::bump(&t.bloom_skips);
        DbTelemetry::bump(&t.get_tombstones);
        let s = t.snapshot();
        assert_eq!(s.op(OpClass::GetHit).count(), 1);
        assert_eq!(s.breakdown_hist("get_memtable").count(), 1);
        assert_eq!(s.counter("bloom_skips"), 2);
        assert_eq!(s.counter("get_tombstones"), 1);
        assert_eq!(s.counter("rpc_retries"), 0);
    }

    #[test]
    fn stall_attribution_by_reason() {
        let t = DbTelemetry::default();
        t.note_stall(StallReason::ImmQueueFull, 1_500);
        t.note_stall(StallReason::ImmQueueFull, 500);
        t.note_stall(StallReason::L0Limit, 40);
        assert_eq!(t.stall_micros(StallReason::ImmQueueFull), (2, 2_000));
        assert_eq!(t.stall_micros(StallReason::L0Limit), (1, 40));
        let s = t.snapshot();
        assert_eq!(s.counter("stall_imm_events"), 2);
        assert_eq!(s.counter("stall_imm_micros"), 2_000);
        assert_eq!(s.counter("stall_l0_events"), 1);
        assert_eq!(s.counter("stall_l0_micros"), 40);
        assert_eq!(StallReason::ImmQueueFull.trace_arg(), dlsm_trace::STALL_IMM_QUEUE);
        assert_eq!(StallReason::L0Limit.trace_arg(), dlsm_trace::STALL_L0_LIMIT);
    }

    #[test]
    fn verb_traffic_skips_idle_verbs() {
        use rdma_sim::Verb;
        let mut raw = rdma_sim::StatsSnapshot::default();
        raw.accumulate(Verb::Read, 64);
        raw.accumulate(Verb::Read, 64);
        raw.accumulate(Verb::Send, 32);
        let rows = verb_traffic(&raw);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r.verb == "read" && r.ops == 2 && r.bytes == 128));
        assert!(!rows.iter().any(|r| r.verb == "cas"));
    }
}
