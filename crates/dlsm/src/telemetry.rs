//! Compute-side telemetry: op-class latency histograms, read-path breakdown
//! spans, and RPC/RDMA accounting (DESIGN.md §8).
//!
//! One [`DbTelemetry`] lives in each [`crate::Db`]'s shared state. Recording
//! costs a few relaxed atomic RMWs (lock-free, wait-free on the hot path);
//! reading freezes everything into a [`TelemetrySnapshot`], which merges
//! across shards and diffs against an earlier snapshot for phase
//! measurement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dlsm_memnode::ClientNetStats;
use dlsm_telemetry::{Histogram, OpHistograms, TelemetrySnapshot, VerbTraffic};

/// Lock-free telemetry shared by one database instance and every reader,
/// flush thread, and compaction coordinator it spawns.
#[derive(Debug, Default)]
pub struct DbTelemetry {
    /// Latency per op class (put, get hit/miss, scan-next, flush,
    /// compaction round-trip).
    pub ops: OpHistograms,
    /// Time a `get` spends probing MemTables (every get enters this phase).
    pub get_memtable: Histogram,
    /// Time a `get` spends probing overlapping L0 tables (only gets that
    /// miss the MemTables).
    pub get_l0: Histogram,
    /// Time a `get` spends probing levels ≥ 1.
    pub get_deep: Histogram,
    /// Byte-addressable table probes answered `NotFound` from compute-local
    /// metadata (bloom filter / index rejection) — zero RDMA reads issued.
    pub bloom_skips: AtomicU64,
    /// Table probes resolved from a compute-local L0 image (hot-L0 cache).
    pub l0_cache_hits: AtomicU64,
    /// RPC retry/reconnect totals aggregated over every client this
    /// database opens (flush, GC, compaction pool, two-sided readers).
    pub net: Arc<ClientNetStats>,
}

impl DbTelemetry {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Freeze op histograms, breakdown histograms and counters. RDMA verb
    /// traffic is attached by callers that own a channel or fabric (see
    /// [`verb_traffic`]) so shard merges never double-count the fabric.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.ops = self.ops.snapshot().to_vec();
        s.set_breakdown("get_memtable", self.get_memtable.snapshot());
        s.set_breakdown("get_l0", self.get_l0.snapshot());
        s.set_breakdown("get_deep", self.get_deep.snapshot());
        s.set_counter("bloom_skips", self.bloom_skips.load(Ordering::Relaxed));
        s.set_counter("l0_cache_hits", self.l0_cache_hits.load(Ordering::Relaxed));
        let (retries, reconnects) = self.net.totals();
        s.set_counter("rpc_retries", retries);
        s.set_counter("rpc_reconnects", reconnects);
        s
    }
}

/// Convert an `rdma-sim` traffic snapshot into telemetry verb rows (verbs
/// with zero ops are omitted).
pub fn verb_traffic(stats: &rdma_sim::StatsSnapshot) -> Vec<VerbTraffic> {
    rdma_sim::Verb::ALL
        .iter()
        .filter(|&&v| stats.ops(v) != 0 || stats.bytes(v) != 0)
        .map(|&v| VerbTraffic {
            verb: v.name().to_string(),
            ops: stats.ops(v),
            bytes: stats.bytes(v),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsm_telemetry::OpClass;

    #[test]
    fn snapshot_carries_breakdowns_and_counters() {
        let t = DbTelemetry::default();
        t.ops.record(OpClass::GetHit, 1_000);
        t.get_memtable.record(200);
        DbTelemetry::bump(&t.bloom_skips);
        DbTelemetry::bump(&t.bloom_skips);
        let s = t.snapshot();
        assert_eq!(s.op(OpClass::GetHit).count(), 1);
        assert_eq!(s.breakdown_hist("get_memtable").count(), 1);
        assert_eq!(s.counter("bloom_skips"), 2);
        assert_eq!(s.counter("rpc_retries"), 0);
    }

    #[test]
    fn verb_traffic_skips_idle_verbs() {
        use rdma_sim::Verb;
        let mut raw = rdma_sim::StatsSnapshot::default();
        raw.accumulate(Verb::Read, 64);
        raw.accumulate(Verb::Read, 64);
        raw.accumulate(Verb::Send, 32);
        let rows = verb_traffic(&raw);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r.verb == "read" && r.ops == 2 && r.bytes == 128));
        assert!(!rows.iter().any(|r| r.verb == "cas"));
    }
}
