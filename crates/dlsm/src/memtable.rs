//! MemTables with pre-assigned sequence-number ranges (paper Sec. IV).

use std::ops::Range;
use std::sync::Arc;

use dlsm_skiplist::{ArcSkipIter, ArenaFull, SkipList};
use dlsm_sstable::iter::ForwardIter;
use dlsm_sstable::key::{self, InternalKey, InternalKeyComparator, SeqNo, ValueType};

/// Result of a MemTable point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemGet {
    /// Newest visible version is a live value.
    Found(Vec<u8>),
    /// Newest visible version is a tombstone.
    Deleted,
    /// No visible version of the key in this table.
    NotFound,
}

/// One MemTable: a lock-free skip list plus the sequence-number range
/// `[range.start, range.end)` pre-assigned at creation. Every entry stored
/// here has its sequence number within the range, which is what guarantees
/// that a newer version of a key can never sit in an older table (Fig. 3).
pub struct MemTable {
    /// Monotone table id (also orders L0 files produced from this table).
    pub id: u64,
    /// Pre-assigned sequence range.
    pub range: Range<SeqNo>,
    /// Retirement order, assigned when the table becomes immutable. Flush
    /// results MUST be installed in this order: a newer table reaching L0
    /// (or deeper, via compaction) before an older one is installed would
    /// put newer versions *below* older ones and break reads.
    pub flush_order: std::sync::atomic::AtomicU64,
    /// Tombstones successfully inserted into this table, so the flush path
    /// can account delete traffic without re-walking the skip list.
    tombstones: std::sync::atomic::AtomicU64,
    list: Arc<SkipList<InternalKeyComparator>>,
    size_limit: usize,
}

impl MemTable {
    /// Create a table covering `range` with an arena of `arena_bytes`.
    pub fn new(id: u64, range: Range<SeqNo>, size_limit: usize, arena_bytes: usize) -> MemTable {
        MemTable {
            id,
            range,
            flush_order: std::sync::atomic::AtomicU64::new(u64::MAX),
            tombstones: std::sync::atomic::AtomicU64::new(0),
            list: Arc::new(SkipList::with_capacity(InternalKeyComparator, arena_bytes)),
            size_limit,
        }
    }

    /// Whether `seq` belongs to this table.
    #[inline]
    pub fn covers(&self, seq: SeqNo) -> bool {
        self.range.contains(&seq)
    }

    /// Insert one entry. `seq` must be within the table's range.
    pub fn add(
        &self,
        seq: SeqNo,
        vt: ValueType,
        user_key: &[u8],
        value: &[u8],
    ) -> Result<(), ArenaFull> {
        debug_assert!(self.covers(seq), "seq {seq} outside range {:?}", self.range);
        let ikey = InternalKey::new(user_key, seq, vt);
        let out = self.list.insert(ikey.as_bytes(), value);
        if out.is_ok() && vt == ValueType::Deletion {
            // ORDERING: relaxed — monotonic stats counter; only read after
            // the table is immutable (flush accounting tolerates staleness).
            self.tombstones.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        out
    }

    /// Tombstones inserted into this table so far.
    pub fn tombstones(&self) -> u64 {
        // ORDERING: relaxed — stats read; tolerates staleness.
        self.tombstones.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Newest version of `user_key` visible at `snapshot`.
    pub fn get(&self, user_key: &[u8], snapshot: SeqNo) -> MemGet {
        let lookup = InternalKey::for_lookup(user_key, snapshot);
        match self.list.seek_ge(lookup.as_bytes()) {
            Some((ikey, value)) => match key::split(ikey) {
                Some((ukey, _, vt)) if ukey == user_key => match vt {
                    ValueType::Value => MemGet::Found(value.to_vec()),
                    ValueType::Deletion => MemGet::Deleted,
                },
                _ => MemGet::NotFound,
            },
            None => MemGet::NotFound,
        }
    }

    /// Bytes used in the arena (the flush-size upper bound).
    pub fn memory_usage(&self) -> usize {
        self.list.memory_usage()
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when no entries were inserted.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Whether the size trigger should rotate this table.
    pub fn is_full(&self) -> bool {
        self.memory_usage() >= self.size_limit
    }

    /// Owned forward iterator over the table (pins the skip list).
    pub fn iter(&self) -> MemTableIter {
        MemTableIter { it: ArcSkipIter::new(Arc::clone(&self.list)), started: false }
    }
}

impl std::fmt::Debug for MemTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTable")
            .field("id", &self.id)
            .field("range", &self.range)
            .field("len", &self.len())
            .field("bytes", &self.memory_usage())
            .finish()
    }
}

/// [`ForwardIter`] over a MemTable; owns an `Arc` of the skip list so scans
/// can hold it past the table's removal from the active list.
pub struct MemTableIter {
    it: ArcSkipIter<InternalKeyComparator>,
    started: bool,
}

impl ForwardIter for MemTableIter {
    fn valid(&self) -> bool {
        self.started && self.it.valid()
    }

    fn key(&self) -> &[u8] {
        self.it.key()
    }

    fn value(&self) -> &[u8] {
        self.it.value()
    }

    fn next(&mut self) -> dlsm_sstable::Result<()> {
        self.it.advance();
        Ok(())
    }

    fn seek(&mut self, ikey: &[u8]) -> dlsm_sstable::Result<()> {
        self.it.seek(ikey);
        self.started = true;
        Ok(())
    }

    fn seek_to_first(&mut self) -> dlsm_sstable::Result<()> {
        self.it.seek_to_first();
        self.started = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MemTable {
        MemTable::new(1, 100..200, 64 << 10, 256 << 10)
    }

    #[test]
    fn covers_respects_range() {
        let m = table();
        assert!(!m.covers(99));
        assert!(m.covers(100));
        assert!(m.covers(199));
        assert!(!m.covers(200));
    }

    #[test]
    fn get_visibility_by_snapshot() {
        let m = table();
        m.add(110, ValueType::Value, b"k", b"v110").unwrap();
        m.add(120, ValueType::Value, b"k", b"v120").unwrap();
        assert_eq!(m.get(b"k", 115), MemGet::Found(b"v110".to_vec()));
        assert_eq!(m.get(b"k", 120), MemGet::Found(b"v120".to_vec()));
        assert_eq!(m.get(b"k", 109), MemGet::NotFound);
        assert_eq!(m.get(b"other", 150), MemGet::NotFound);
    }

    #[test]
    fn tombstone_visible() {
        let m = table();
        m.add(110, ValueType::Value, b"k", b"v").unwrap();
        m.add(120, ValueType::Deletion, b"k", b"").unwrap();
        assert_eq!(m.get(b"k", 130), MemGet::Deleted);
        assert_eq!(m.get(b"k", 115), MemGet::Found(b"v".to_vec()));
    }

    #[test]
    fn iter_yields_internal_order() {
        let m = table();
        m.add(110, ValueType::Value, b"b", b"1").unwrap();
        m.add(111, ValueType::Value, b"a", b"2").unwrap();
        m.add(112, ValueType::Value, b"b", b"3").unwrap();
        let mut it = m.iter();
        it.seek_to_first().unwrap();
        let mut got = Vec::new();
        while it.valid() {
            let (u, s, _) = key::split(it.key()).unwrap();
            got.push((u.to_vec(), s));
            it.next().unwrap();
        }
        // a@111, then b newest-first: b@112, b@110.
        assert_eq!(got, vec![(b"a".to_vec(), 111), (b"b".to_vec(), 112), (b"b".to_vec(), 110)]);
    }

    #[test]
    fn size_trigger() {
        let m = MemTable::new(1, 0..1000, 4 << 10, 64 << 10);
        assert!(!m.is_full());
        for i in 0..40u64 {
            m.add(i, ValueType::Value, format!("key{i}").as_bytes(), &[7u8; 100]).unwrap();
        }
        assert!(m.is_full());
    }
}
