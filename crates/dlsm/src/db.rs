//! The dLSM database: write path, read path, background work, snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use dlsm_memnode::RpcClient;
use rdma_sim::QueuePair;
use dlsm_sstable::byte_addr::{TableGet, TableMeta};
use dlsm_sstable::coding::{get_len_prefixed, get_u32, get_u64, put_len_prefixed, put_u32, put_u64};
use dlsm_sstable::key::{SeqNo, ValueType};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::compaction::{pick_compaction, run_local, run_near_data};
use crate::config::{DataPath, DbConfig, SwitchProtocol};
use crate::context::{ComputeContext, MemNodeHandle};
use crate::flush::{flush_memtable, FlushTransport};
use crate::handle::{Extent, GcSink, MetaKind, Origin, TableHandle};
use crate::memtable::{MemGet, MemTable};
use crate::remote::{table_get, ReadChannel};
use dlsm_sstable::source::DataSource as _;
use crate::scan::DbScan;
use crate::stats::DbStats;
use crate::version::{VersionEdit, VersionSet};
use crate::{DbError, Result};

/// Expected bytes per entry used to derive the sequence-range width when the
/// config leaves it at 0 (paper workload: 20 B key + 400 B value + trailer).
const DEFAULT_ENTRY_BYTES: usize = 470;

pub(crate) struct Shared {
    pub(crate) ctx: Arc<ComputeContext>,
    pub(crate) memnode: Arc<MemNodeHandle>,
    pub(crate) cfg: DbConfig,
    /// Next sequence number to assign.
    seq: AtomicU64,
    current: RwLock<Arc<MemTable>>,
    /// Immutable MemTables awaiting flush, oldest first.
    immutables: Mutex<Vec<Arc<MemTable>>>,
    imm_count: AtomicUsize,
    flush_queue_len: AtomicUsize,
    switch_lock: Mutex<()>,
    /// Table/MemTable id generator (L0 ordering relies on flush ids).
    next_id: AtomicU64,
    pub(crate) versions: VersionSet,
    l0_count: AtomicUsize,
    stall_lock: Mutex<()>,
    stall_cv: Condvar,
    work_lock: Mutex<()>,
    work_cv: Condvar,
    flush_tx: Sender<Arc<MemTable>>,
    pub(crate) gc: Arc<GcSink>,
    pub(crate) stats: DbStats,
    pub(crate) telemetry: Arc<crate::telemetry::DbTelemetry>,
    stopping: AtomicBool,
    snapshots: Mutex<BTreeMap<SeqNo, usize>>,
    compaction_idle: AtomicBool,
    /// Global write mutex for `serialized_writes` (baseline emulation).
    write_serializer: Mutex<()>,
    /// In-order sequence publication (the visible snapshot horizon).
    publication: crate::publication::Publication,
    /// Compute-side read cache (blocks + hot extents); `None` when disabled.
    pub(crate) cache: Option<Arc<dlsm_cache::ReadCache>>,
    /// Next retirement order to assign (at switch time).
    retire_counter: AtomicU64,
    /// Retirement order whose flush should install next; flush workers
    /// serialize on this so L0 receives tables strictly in MemTable order
    /// even though serialization runs in parallel.
    install_turn: Mutex<u64>,
    install_cv: Condvar,
    /// When this shard was opened (uptime gauge).
    opened_at: Instant,
}

/// Point-in-time write-path state, read by the gauge sampler
/// (`crate::metrics`) and stats report without reaching into `Shared`'s
/// private fields from sibling modules.
pub(crate) struct LiveState {
    /// Bytes used in the current MemTable's arena.
    pub(crate) mem_bytes: u64,
    /// Configured MemTable rotation threshold.
    pub(crate) mem_limit: u64,
    /// Entries in the current MemTable.
    pub(crate) mem_entries: u64,
    /// Sequence numbers left before the current table's range is exhausted.
    pub(crate) seq_headroom: u64,
    /// Immutable MemTables awaiting flush.
    pub(crate) imm_count: usize,
    /// MemTables enqueued to flush workers.
    pub(crate) flush_queue_len: usize,
    /// Time since `Db::open`.
    pub(crate) uptime: Duration,
}

impl Shared {
    pub(crate) fn live_state(&self) -> LiveState {
        // ORDERING: relaxed — gauge snapshot; a slightly stale seq only skews the headroom gauge.
        let next_seq = self.seq.load(Ordering::Relaxed);
        let cur = self.current.read();
        LiveState {
            mem_bytes: cur.memory_usage() as u64,
            mem_limit: self.cfg.memtable_size as u64,
            mem_entries: cur.len() as u64,
            seq_headroom: cur.range.end.saturating_sub(next_seq.max(cur.range.start)),
            imm_count: self.imm_count.load(Ordering::Acquire),
            flush_queue_len: self.flush_queue_len.load(Ordering::Acquire),
            uptime: self.opened_at.elapsed(),
        }
    }

    fn new_memtable(&self, start: SeqNo) -> Arc<MemTable> {
        // ORDERING: relaxed — id generation needs uniqueness only, which the atomic RMW provides at any ordering.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // The naive protocol has no range discipline: any sequence number
        // may land in whatever table is current, so the table must cover
        // the whole sequence space.
        let range = match self.cfg.switch_protocol {
            SwitchProtocol::SeqRange => start..start + self.cfg.seq_range_width,
            SwitchProtocol::NaiveDoubleChecked => 0..dlsm_sstable::key::MAX_SEQ,
        };
        Arc::new(MemTable::new(id, range, self.cfg.memtable_size, self.cfg.arena_capacity()))
    }

    /// Oldest sequence number any live snapshot may still read.
    fn smallest_snapshot(&self) -> SeqNo {
        self.snapshots
            .lock()
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.read_horizon())
    }

    /// The read horizon: the largest *published* sequence number. Every
    /// write at or below it is fully inserted (or permanently unused), so
    /// reads are monotone and snapshots are consistent even with concurrent
    /// out-of-order writers.
    fn read_horizon(&self) -> SeqNo {
        self.publication.horizon()
    }

    pub(crate) fn read_channel(&self) -> Result<ReadChannel> {
        match self.cfg.data_path {
            DataPath::OneSided => Ok(ReadChannel::one_sided(
                self.ctx.fabric().create_qp(self.ctx.node().id(), self.memnode.node_id())?,
            )),
            DataPath::TwoSidedRpc => Ok(ReadChannel::two_sided(
                RpcClient::new(
                    self.ctx.fabric(),
                    self.ctx.node(),
                    self.memnode.node_id(),
                    self.cfg.scan_prefetch + (64 << 10),
                )?
                .with_policy(self.cfg.rpc_retry)
                .with_net_stats(Arc::clone(&self.telemetry.net)),
            )),
        }
    }

    fn notify_stall(&self) {
        let _g = self.stall_lock.lock();
        self.stall_cv.notify_all();
    }

    fn notify_work(&self) {
        let _g = self.work_lock.lock();
        self.work_cv.notify_all();
    }

    /// Pin the MemTables (newest first) then the version — in that order, so
    /// a concurrent flush (which installs the version *before* removing the
    /// MemTable) can never hide a table from the reader.
    fn pin(&self) -> (Vec<Arc<MemTable>>, Arc<crate::version::Version>) {
        let mut mems = Vec::with_capacity(4);
        mems.push(Arc::clone(&self.current.read()));
        {
            let imms = self.immutables.lock();
            for m in imms.iter().rev() {
                mems.push(Arc::clone(m));
            }
        }
        let version = self.versions.current();
        (mems, version)
    }

    /// Switch because `seq` ran past the current range's end `expected_end`
    /// (the dLSM protocol, Sec. IV) — double-checked under the switch lock.
    fn switch_at(&self, expected_end: SeqNo) {
        let _g = self.switch_lock.lock();
        {
            let cur = self.current.read();
            if cur.range.end != expected_end {
                return; // somebody already switched
            }
        }
        self.do_switch(expected_end);
    }

    /// Switch because the table filled early (size trigger or arena-full).
    fn switch_full(&self, full_id: u64) {
        let _g = self.switch_lock.lock();
        let end = {
            let cur = self.current.read();
            if cur.id != full_id {
                return; // already switched past the full table
            }
            cur.range.end
        };
        self.do_switch(end);
    }

    /// Must hold `switch_lock`. Installs a new table whose range starts at
    /// `start` (= old range end, keeping ranges consecutive and disjoint)
    /// and bumps the sequence counter past it so stale writers re-fetch
    /// instead of targeting the retired table.
    fn do_switch(&self, start: SeqNo) {
        let _sp = dlsm_trace::span(dlsm_trace::Category::Db, "memtable_switch");
        let new = self.new_memtable(start);
        // Hold the immutables lock *across* the swap: a reader pins the
        // current table first and the immutable list second, so the retired
        // table must already be in the list by the time the list becomes
        // readable — otherwise there is a window where it is neither
        // current nor immutable and its data vanishes from reads.
        let mut imms = self.immutables.lock();
        let old = {
            let mut w = self.current.write();
            std::mem::replace(&mut *w, new)
        };
        // Jump the counter so no future fetch lands in the old range (only
        // meaningful for the range-disciplined protocol — naive tables all
        // cover the full sequence space).
        if self.cfg.switch_protocol == SwitchProtocol::SeqRange {
            let prev = self.seq.fetch_max(start, Ordering::AcqRel);
            if prev < start {
                // The skipped range [prev, start) was never handed to any
                // writer; publish it so the horizon can advance past it.
                self.publication.publish(prev, start - prev);
            }
        }
        DbStats::bump(&self.stats.switches);
        dlsm_timeline::post(dlsm_timeline::EngineEvent::MemtableSwitch { mem_id: old.id });
        if !old.is_empty() {
            let order = self.retire_counter.fetch_add(1, Ordering::AcqRel);
            old.flush_order.store(order, Ordering::Release);
            imms.push(Arc::clone(&old));
            drop(imms);
            self.imm_count.fetch_add(1, Ordering::Release);
            let queued = self.flush_queue_len.fetch_add(1, Ordering::Release) + 1;
            dlsm_trace::instant(dlsm_trace::Category::Flush, "flush_enqueue", queued as u64);
            let _ = self.flush_tx.send(old);
        }
    }

    /// Block until it is `order`'s turn to install a flush result, then run
    /// `install` and pass the turn on. Serializing installs (not the
    /// serialization work itself) preserves the LSM level invariant under
    /// parallel flush threads.
    fn install_in_order(&self, order: u64, install: impl FnOnce()) {
        let _sp = dlsm_trace::span_arg(dlsm_trace::Category::Flush, "install", order);
        let mut turn = self.install_turn.lock();
        while *turn != order {
            self.install_cv.wait_for(&mut turn, Duration::from_millis(50));
            if self.stopping.load(Ordering::Acquire) && *turn != order {
                // Give up ordering during shutdown rather than deadlocking
                // on a worker that already exited.
                break;
            }
        }
        install();
        *turn = (*turn).max(order) + 1;
        self.install_cv.notify_all();
    }

    fn write_stall_check(&self) -> bool {
        let imm_ok = self.imm_count.load(Ordering::Acquire) < self.cfg.max_immutables;
        let l0_ok = self
            .cfg
            .l0_stop_writes_trigger
            .is_none_or(|t| self.l0_count.load(Ordering::Acquire) < t);
        imm_ok && l0_ok
    }

    /// Which condition is currently blocking writers. Checked once when a
    /// stall begins: the queue that was full at that moment is the cause we
    /// attribute the whole episode to, even if the other limit trips later.
    fn stall_reason(&self) -> crate::telemetry::StallReason {
        if self.imm_count.load(Ordering::Acquire) >= self.cfg.max_immutables {
            crate::telemetry::StallReason::ImmQueueFull
        } else {
            crate::telemetry::StallReason::L0Limit
        }
    }

    fn wait_for_write_room(&self) -> Result<()> {
        if self.write_stall_check() {
            return Ok(());
        }
        DbStats::bump(&self.stats.stall_events);
        let reason = self.stall_reason();
        let _sp =
            dlsm_trace::span_arg(dlsm_trace::Category::Stall, "write_stall", reason.trace_arg());
        // The matching StallEnd is posted by `note_stall` below, from this
        // same thread, so episode folding pairs them by poster tid.
        dlsm_timeline::post(dlsm_timeline::EngineEvent::StallBegin { reason: reason.trace_arg() });
        let t0 = Instant::now();
        let mut guard = self.stall_lock.lock();
        while !self.write_stall_check() {
            if self.stopping.load(Ordering::Acquire) {
                return Err(DbError::ShuttingDown);
            }
            // HOTPATH: write stall is the intended backpressure point (paper
            // Sec. X-C); writers must park until flush/compaction frees room.
            // ROADMAP item 3 tracks making the wakeup edge-triggered.
            self.stall_cv.wait_for(&mut guard, Duration::from_millis(2));
        }
        drop(guard);
        let waited = t0.elapsed();
        DbStats::add(&self.stats.stall_nanos, waited.as_nanos() as u64);
        self.telemetry.note_stall(reason, waited.as_micros() as u64);
        Ok(())
    }

    /// Apply a batch under one consecutive sequence block. All entries land
    /// in the same MemTable; if the block would straddle a range boundary
    /// (or the arena fills mid-batch) the whole batch re-fetches a fresh
    /// block — the abandoned prefix is shadowed by the retry's higher
    /// sequence numbers, so readers converge on the full batch.
    fn write_batch(&self, batch: &crate::batch::WriteBatch) -> Result<crate::batch::BatchCommit> {
        let n = batch.entries.len() as u64;
        if n == 0 {
            return Ok(crate::batch::BatchCommit { first_seq: 0, count: 0 });
        }
        if n >= self.cfg.seq_range_width.max(2) {
            return Err(DbError::InvalidArgument(format!(
                "batch of {n} entries exceeds the MemTable sequence-range width {}",
                self.cfg.seq_range_width
            )));
        }
        let _sp = dlsm_trace::span_arg(dlsm_trace::Category::Db, "write_batch", n);
        let t0 = Instant::now();
        self.wait_for_write_room()?;
        let _serializer = self.cfg.serialized_writes.then(|| self.write_serializer.lock());
        'refetch: loop {
            let base = self.seq.fetch_add(n, Ordering::AcqRel);
            loop {
                let guard = self.current.read();
                if base < guard.range.start {
                    drop(guard);
                    DbStats::bump(&self.stats.reseqs);
                    self.publication.publish(base, n);
                    continue 'refetch;
                }
                if base + n > guard.range.end {
                    // The block must fit entirely inside one table.
                    let end = guard.range.end;
                    drop(guard);
                    self.switch_at(end);
                    if base >= end {
                        continue; // retry the same block against the new table
                    }
                    DbStats::bump(&self.stats.reseqs);
                    self.publication.publish(base, n);
                    continue 'refetch; // block straddles: take a fresh one
                }
                let mut failed = false;
                for (i, (vt, key, value)) in batch.entries.iter().enumerate() {
                    if guard.add(base + i as u64, *vt, key, value).is_err() {
                        failed = true;
                        break;
                    }
                }
                if failed {
                    // Arena full mid-batch: rotate and re-apply the whole
                    // batch (the inserted prefix is shadowed by the retry).
                    let id = guard.id;
                    drop(guard);
                    DbStats::bump(&self.stats.reseqs);
                    self.publication.publish(base, n);
                    self.switch_full(id);
                    continue 'refetch;
                }
                let rotate = guard.is_full().then(|| guard.id);
                drop(guard);
                self.publication.publish(base, n);
                if let Some(id) = rotate {
                    self.switch_full(id);
                }
                self.publication.wait_visible(base + n - 1);
                for (vt, _, _) in &batch.entries {
                    match vt {
                        ValueType::Value => DbStats::bump(&self.stats.puts),
                        ValueType::Deletion => DbStats::bump(&self.stats.deletes),
                    }
                }
                // One Put sample per committed batch (not per entry).
                self.telemetry.record_op(dlsm_telemetry::OpClass::Put, t0.elapsed());
                return Ok(crate::batch::BatchCommit { first_seq: base, count: n });
            }
        }
    }

    fn write(&self, user_key: &[u8], value: &[u8], vt: ValueType) -> Result<SeqNo> {
        let _sp = dlsm_trace::span(dlsm_trace::Category::Db, "put");
        let t0 = Instant::now();
        self.wait_for_write_room()?;
        let _serializer = self.cfg.serialized_writes.then(|| self.write_serializer.lock());
        let result = match self.cfg.switch_protocol {
            SwitchProtocol::SeqRange => self.write_seq_range(user_key, value, vt),
            SwitchProtocol::NaiveDoubleChecked => self.write_naive(user_key, value, vt),
        };
        if result.is_ok() {
            self.telemetry.record_op(dlsm_telemetry::OpClass::Put, t0.elapsed());
        }
        result
    }

    /// The dLSM write path (Sec. IV): the pre-assigned range decides which
    /// table a sequence number belongs to. In-range writers never lock;
    /// out-of-range writers race through double-checked locking to switch.
    fn write_seq_range(&self, user_key: &[u8], value: &[u8], vt: ValueType) -> Result<SeqNo> {
        'refetch: loop {
            let seq = self.seq.fetch_add(1, Ordering::AcqRel);
            loop {
                let guard = self.current.read();
                if seq < guard.range.start {
                    // The table for this seq was already retired: abandon the
                    // number (nothing was inserted under it) and take a new
                    // one. Gaps in the sequence space are harmless.
                    drop(guard);
                    DbStats::bump(&self.stats.reseqs);
                    self.publication.publish(seq, 1);
                    continue 'refetch;
                }
                if seq >= guard.range.end {
                    let end = guard.range.end;
                    drop(guard);
                    self.switch_at(end);
                    continue; // retry the same seq against the new table
                }
                // In range: insert while holding the read guard so a switch
                // (write lock) cannot complete mid-insert.
                match guard.add(seq, vt, user_key, value) {
                    Ok(()) => {
                        let rotate = guard.is_full().then(|| guard.id);
                        drop(guard);
                        self.publication.publish(seq, 1);
                        if let Some(id) = rotate {
                            self.switch_full(id);
                        }
                        // Read-your-writes: return once the write is visible.
                        self.publication.wait_visible(seq);
                        return Ok(seq);
                    }
                    Err(_full) => {
                        let id = guard.id;
                        drop(guard);
                        DbStats::bump(&self.stats.reseqs);
                        self.publication.publish(seq, 1);
                        self.switch_full(id);
                        continue 'refetch;
                    }
                }
            }
        }
    }

    /// The straw-man switch protocol the paper argues against (size check +
    /// double-checked locking). Retained for the ablation benchmark; it can
    /// place a newer version in an older table under concurrency.
    fn write_naive(&self, user_key: &[u8], value: &[u8], vt: ValueType) -> Result<SeqNo> {
        loop {
            let seq = self.seq.fetch_add(1, Ordering::AcqRel);
            let guard = self.current.read();
            // No range discipline: insert into whatever is current.
            match guard.add(seq, vt, user_key, value) {
                Ok(()) => {
                    let rotate = guard.is_full().then(|| guard.id);
                    drop(guard);
                    self.publication.publish(seq, 1);
                    if let Some(id) = rotate {
                        self.switch_full(id);
                    }
                    self.publication.wait_visible(seq);
                    return Ok(seq);
                }
                Err(_full) => {
                    let id = guard.id;
                    drop(guard);
                    self.publication.publish(seq, 1);
                    self.switch_full(id);
                }
            }
        }
    }
}

/// A dLSM database instance — one shard: one LSM-tree whose MemTables live
/// on this compute node and whose SSTables live on one memory node.
pub struct Db {
    shared: Arc<Shared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    down: AtomicBool,
}

impl Db {
    /// Open a database against `memnode`, spawning flush threads and the
    /// compaction coordinator.
    pub fn open(
        ctx: Arc<ComputeContext>,
        memnode: Arc<MemNodeHandle>,
        cfg: DbConfig,
    ) -> Result<Db> {
        let cfg = cfg.normalized(DEFAULT_ENTRY_BYTES);
        let (flush_tx, flush_rx) = unbounded();
        let gc = GcSink::new(Arc::clone(memnode.flush_alloc()));
        let shared = Arc::new(Shared {
            ctx,
            memnode,
            seq: AtomicU64::new(1),
            current: RwLock::new(Arc::new(MemTable::new(
                0,
                match cfg.switch_protocol {
                    SwitchProtocol::SeqRange => 1..1 + cfg.seq_range_width,
                    SwitchProtocol::NaiveDoubleChecked => 0..dlsm_sstable::key::MAX_SEQ,
                },
                cfg.memtable_size,
                cfg.arena_capacity(),
            ))),
            immutables: Mutex::new(Vec::new()),
            imm_count: AtomicUsize::new(0),
            flush_queue_len: AtomicUsize::new(0),
            switch_lock: Mutex::new(()),
            next_id: AtomicU64::new(1),
            versions: VersionSet::new(cfg.max_levels),
            l0_count: AtomicUsize::new(0),
            stall_lock: Mutex::new(()),
            stall_cv: Condvar::new(),
            work_lock: Mutex::new(()),
            work_cv: Condvar::new(),
            flush_tx,
            gc,
            stats: DbStats::default(),
            telemetry: Arc::new(crate::telemetry::DbTelemetry::default()),
            stopping: AtomicBool::new(false),
            snapshots: Mutex::new(BTreeMap::new()),
            compaction_idle: AtomicBool::new(true),
            write_serializer: Mutex::new(()),
            publication: crate::publication::Publication::new(1),
            cache: dlsm_cache::ReadCache::new(cfg.cache.clone()),
            retire_counter: AtomicU64::new(0),
            install_turn: Mutex::new(0),
            install_cv: Condvar::new(),
            opened_at: Instant::now(),
            cfg,
        });

        let mut threads = Vec::new();
        for _ in 0..shared.cfg.flush_threads.max(1) {
            let s = Arc::clone(&shared);
            let rx = flush_rx.clone();
            threads.push(std::thread::spawn(move || flush_loop(s, rx)));
        }
        {
            let s = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || compaction_loop(s)));
        }
        Ok(Db { shared, threads: Mutex::new(threads), down: AtomicBool::new(false) })
    }

    /// Insert or overwrite `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<SeqNo> {
        let seq = self.shared.write(key, value, ValueType::Value)?;
        DbStats::bump(&self.shared.stats.puts);
        Ok(seq)
    }

    /// Apply `batch` atomically-in-order under one consecutive sequence
    /// block (paper Sec. II-C).
    pub fn write(&self, batch: &crate::batch::WriteBatch) -> Result<crate::batch::BatchCommit> {
        self.shared.write_batch(batch)
    }

    /// Delete `key` (writes a tombstone).
    pub fn delete(&self, key: &[u8]) -> Result<SeqNo> {
        let seq = self.shared.write(key, b"", ValueType::Deletion)?;
        DbStats::bump(&self.shared.stats.deletes);
        Ok(seq)
    }

    /// The current sequence horizon (reads at this snapshot see every
    /// completed write).
    pub fn current_seq(&self) -> SeqNo {
        self.shared.read_horizon()
    }

    /// A thread-local read handle with its own queue pair (or RPC client,
    /// for the two-sided data path). Fails only if the fabric refuses a new
    /// connection to the memnode (e.g. during a partition window).
    pub fn try_reader(&self) -> Result<DbReader> {
        let channel = self.shared.read_channel()?;
        Ok(DbReader { shared: Arc::clone(&self.shared), channel })
    }

    /// Infallible convenience wrapper over [`Db::try_reader`] for benches,
    /// examples, and tests that run against a healthy fabric.
    pub fn reader(&self) -> DbReader {
        // PANIC-SAFE: convenience API; connection setup was already proven
        // possible by Db::open, and data-path code uses try_reader().
        self.try_reader().expect("reader channel")
    }

    /// Pin a consistent snapshot (Sec. V-B: the pinned metadata pins every
    /// SSTable it references).
    pub fn snapshot(&self) -> Snapshot {
        let seq = self.current_seq();
        *self.shared.snapshots.lock().entry(seq).or_insert(0) += 1;
        let (mems, version) = self.shared.pin();
        Snapshot { seq, mems, version, shared: Arc::clone(&self.shared) }
    }

    /// Database counters.
    pub fn stats(&self) -> &DbStats {
        &self.shared.stats
    }

    /// Internal shared state, for sibling modules (`crate::metrics`,
    /// `crate::report`) that register collectors or build stats reports.
    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Live telemetry (latency histograms, breakdown spans, RPC counters).
    pub fn telemetry(&self) -> &Arc<crate::telemetry::DbTelemetry> {
        &self.shared.telemetry
    }

    /// A frozen telemetry snapshot: op/breakdown histograms plus every
    /// [`DbStats`] counter. RDMA verb traffic is *not* included — attach it
    /// from the fabric (or a reader's channel) with
    /// [`crate::telemetry::verb_traffic`], so merging shard snapshots never
    /// double-counts shared fabric counters.
    pub fn telemetry_snapshot(&self) -> dlsm_telemetry::TelemetrySnapshot {
        let mut s = self.shared.telemetry.snapshot();
        for (name, v) in self.shared.stats.snapshot().named_counters() {
            s.set_counter(name, v);
        }
        if let Some(cs) = self.cache_stats() {
            for (name, v) in crate::named_cache_counters(&cs) {
                s.set_counter(name, v);
            }
        }
        s
    }

    /// Read-cache counters and occupancy, if the cache is enabled.
    pub fn cache_stats(&self) -> Option<dlsm_cache::CacheStatsSnapshot> {
        self.shared.cache.as_ref().map(|c| c.snapshot())
    }

    /// Tables per level of the current version.
    pub fn level_shape(&self) -> Vec<usize> {
        self.shared.versions.current().shape()
    }

    /// Bytes resident in the remote flush zone + compute-visible metadata.
    pub fn remote_flush_in_use(&self) -> u64 {
        self.shared.memnode.flush_alloc().in_use()
    }

    /// Every extent referenced by the current version, as
    /// `(origin, offset, len)` with `len` rounded up to the allocator's
    /// 8-byte granule. Chaos tests compare this against the allocators'
    /// `in_use()` figures to prove that retried flushes and compactions
    /// leak no remote memory.
    pub fn live_extents(&self) -> Vec<(Origin, u64, u64)> {
        let version = self.shared.versions.current();
        let mut out = Vec::new();
        for level in 0..version.level_count() {
            for table in version.level(level) {
                out.push((table.origin, table.extent.offset, table.extent.len.div_ceil(8) * 8));
            }
        }
        out
    }

    /// Force the current MemTable out and wait until every immutable
    /// MemTable has been flushed.
    pub fn force_flush(&self) -> Result<()> {
        {
            let cur = self.shared.current.read();
            if !cur.is_empty() {
                let id = cur.id;
                drop(cur);
                self.shared.switch_full(id);
            }
        }
        while self.shared.imm_count.load(Ordering::Acquire) > 0
            || self.shared.flush_queue_len.load(Ordering::Acquire) > 0
        {
            if self.shared.stopping.load(Ordering::Acquire) {
                return Err(DbError::ShuttingDown);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }

    /// Block until no flush or compaction work remains (used by read-only
    /// benchmarks that start "after all background compaction finishes").
    pub fn wait_until_quiescent(&self) {
        loop {
            let flushed = self.shared.imm_count.load(Ordering::Acquire) == 0
                && self.shared.flush_queue_len.load(Ordering::Acquire) == 0;
            let idle = self.shared.compaction_idle.load(Ordering::Acquire);
            let mut ptr = Vec::new();
            let pending =
                pick_compaction(&self.shared.versions.current(), &self.shared.cfg, &mut ptr)
                    .is_some();
            if flushed && idle && !pending {
                return;
            }
            self.shared.notify_work();
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Serialize a transactionally-consistent checkpoint of the table layout
    /// (call [`Db::force_flush`] first to include MemTable contents). The
    /// checkpoint references remote extents in place; restoring yields
    /// handles that are never garbage-collected ([`Origin::External`]).
    pub fn checkpoint(&self) -> Vec<u8> {
        let snap = self.snapshot();
        let mut out = Vec::new();
        put_u64(&mut out, snap.seq);
        put_u32(&mut out, snap.version.level_count() as u32);
        for level in 0..snap.version.level_count() {
            let tables = snap.version.level(level);
            put_u32(&mut out, tables.len() as u32);
            for t in tables {
                put_u64(&mut out, t.id);
                put_u64(&mut out, t.extent.offset);
                put_u64(&mut out, t.extent.len);
                put_len_prefixed(&mut out, &t.smallest);
                put_len_prefixed(&mut out, &t.largest);
                put_u64(&mut out, t.num_entries);
                match &t.meta {
                    MetaKind::ByteAddr(meta) => {
                        out.push(0);
                        put_len_prefixed(&mut out, &meta.encode());
                    }
                    MetaKind::Block(_, bs) => {
                        out.push(1);
                        put_u32(&mut out, *bs);
                    }
                }
            }
        }
        out
    }

    /// Rebuild a database from a checkpoint produced by [`Db::checkpoint`]
    /// against the same memory node. Restored tables are `External` (not
    /// GC'd), mirroring recovery from a command log + checkpoint (Sec. VIII).
    pub fn restore(
        ctx: Arc<ComputeContext>,
        memnode: Arc<MemNodeHandle>,
        cfg: DbConfig,
        checkpoint: &[u8],
    ) -> Result<Db> {
        let db = Db::open(ctx, memnode, cfg)?;
        let shared = &db.shared;
        let seq = get_u64(checkpoint, 0)?;
        let levels = get_u32(checkpoint, 8)? as usize;
        let mut off = 12;
        let mut edit = VersionEdit::default();
        let mut max_id = 0u64;
        for level in 0..levels.min(shared.cfg.max_levels) {
            let count = get_u32(checkpoint, off)? as usize;
            off += 4;
            for _ in 0..count {
                let id = get_u64(checkpoint, off)?;
                let offset = get_u64(checkpoint, off + 8)?;
                let len = get_u64(checkpoint, off + 16)?;
                off += 24;
                let (smallest, n) = get_len_prefixed(checkpoint, off)?;
                off += n;
                let (largest, n) = get_len_prefixed(checkpoint, off)?;
                off += n;
                let num_entries = get_u64(checkpoint, off)?;
                off += 8;
                let kind = checkpoint
                    .get(off)
                    .copied()
                    .ok_or_else(|| DbError::Sst("truncated checkpoint".into()))?;
                off += 1;
                let meta = match kind {
                    0 => {
                        let (bytes, n) = get_len_prefixed(checkpoint, off)?;
                        off += n;
                        let (meta, _) = TableMeta::decode(bytes)?;
                        MetaKind::ByteAddr(Arc::new(meta))
                    }
                    1 => {
                        let bs = get_u32(checkpoint, off)?;
                        off += 4;
                        let source = crate::remote::RemoteSource::new(
                            shared.read_channel()?,
                            shared.memnode.remote().addr(offset),
                            len,
                        );
                        let reader = dlsm_sstable::block::BlockTableReader::open(source)?;
                        MetaKind::Block(reader.meta_cache(), bs)
                    }
                    other => return Err(DbError::Sst(format!("bad meta kind {other}"))),
                };
                max_id = max_id.max(id);
                edit.add(
                    level,
                    TableHandle::new(
                        id,
                        shared.memnode.remote(),
                        Extent { offset, len },
                        Origin::External,
                        meta,
                        smallest.to_vec(),
                        largest.to_vec(),
                        num_entries,
                        None,
                    ),
                );
            }
        }
        let v = shared.versions.install(&edit);
        shared.l0_count.store(v.level(0).len(), Ordering::Release);
        let prev = shared.seq.fetch_max(seq, Ordering::AcqRel);
        if prev < seq {
            shared.publication.publish(prev, seq - prev);
        }
        shared.next_id.fetch_max(max_id + 1, Ordering::AcqRel);
        // The restored sequence horizon starts a fresh MemTable range.
        let start = shared.seq.load(Ordering::Acquire);
        {
            let _g = shared.switch_lock.lock();
            let new = shared.new_memtable(start);
            let mut w = shared.current.write();
            *w = new;
        }
        Ok(db)
    }

    /// Diagnostic: report, per pinned source, what it holds for `key` at the
    /// current horizon. For debugging visibility issues; not a public API.
    #[doc(hidden)]
    pub fn debug_lookup(&self, key: &[u8]) -> String {
        use std::fmt::Write as _;
        let seq = self.shared.read_horizon();
        let (mems, version) = self.shared.pin();
        let mut out = String::new();
        let _ = writeln!(out, "horizon={seq}");
        for m in &mems {
            let _ = writeln!(
                out,
                "  mem id={} range={:?} order={} len={} -> {:?}",
                m.id,
                m.range,
                m.flush_order.load(Ordering::Acquire),
                m.len(),
                m.get(key, seq)
            );
        }
        let channel = self.shared.read_channel().expect("debug channel");
        for (li, _) in (0..version.level_count()).enumerate() {
            for t in version.level(li) {
                if t.smallest_user() <= key && key <= t.largest_user() {
                    let got =
                        crate::remote::table_get(&channel, t, key, seq, self.shared.cache.as_ref());
                    let _ = writeln!(
                        out,
                        "  L{li} table id={} [{:?}..{:?}] -> {:?}",
                        t.id,
                        String::from_utf8_lossy(&t.smallest[..t.smallest.len().min(12)]),
                        String::from_utf8_lossy(&t.largest[..t.largest.len().min(12)]),
                        got
                    );
                }
            }
        }
        out
    }

    /// Stop background work, flush queued MemTables, drain remote GC, and
    /// join all threads. Idempotent.
    pub fn shutdown(&self) {
        if self.down.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.stopping.store(true, Ordering::Release);
        self.shared.notify_stall();
        self.shared.notify_work();
        let threads = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            let _ = t.join();
        }
        // Final remote-GC drain.
        if let Some(batch) = self.shared.gc.take_remote_batch(0) {
            if let Ok(client) = RpcClient::new(
                self.shared.ctx.fabric(),
                self.shared.ctx.node(),
                self.shared.memnode.node_id(),
                64 << 10,
            ) {
                let mut client = client
                    .with_policy(self.shared.cfg.rpc_retry)
                    .with_net_stats(Arc::clone(&self.shared.telemetry.net));
                let _ = client.free_batch(&batch, Duration::from_secs(5));
            }
        }
    }

}

impl Drop for Db {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A pinned, immutable view of the database at one sequence horizon.
pub struct Snapshot {
    seq: SeqNo,
    mems: Vec<Arc<MemTable>>,
    version: Arc<crate::version::Version>,
    shared: Arc<Shared>,
}

impl Snapshot {
    /// The snapshot's sequence horizon.
    pub fn seq(&self) -> SeqNo {
        self.seq
    }

    pub(crate) fn parts(&self) -> (&[Arc<MemTable>], &Arc<crate::version::Version>) {
        (&self.mems, &self.version)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut snaps = self.shared.snapshots.lock();
        if let Some(n) = snaps.get_mut(&self.seq) {
            *n -= 1;
            if *n == 0 {
                snaps.remove(&self.seq);
            }
        }
    }
}

/// A thread-local read handle: owns one queue pair shared by all table
/// readers/iterators it creates (Sec. X-B: thread-local queue pairs).
pub struct DbReader {
    shared: Arc<Shared>,
    channel: ReadChannel,
}

impl DbReader {
    /// Lifetime RDMA traffic carried by this reader's channel. Deltas
    /// around a single `get` attribute its exact fetch/byte cost — e.g.
    /// one point get on a byte-addressable table costs exactly one RDMA
    /// READ (Sec. VI).
    pub fn traffic(&self) -> rdma_sim::StatsSnapshot {
        self.channel.traffic()
    }

    /// Read the newest visible version of `key` at the current horizon.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let seq = self.shared.read_horizon();
        let (mems, version) = self.shared.pin();
        self.get_pinned(key, seq, &mems, &version)
    }

    /// Diagnostic twin of [`DbReader::get`]: also returns a trace of every
    /// source consulted. Test-only; not part of the public contract.
    #[doc(hidden)]
    pub fn get_traced(&mut self, key: &[u8]) -> Result<(Option<Vec<u8>>, String)> {
        use std::fmt::Write as _;
        let seq = self.shared.read_horizon();
        let (mems, version) = self.shared.pin();
        let mut trace = format!("horizon={seq}\n");
        for mem in &mems {
            let got = mem.get(key, seq);
            let _ = writeln!(
                trace,
                "  mem id={} range={:?} len={} -> {:?}",
                mem.id,
                mem.range,
                mem.len(),
                got
            );
            match got {
                MemGet::Found(v) => return Ok((Some(v), trace)),
                MemGet::Deleted => return Ok((None, trace)),
                MemGet::NotFound => {}
            }
        }
        for t in version.level(0) {
            if t.smallest_user() <= key && key <= t.largest_user() {
                let got = table_get(&self.channel, t, key, seq, self.shared.cache.as_ref())?;
                let _ = writeln!(trace, "  L0 id={} -> {:?}", t.id, got);
                match got {
                    TableGet::Found(v) => return Ok((Some(v), trace)),
                    TableGet::Deleted => return Ok((None, trace)),
                    TableGet::NotFound => {}
                }
            }
        }
        for level in 1..version.level_count() {
            if let Some(t) = version.table_for_key(level, key) {
                let got = table_get(&self.channel, t, key, seq, self.shared.cache.as_ref())?;
                let _ = writeln!(trace, "  L{level} id={} -> {:?}", t.id, got);
                match got {
                    TableGet::Found(v) => return Ok((Some(v), trace)),
                    TableGet::Deleted => return Ok((None, trace)),
                    TableGet::NotFound => {}
                }
            }
        }
        Ok((None, trace))
    }

    /// Read at a pinned snapshot.
    pub fn get_at(&mut self, snap: &Snapshot, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let (mems, version) = snap.parts();
        self.get_pinned(key, snap.seq(), mems, version)
    }

    fn get_pinned(
        &mut self,
        key: &[u8],
        seq: SeqNo,
        mems: &[Arc<MemTable>],
        version: &crate::version::Version,
    ) -> Result<Option<Vec<u8>>> {
        DbStats::bump(&self.shared.stats.gets);
        let _sp = dlsm_trace::span(dlsm_trace::Category::Db, "get");
        let t0 = Instant::now();
        let outcome = self.get_phases(key, seq, mems, version, t0);
        if let Ok(found) = &outcome {
            let class = if found.is_some() {
                DbStats::bump(&self.shared.stats.get_hits);
                dlsm_telemetry::OpClass::GetHit
            } else {
                dlsm_telemetry::OpClass::GetMiss
            };
            self.shared.telemetry.record_op(class, t0.elapsed());
        }
        outcome
    }

    /// The probe sequence of a point get, with per-phase breakdown spans
    /// (MemTables / L0 / deeper levels) recorded into the telemetry.
    fn get_phases(
        &mut self,
        key: &[u8],
        seq: SeqNo,
        mems: &[Arc<MemTable>],
        version: &crate::version::Version,
        t0: Instant,
    ) -> Result<Option<Vec<u8>>> {
        let tel = Arc::clone(&self.shared.telemetry);
        // MemTables, newest first. The first table holding any visible
        // version wins — correct because table seq ranges are disjoint and
        // ordered (Sec. IV).
        let sp_mem = dlsm_trace::span(dlsm_trace::Category::Db, "get_memtable");
        for mem in mems {
            match mem.get(key, seq) {
                MemGet::Found(v) => {
                    tel.get_memtable.record_elapsed(t0.elapsed());
                    return Ok(Some(v));
                }
                MemGet::Deleted => {
                    tel.get_memtable.record_elapsed(t0.elapsed());
                    crate::telemetry::DbTelemetry::bump(&tel.get_tombstones);
                    return Ok(None);
                }
                MemGet::NotFound => {}
            }
        }
        tel.get_memtable.record_elapsed(t0.elapsed());
        drop(sp_mem);
        // L0: overlapping tables, newest first.
        let sp_l0 = dlsm_trace::span(dlsm_trace::Category::Db, "get_l0");
        let t_l0 = Instant::now();
        for t in version.level(0) {
            if t.smallest_user() <= key && key <= t.largest_user() {
                let probe = self.probe_table(t, key, seq)?;
                match probe {
                    TableGet::Found(v) => {
                        tel.get_l0.record_elapsed(t_l0.elapsed());
                        return Ok(Some(v));
                    }
                    TableGet::Deleted => {
                        tel.get_l0.record_elapsed(t_l0.elapsed());
                        crate::telemetry::DbTelemetry::bump(&tel.get_tombstones);
                        return Ok(None);
                    }
                    TableGet::NotFound => {}
                }
            }
        }
        tel.get_l0.record_elapsed(t_l0.elapsed());
        drop(sp_l0);
        // Deeper levels: at most one candidate table per level.
        let _sp_deep = dlsm_trace::span(dlsm_trace::Category::Db, "get_deep");
        let t_deep = Instant::now();
        for level in 1..version.level_count() {
            if let Some(t) = version.table_for_key(level, key) {
                let probe = self.probe_table(t, key, seq)?;
                match probe {
                    TableGet::Found(v) => {
                        tel.get_deep.record_elapsed(t_deep.elapsed());
                        return Ok(Some(v));
                    }
                    TableGet::Deleted => {
                        tel.get_deep.record_elapsed(t_deep.elapsed());
                        crate::telemetry::DbTelemetry::bump(&tel.get_tombstones);
                        return Ok(None);
                    }
                    TableGet::NotFound => {}
                }
            }
        }
        tel.get_deep.record_elapsed(t_deep.elapsed());
        Ok(None)
    }

    /// One table probe, accounting bloom/index skips (byte-addressable
    /// `NotFound` never fetches a record — Sec. VI) and hot-L0 cache hits.
    fn probe_table(
        &mut self,
        t: &Arc<TableHandle>,
        key: &[u8],
        seq: SeqNo,
    ) -> Result<TableGet> {
        let _sp = dlsm_trace::span_arg(dlsm_trace::Category::Db, "probe_table", t.id);
        let cache = self.shared.cache.as_ref();
        let local = cache.is_some_and(|c| c.extent_peek(t.id).is_some());
        let got = table_get(&self.channel, t, key, seq, cache)?;
        match &got {
            TableGet::NotFound => {
                if matches!(t.meta, MetaKind::ByteAddr(_)) {
                    crate::telemetry::DbTelemetry::bump(&self.shared.telemetry.bloom_skips);
                }
            }
            TableGet::Found(_) | TableGet::Deleted => {
                if local {
                    crate::telemetry::DbTelemetry::bump(&self.shared.telemetry.l0_cache_hits);
                }
            }
        }
        Ok(got)
    }

    /// Batched point lookups: all byte-addressable record fetches of one
    /// probe wave are posted as asynchronous RDMA reads on the reader's
    /// queue pair and polled together, amortizing per-operation latency —
    /// the read-side counterpart of the asynchronous flush pipeline
    /// (Sec. X-C). Results are positionally aligned with `keys`.
    pub fn multi_get(&mut self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>> {
        use dlsm_sstable::byte_addr::Locate;

        let seq = self.shared.read_horizon();
        let (mems, version) = self.shared.pin();
        let mut out: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        let mut resolved = vec![false; keys.len()];
        DbStats::add(&self.shared.stats.gets, keys.len() as u64);

        // Phase 1: MemTables (local memory, no batching needed).
        for (i, key) in keys.iter().enumerate() {
            for mem in &mems {
                match mem.get(key, seq) {
                    MemGet::Found(v) => {
                        DbStats::bump(&self.shared.stats.get_hits);
                        out[i] = Some(v);
                        resolved[i] = true;
                        break;
                    }
                    MemGet::Deleted => {
                        resolved[i] = true;
                        break;
                    }
                    MemGet::NotFound => {}
                }
            }
        }

        // Phase 2: walk each key's source list (L0 tables newest-first, then
        // one candidate per deeper level); each wave posts every pending
        // byte-addressable record read at once.
        let sources_for = |key: &[u8]| -> Vec<Arc<TableHandle>> {
            let mut v: Vec<Arc<TableHandle>> = Vec::new();
            for t in version.level(0) {
                if t.smallest_user() <= key && key <= t.largest_user() {
                    v.push(Arc::clone(t));
                }
            }
            for level in 1..version.level_count() {
                if let Some(t) = version.table_for_key(level, key) {
                    v.push(Arc::clone(t));
                }
            }
            v
        };
        let sources: Vec<Vec<Arc<TableHandle>>> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| if resolved[i] { Vec::new() } else { sources_for(k) })
            .collect();
        let mut cursor = vec![0usize; keys.len()];

        struct Fetch {
            key_idx: usize,
            buf: Vec<u8>,
            expected_index: usize,
            /// Record offset within the table (cache key on admission).
            offset: u64,
            table: Arc<TableHandle>,
            /// Resolved from the cache — no fabric read to post, and the
            /// record must not be re-admitted.
            local: bool,
        }

        loop {
            let mut wave: Vec<Fetch> = Vec::new();
            for i in 0..keys.len() {
                if resolved[i] {
                    continue;
                }
                // Advance through sources answerable from local metadata
                // until this key needs a network fetch (or is resolved).
                while cursor[i] < sources[i].len() {
                    let table = &sources[i][cursor[i]];
                    match &table.meta {
                        MetaKind::ByteAddr(meta) => match meta.locate(keys[i], seq) {
                            Locate::NotFound => cursor[i] += 1,
                            Locate::Deleted => {
                                resolved[i] = true;
                                break;
                            }
                            Locate::Record { index, offset, len } => {
                                // Cache-first: a hot-extent image or a
                                // cached record resolves locally; a table
                                // hot enough to promote is fetched whole so
                                // the rest of the batch (and every later
                                // read) is local too.
                                let slice_of = |image: &Arc<Vec<u8>>| {
                                    image[offset as usize..offset as usize + len].to_vec()
                                };
                                let mut local_buf: Option<Vec<u8>> = None;
                                if let Some(c) = &self.shared.cache {
                                    if let Some(image) = c.extent_get(table.id) {
                                        c.note_saved(len as u64);
                                        local_buf = Some(slice_of(&image));
                                    } else if let Some(rec) = c.block_get(table.id, offset) {
                                        if rec.len() == len {
                                            local_buf = Some(rec.as_ref().clone());
                                        }
                                    } else if c.note_extent_miss(table.id, table.extent.len) {
                                        if let Ok(img) = crate::remote::fetch_extent_image(
                                            &self.channel,
                                            table,
                                        ) {
                                            c.extent_admit(table.id, Arc::clone(&img));
                                            // The promotion read paid for
                                            // this record; no bytes saved.
                                            local_buf = Some(slice_of(&img));
                                        }
                                    }
                                }
                                let local = local_buf.is_some();
                                wave.push(Fetch {
                                    key_idx: i,
                                    buf: local_buf.unwrap_or_else(|| vec![0u8; len]),
                                    expected_index: index,
                                    offset,
                                    table: Arc::clone(table),
                                    local,
                                });
                                break;
                            }
                        },
                        // Block tables cannot split decision from fetch;
                        // resolve synchronously.
                        MetaKind::Block(_, _) => {
                            match table_get(
                                &self.channel,
                                table,
                                keys[i],
                                seq,
                                self.shared.cache.as_ref(),
                            )? {
                                TableGet::Found(v) => {
                                    DbStats::bump(&self.shared.stats.get_hits);
                                    out[i] = Some(v);
                                    resolved[i] = true;
                                    break;
                                }
                                TableGet::Deleted => {
                                    resolved[i] = true;
                                    break;
                                }
                                TableGet::NotFound => cursor[i] += 1,
                            }
                        }
                    }
                }
                if cursor[i] >= sources[i].len() {
                    resolved[i] = true; // exhausted: stays None
                }
            }
            if wave.is_empty() {
                break;
            }
            // Post every fetch of this wave, then poll them all (skip the
            // ones already satisfied from the local cache).
            if let ReadChannel::OneSided(qp) = &self.channel {
                // Post in bounded batches so the send queue never overflows.
                const BATCH: usize = 128;
                let mut qp = qp.borrow_mut();
                let mut pending = 0usize;
                for (wi, f) in wave.iter_mut().enumerate() {
                    if f.local {
                        continue; // buf already filled from the cache
                    }
                    let (off, len) = match &f.table.meta {
                        MetaKind::ByteAddr(meta) => meta.index.record(f.expected_index),
                        // PANIC-SAFE: wave construction above only enqueues
                        // byte-addressable tables; block tables resolve inline.
                        MetaKind::Block(..) => unreachable!("block fetches resolve inline"),
                    };
                    debug_assert_eq!(len, f.buf.len());
                    let addr = f.table.home.addr(f.table.extent.offset + off);
                    qp.post_read(addr, &mut f.buf, wi as u64)?;
                    pending += 1;
                    if pending >= BATCH {
                        for _ in 0..pending {
                            qp.poll_one_blocking(Duration::from_secs(10))?;
                        }
                        pending = 0;
                    }
                }
                for _ in 0..pending {
                    qp.poll_one_blocking(Duration::from_secs(10))?;
                }
            } else {
                // Two-sided channel: no posting interface; fetch serially.
                for f in wave.iter_mut() {
                    if f.local {
                        continue;
                    }
                    let (off, len) = match &f.table.meta {
                        MetaKind::ByteAddr(meta) => meta.index.record(f.expected_index),
                        // PANIC-SAFE: same wave invariant as the one-sided arm.
                        MetaKind::Block(..) => unreachable!(),
                    };
                    debug_assert_eq!(len, f.buf.len());
                    let source = crate::remote::RemoteSource::for_table(&self.channel, &f.table);
                    source
                        .read(off, &mut f.buf)
                        .map_err(|e| DbError::Sst(e.to_string()))?;
                }
            }
            // Parse the fetched records.
            for f in wave {
                // PANIC-SAFE: waves hold byte-addr fetches only (see above).
                let MetaKind::ByteAddr(meta) = &f.table.meta else { unreachable!() };
                let expected_key = meta.index.key(f.expected_index);
                let buf = Arc::new(f.buf);
                match dlsm_sstable::byte_addr::parse_record_bytes(&buf) {
                    Ok((ikey, value)) if ikey == expected_key => {
                        DbStats::bump(&self.shared.stats.get_hits);
                        out[f.key_idx] = Some(value.to_vec());
                        resolved[f.key_idx] = true;
                        if !f.local {
                            if let Some(c) = &self.shared.cache {
                                c.block_admit(f.table.id, f.offset, &buf);
                            }
                        }
                    }
                    Ok(_) => {
                        return Err(DbError::Sst("record key does not match index".into()))
                    }
                    Err(e) => return Err(DbError::Sst(e.to_string())),
                }
            }
        }
        Ok(out)
    }

    /// Range scan from `start` (inclusive) at the current horizon, with
    /// chunked prefetching (Sec. VI).
    pub fn scan(&mut self, start: &[u8]) -> Result<DbScan> {
        let seq = self.shared.read_horizon();
        let (mems, version) = self.shared.pin();
        DbScan::build(
            &self.shared,
            &self.channel,
            mems,
            version,
            seq,
            start,
            self.shared.cfg.scan_prefetch,
        )
    }

    /// Bounded range scan: user keys in `[start, end)` at the current
    /// horizon.
    pub fn scan_range(&mut self, start: &[u8], end: &[u8]) -> Result<DbScan> {
        Ok(self.scan(start)?.until(end))
    }

    /// Range scan at a pinned snapshot.
    pub fn scan_at(&mut self, snap: &Snapshot, start: &[u8]) -> Result<DbScan> {
        let (mems, version) = snap.parts();
        DbScan::build(
            &self.shared,
            &self.channel,
            mems.to_vec(),
            Arc::clone(version),
            snap.seq(),
            start,
            self.shared.cfg.scan_prefetch,
        )
    }
}

fn flush_loop(shared: Arc<Shared>, rx: Receiver<Arc<MemTable>>) {
    // Profiler task root: samples of this thread — including idle recv
    // waits between flushes — attribute to the flush worker.
    let _task = dlsm_trace::profile_span("flush_worker");
    // Owned connection, built exactly once: no Option, no expect() in the
    // flush loop (dlsm_analyze PANICPATH hygiene).
    enum FlushConn {
        TwoSided(Box<RpcClient>),
        OneSided(QueuePair),
    }
    let two_sided = shared.cfg.data_path == DataPath::TwoSidedRpc;
    let mut conn = if two_sided {
        match RpcClient::new(
            shared.ctx.fabric(),
            shared.ctx.node(),
            shared.memnode.node_id(),
            shared.cfg.flush_buf_size + (64 << 10),
        ) {
            Ok(c) => FlushConn::TwoSided(Box::new(
                c.with_policy(shared.cfg.rpc_retry)
                    .with_net_stats(Arc::clone(&shared.telemetry.net)),
            )),
            Err(_) => return,
        }
    } else {
        match shared.ctx.fabric().create_qp(shared.ctx.node().id(), shared.memnode.node_id()) {
            Ok(qp) => FlushConn::OneSided(qp),
            Err(_) => return,
        }
    };
    loop {
        let mem = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(m) => m,
            Err(_) => {
                if shared.stopping.load(Ordering::Acquire) && rx.is_empty() {
                    return;
                }
                continue;
            }
        };
        // Mirror this table into the extent cache if an image of its size
        // would fit a shard (the cache's own policy evicts colder images).
        let want_local = shared
            .cache
            .as_ref()
            .is_some_and(|c| c.wants_flush_image(mem.memory_usage() as u64));
        // Retry on remote-memory pressure or transient RPC trouble: GC or
        // compaction may free space, and a starved dispatcher recovers.
        let mut attempts = 0u32;
        let _sp = dlsm_trace::span_arg(dlsm_trace::Category::Flush, "flush", mem.id);
        dlsm_timeline::post(dlsm_timeline::EngineEvent::FlushStart { mem_id: mem.id });
        let out = loop {
            attempts += 1;
            let t_flush = Instant::now();
            let mut transport = match &mut conn {
                FlushConn::TwoSided(rpc) => FlushTransport::TwoSided(rpc),
                FlushConn::OneSided(qp) => FlushTransport::OneSided(qp),
            };
            match flush_memtable(
                &mem,
                &shared.memnode,
                &mut transport,
                shared.cfg.format,
                shared.cfg.bits_per_key,
                shared.cfg.flush_buf_size,
                shared.cfg.flush_buf_count,
                want_local,
                shared.cfg.flush_poll_timeout,
            ) {
                Ok(out) => {
                    shared.telemetry.record_op(dlsm_telemetry::OpClass::Flush, t_flush.elapsed());
                    break Some(out);
                }
                Err(DbError::OutOfRemoteMemory { .. }) => {
                    if shared.stopping.load(Ordering::Acquire) {
                        break None;
                    }
                    shared.notify_work(); // nudge compaction/GC
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    if shared.stopping.load(Ordering::Acquire) {
                        break None;
                    }
                    if attempts.is_multiple_of(8) || attempts <= 2 {
                        eprintln!(
                            "dlsm: flush of memtable {} failed (attempt {attempts}): {e}; retrying",
                            mem.id
                        );
                    }
                    // Losing a MemTable is never acceptable while running;
                    // transient fabric/RPC trouble clears, so keep trying
                    // with backoff.
                    std::thread::sleep(Duration::from_millis((10 * attempts as u64).min(500)));
                }
            }
        };
        if let Some(out) = &out {
            DbStats::add(&shared.stats.flush_bytes, out.extent.len);
            DbStats::add(&shared.stats.flush_tombstones, mem.tombstones());
        }
        dlsm_timeline::post(dlsm_timeline::EngineEvent::FlushEnd {
            mem_id: mem.id,
            bytes: out.as_ref().map(|o| o.extent.len).unwrap_or(0),
        });
        // Serialization ran in parallel; installation happens strictly in
        // MemTable retirement order (see `install_in_order`).
        let order = mem.flush_order.load(Ordering::Acquire);
        shared.install_in_order(order, || {
            if let Some(mut out) = out {
                let handle = TableHandle::new(
                    mem.id,
                    shared.memnode.remote(),
                    out.extent,
                    Origin::Compute,
                    out.meta,
                    std::mem::take(&mut out.smallest),
                    std::mem::take(&mut out.largest),
                    out.num_entries,
                    Some(Arc::clone(&shared.gc)),
                );
                if let (Some(c), Some(image)) = (&shared.cache, out.local_image.take()) {
                    // Flush-time admission: the freshest L0 table is by
                    // definition hot (every read consults it first).
                    c.extent_admit(handle.id, Arc::new(image));
                }
                let mut edit = VersionEdit::default();
                edit.add(0, handle);
                let v = shared.versions.install(&edit);
                shared.l0_count.store(v.level(0).len(), Ordering::Release);
                DbStats::bump(&shared.stats.flushes);
            }
            // Install first, then retire the MemTable (readers pin mems
            // before the version, so the data is never invisible).
            let mut imms = shared.immutables.lock();
            imms.retain(|m| m.id != mem.id);
            shared.imm_count.store(imms.len(), Ordering::Release);
        });
        shared.flush_queue_len.fetch_sub(1, Ordering::AcqRel);
        shared.notify_stall();
        shared.notify_work();
    }
}

fn compaction_loop(shared: Arc<Shared>) {
    // Profiler task root (see flush_loop).
    let _task = dlsm_trace::profile_span("compaction_worker");
    let mut compact_pointer: Vec<Vec<u8>> = Vec::new();
    let mut gc_client: Option<RpcClient> = None;
    let mut consecutive_failures = 0u32;
    // Reusable per-subtask RPC clients (registered buffers live as long as
    // the coordinator; Sec. X-B).
    let mut rpc_pool: Vec<RpcClient> = Vec::new();
    loop {
        // Batched remote GC (Sec. V-B): everything that accumulated since
        // the last cycle ships as one FreeBatch RPC. Draining every cycle
        // (rather than above a count threshold) keeps the compaction zone
        // from filling with dead tables while compactions are in flight.
        if let Some(batch) = shared.gc.take_remote_batch(1) {
            if gc_client.is_none() {
                gc_client = RpcClient::new(
                    shared.ctx.fabric(),
                    shared.ctx.node(),
                    shared.memnode.node_id(),
                    256 << 10,
                )
                .map(|c| {
                    c.with_policy(shared.cfg.rpc_retry)
                        .with_net_stats(Arc::clone(&shared.telemetry.net))
                })
                .ok();
            }
            if let Some(c) = gc_client.as_mut() {
                if c.free_batch(&batch, Duration::from_secs(10)).is_ok() {
                    DbStats::bump(&shared.stats.gc_batches);
                    DbStats::add(&shared.stats.gc_extents, batch.len() as u64);
                }
            }
        }

        if shared.stopping.load(Ordering::Acquire) {
            return;
        }

        let version = shared.versions.current();
        let job = pick_compaction(&version, &shared.cfg, &mut compact_pointer);
        let Some(job) = job else {
            shared.compaction_idle.store(true, Ordering::Release);
            let mut g = shared.work_lock.lock();
            shared.work_cv.wait_for(&mut g, Duration::from_millis(10));
            continue;
        };
        shared.compaction_idle.store(false, Ordering::Release);

        let smallest_snapshot = shared.smallest_snapshot();
        // ORDERING: relaxed — id generation; uniqueness only.
        let next_id = || shared.next_id.fetch_add(1, Ordering::Relaxed);
        let t_compact = Instant::now();
        let _sp =
            dlsm_trace::span_arg(dlsm_trace::Category::Compact, "compaction", job.level as u64);
        dlsm_timeline::post(dlsm_timeline::EngineEvent::CompactionStart {
            level: job.level as u64,
        });
        let result = if shared.cfg.near_data_compaction {
            run_near_data(
                &job,
                &shared.ctx,
                &shared.memnode,
                &shared.cfg,
                smallest_snapshot,
                &shared.gc,
                &next_id,
                &mut rpc_pool,
                &shared.telemetry.net,
            )
        } else {
            run_local(
                &job,
                &shared.ctx,
                &shared.memnode,
                &shared.cfg,
                smallest_snapshot,
                &shared.gc,
                &next_id,
                &shared.telemetry.net,
            )
        };
        match result {
            Ok(outcome) => {
                shared.telemetry.record_op(dlsm_telemetry::OpClass::CompactRpc, t_compact.elapsed());
                consecutive_failures = 0;
                let mut edit = VersionEdit::default();
                edit.delete(job.level, job.inputs_lo.iter().map(|t| t.id).collect());
                edit.delete(job.level + 1, job.inputs_hi.iter().map(|t| t.id).collect());
                let subtasks = shared.cfg.compaction_subtasks.max(1) as u64;
                for t in &outcome.outputs {
                    edit.add(job.level + 1, Arc::clone(t));
                }
                let v = shared.versions.install(&edit);
                if let Some(c) = &shared.cache {
                    // Version-aware invalidation: the inputs this edit
                    // obsoleted are purged and their ids fenced *at install*
                    // — before GC can recycle the extents — so no cached
                    // block can outlive (or be refilled for) a dead table.
                    // Pinned snapshots still read those tables correctly:
                    // they fall back to the fabric, and the ids are never
                    // reused.
                    for t in job.inputs_lo.iter().chain(job.inputs_hi.iter()) {
                        c.invalidate_table(t.id);
                        dlsm_timeline::post(dlsm_timeline::EngineEvent::CacheInvalidate {
                            table_id: t.id,
                        });
                    }
                }
                shared.l0_count.store(v.level(0).len(), Ordering::Release);
                DbStats::bump(&shared.stats.compactions);
                DbStats::add(&shared.stats.compaction_subtasks, subtasks);
                DbStats::add(&shared.stats.compaction_records_in, outcome.records_in);
                DbStats::add(&shared.stats.compaction_records_out, outcome.records_out);
                DbStats::add(
                    &shared.stats.compaction_bytes_out,
                    outcome.outputs.iter().map(|t| t.extent.len).sum::<u64>(),
                );
                dlsm_timeline::post(dlsm_timeline::EngineEvent::CompactionEnd {
                    level: job.level as u64,
                    bytes: outcome.outputs.iter().map(|t| t.extent.len).sum::<u64>(),
                });
                shared.notify_stall();
            }
            Err(e) => {
                // Close the interval even on failure so episode overlap
                // counting doesn't see a compaction running forever.
                dlsm_timeline::post(dlsm_timeline::EngineEvent::CompactionEnd {
                    level: job.level as u64,
                    bytes: 0,
                });
                consecutive_failures += 1;
                if consecutive_failures <= 3 || consecutive_failures.is_power_of_two() {
                    let alloc = shared.memnode.flush_alloc();
                    eprintln!(
                        "dlsm: compaction at L{} failed ({} in a row): {e} \
                         [flush zone {}/{} MiB in use, {} fragments; shape {:?}]",
                        job.level,
                        consecutive_failures,
                        alloc.in_use() >> 20,
                        alloc.capacity() >> 20,
                        alloc.fragments(),
                        shared.versions.current().shape(),
                    );
                }
                // Back off: out-of-memory only clears once GC frees space.
                let backoff = (20 * consecutive_failures as u64).min(1_000);
                std::thread::sleep(Duration::from_millis(backoff));
            }
        }
    }
}
