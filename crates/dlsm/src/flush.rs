//! Asynchronous MemTable flushing (paper Sec. X-C, Fig. 6).
//!
//! The flush thread serializes MemTable records *directly* into
//! RDMA-registered buffers (no block wrapping, no staging copy — the
//! byte-addressable write win of Sec. VI). When a buffer fills, an
//! asynchronous WRITE is posted and serialization continues into the next
//! buffer without waiting. In-flight buffers form a FIFO queue mirroring the
//! queue pair's send queue: every time a new request is posted, ready
//! completions are polled and the corresponding *head* buffers are recycled
//! (RDMA completes in order within a queue pair, so completion k always
//! refers to the k-th oldest buffer).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use dlsm_sstable::byte_addr::{ByteAddrBuilder, TableSink};
use dlsm_sstable::block::BlockTableBuilder;
use dlsm_memnode::TableFormat;
use dlsm_sstable::iter::ForwardIter;
use dlsm_sstable::SstError;
use rdma_sim::{QueuePair, RemoteAddr};

use dlsm_memnode::RpcClient;

use crate::context::MemNodeHandle;
use crate::handle::{Extent, MetaKind};
use crate::memtable::MemTable;
use crate::remote::ReadChannel;
use crate::{DbError, Result};

/// A [`TableSink`] that streams into remote memory through a FIFO ring of
/// pre-registered flush buffers.
pub struct FlushSink<'q> {
    qp: &'q mut QueuePair,
    base: RemoteAddr,
    cap: u64,
    remote_pos: u64,
    cur: Vec<u8>,
    buf_size: usize,
    /// Buffers whose WRITE is posted but not yet completed, oldest first.
    in_flight: VecDeque<Vec<u8>>,
    /// Recycled buffers ready for reuse.
    free: Vec<Vec<u8>>,
    max_in_flight: usize,
    next_wr: u64,
    /// How long to wait on one WRITE completion (backpressure and
    /// `finish`) before declaring the flush failed. Kept short under fault
    /// injection so a lost completion fails the flush — which frees the
    /// whole extent — instead of stalling the flush thread.
    poll_timeout: Duration,
}

impl<'q> FlushSink<'q> {
    /// Stream into `[base, base + cap)` using `buf_count` buffers of
    /// `buf_size` bytes, waiting at most `poll_timeout` per completion.
    pub fn new(
        qp: &'q mut QueuePair,
        base: RemoteAddr,
        cap: u64,
        buf_size: usize,
        buf_count: usize,
        poll_timeout: Duration,
    ) -> FlushSink<'q> {
        FlushSink {
            qp,
            base,
            cap,
            remote_pos: 0,
            cur: Vec::with_capacity(buf_size),
            buf_size,
            in_flight: VecDeque::new(),
            free: Vec::new(),
            max_in_flight: buf_count.max(2),
            next_wr: 1,
            poll_timeout,
        }
    }

    /// Bytes written (including the buffer still being filled).
    pub fn written(&self) -> u64 {
        self.remote_pos + self.cur.len() as u64
    }

    fn recycle_ready(&mut self) {
        // Completions are FIFO per queue pair: each one retires the oldest
        // in-flight buffer.
        for _c in self.qp.poll(usize::MAX) {
            if let Some(buf) = self.in_flight.pop_front() {
                self.free.push(buf);
            }
        }
    }

    fn submit_current(&mut self) -> dlsm_sstable::Result<()> {
        if self.cur.is_empty() {
            return Ok(());
        }
        let dst = self.base.add(self.remote_pos);
        self.qp
            .post_write(&self.cur, dst, self.next_wr)
            .map_err(|e| SstError::Source(e.to_string()))?;
        self.next_wr += 1;
        self.remote_pos += self.cur.len() as u64;
        let filled = std::mem::take(&mut self.cur);
        self.in_flight.push_back(filled);
        // Reuse a finished buffer if one is ready; otherwise allocate a new
        // one — unless the ring is at capacity, in which case wait for the
        // head to finish (backpressure).
        self.recycle_ready();
        while self.in_flight.len() >= self.max_in_flight {
            match self.qp.poll_one_blocking(self.poll_timeout) {
                Ok(_) => {
                    if let Some(buf) = self.in_flight.pop_front() {
                        self.free.push(buf);
                    }
                }
                Err(e) => return Err(SstError::Source(e.to_string())),
            }
        }
        self.cur = self.free.pop().unwrap_or_else(|| Vec::with_capacity(self.buf_size));
        self.cur.clear();
        Ok(())
    }

    /// Flush the partial buffer and wait for every outstanding WRITE.
    pub fn finish(mut self) -> dlsm_sstable::Result<u64> {
        self.submit_current()?;
        while !self.in_flight.is_empty() {
            self.qp
                .poll_one_blocking(self.poll_timeout)
                .map_err(|e| SstError::Source(e.to_string()))?;
            self.in_flight.pop_front();
        }
        Ok(self.remote_pos)
    }
}

impl<'q> TableSink for FlushSink<'q> {
    fn append(&mut self, mut data: &[u8]) -> dlsm_sstable::Result<()> {
        if self.written() + data.len() as u64 > self.cap {
            return Err(SstError::SinkFull);
        }
        while !data.is_empty() {
            let room = self.buf_size - self.cur.len();
            let take = room.min(data.len());
            self.cur.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.cur.len() >= self.buf_size {
                self.submit_current()?;
            }
        }
        Ok(())
    }
}

/// A [`TableSink`] writing through the two-sided RPC file API: each chunk
/// is staged locally and shipped with a `write_file` RPC (request, server
/// memcpy, reply) — the Nova-LSM tmpfs write path.
pub struct TwoSidedSink<'c> {
    client: &'c mut RpcClient,
    base_off: u64,
    cap: u64,
    pos: u64,
    cur: Vec<u8>,
    buf_size: usize,
}

impl<'c> TwoSidedSink<'c> {
    /// Stream into `[base_off, base_off + cap)` of the memory node's region.
    pub fn new(client: &'c mut RpcClient, base_off: u64, cap: u64, buf_size: usize) -> TwoSidedSink<'c> {
        TwoSidedSink { client, base_off, cap, pos: 0, cur: Vec::with_capacity(buf_size), buf_size }
    }

    /// Bytes written (including the staged partial chunk).
    pub fn written(&self) -> u64 {
        self.pos + self.cur.len() as u64
    }

    fn submit(&mut self) -> dlsm_sstable::Result<()> {
        if self.cur.is_empty() {
            return Ok(());
        }
        self.client
            .write_file(self.base_off + self.pos, &self.cur, Duration::from_secs(60))
            .map_err(|e| SstError::Source(e.to_string()))?;
        self.pos += self.cur.len() as u64;
        self.cur.clear();
        Ok(())
    }

    /// Ship the final partial chunk.
    pub fn finish(mut self) -> dlsm_sstable::Result<u64> {
        self.submit()?;
        Ok(self.pos)
    }
}

impl<'c> TableSink for TwoSidedSink<'c> {
    fn append(&mut self, mut data: &[u8]) -> dlsm_sstable::Result<()> {
        if self.written() + data.len() as u64 > self.cap {
            return Err(SstError::SinkFull);
        }
        while !data.is_empty() {
            let room = self.buf_size - self.cur.len();
            let take = room.min(data.len());
            self.cur.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.cur.len() >= self.buf_size {
                self.submit()?;
            }
        }
        Ok(())
    }
}

/// A sink that also mirrors everything into a local buffer — used to keep a
/// compute-local copy of hot L0 tables (the Sec. VI note) while streaming
/// the canonical image to remote memory.
pub struct TeeSink<S: TableSink> {
    inner: S,
    copy: Vec<u8>,
}

impl<S: TableSink> TeeSink<S> {
    /// Mirror `inner` into a local buffer of `reserve` capacity.
    pub fn new(inner: S, reserve: usize) -> TeeSink<S> {
        TeeSink { inner, copy: Vec::with_capacity(reserve) }
    }

    /// Finish, returning the inner sink and the mirrored image.
    pub fn into_parts(self) -> (S, Vec<u8>) {
        (self.inner, self.copy)
    }
}

impl<S: TableSink> TableSink for TeeSink<S> {
    fn append(&mut self, data: &[u8]) -> dlsm_sstable::Result<()> {
        self.inner.append(data)?;
        self.copy.extend_from_slice(data);
        Ok(())
    }
}

/// Which transport a flush writes through.
pub enum FlushTransport<'a> {
    /// Asynchronous one-sided writes (dLSM, Sec. X-C).
    OneSided(&'a mut QueuePair),
    /// Synchronous two-sided `write_file` RPCs (Nova-LSM style).
    TwoSided(&'a mut RpcClient),
}

/// Result of flushing one MemTable: where it landed and its metadata.
pub struct FlushOutput {
    /// The new table's extent in the flush zone.
    pub extent: Extent,
    /// Compute-cached metadata.
    pub meta: MetaKind,
    /// Smallest internal key.
    pub smallest: Vec<u8>,
    /// Largest internal key.
    pub largest: Vec<u8>,
    /// Record count.
    pub num_entries: u64,
    /// Local mirror of the table image (present when requested via
    /// `keep_local_copy`), for the hot-L0 cache.
    pub local_image: Option<Vec<u8>>,
}

/// Serialize `mem` to remote memory.
///
/// Allocation comes from the compute-controlled flush zone (no RPC); the
/// extent is sized by the MemTable's arena usage (an upper bound on the
/// serialized size) and the unused tail is returned afterwards.
#[allow(clippy::too_many_arguments)]
pub fn flush_memtable(
    mem: &MemTable,
    memnode: &MemNodeHandle,
    transport: &mut FlushTransport<'_>,
    format: TableFormat,
    bits_per_key: usize,
    buf_size: usize,
    buf_count: usize,
    keep_local_copy: bool,
    poll_timeout: Duration,
) -> Result<FlushOutput> {
    debug_assert!(!mem.is_empty(), "flushing an empty MemTable");
    // The arena usage bounds the byte-addressable image (which drops the
    // skip-list node overhead), but the block format adds per-block headers,
    // a filter, an index entry per block and a footer — budget for the worst
    // case (one record per block) so a flush can never overflow its extent.
    let cap = (mem.memory_usage() as u64 + mem.len() as u64 * 72 + (64 << 10))
        .next_multiple_of(8);
    let alloc = memnode.flush_alloc();
    let offset = alloc.alloc(cap).ok_or(DbError::OutOfRemoteMemory { requested: cap })?;
    let base = memnode.remote().addr(offset);

    let mut it = mem.iter();
    it.seek_to_first()?;

    // Serialize records through the chosen transport/sink combination; all
    // four arms share the same builder loops via small helpers.
    let sp_write = dlsm_trace::span_arg(dlsm_trace::Category::Flush, "flush_rdma_write", cap);
    let result: Result<FlushOutput> = (|| {
        let reserve = if keep_local_copy { mem.memory_usage() } else { 0 };
        let (used, built, local_image) = match transport {
            FlushTransport::OneSided(qp) => {
                let sink = TeeSink::new(
                    FlushSink::new(qp, base, cap, buf_size, buf_count, poll_timeout),
                    reserve,
                );
                let (sink, built) = match format {
                    TableFormat::ByteAddr => build_byte_addr(&mut it, sink, bits_per_key)?,
                    TableFormat::Block(bs) => build_block(&mut it, sink, bs, bits_per_key)?,
                };
                let (inner, copy) = sink.into_parts();
                (inner.finish()?, built, keep_local_copy.then_some(copy))
            }
            FlushTransport::TwoSided(client) => {
                let sink = TeeSink::new(TwoSidedSink::new(client, offset, cap, buf_size), reserve);
                let (sink, built) = match format {
                    TableFormat::ByteAddr => build_byte_addr(&mut it, sink, bits_per_key)?,
                    TableFormat::Block(bs) => build_block(&mut it, sink, bs, bits_per_key)?,
                };
                let (inner, copy) = sink.into_parts();
                (inner.finish()?, built, keep_local_copy.then_some(copy))
            }
        };
        let extent = Extent { offset, len: used };
        match built {
            Built::ByteAddr(meta) => {
                let smallest = meta.smallest().expect("non-empty table").to_vec();
                let largest = meta.largest().expect("non-empty table").to_vec();
                let num_entries = meta.num_entries;
                Ok(FlushOutput {
                    extent,
                    meta: MetaKind::ByteAddr(Arc::new(meta)),
                    smallest,
                    largest,
                    num_entries,
                    local_image,
                })
            }
            Built::Block { smallest, largest, num_entries, block_size } => {
                // Open the freshly-written table to cache its index + filter.
                let channel = match transport {
                    FlushTransport::OneSided(qp) => ReadChannel::one_sided(
                        qp.fabric().create_qp(qp.local(), qp.remote())?,
                    ),
                    FlushTransport::TwoSided(client) => ReadChannel::two_sided(
                        client.reopen()?,
                    ),
                };
                let source = crate::remote::RemoteSource::new(channel, base, used);
                let reader = dlsm_sstable::block::BlockTableReader::open(source)?;
                Ok(FlushOutput {
                    extent,
                    meta: MetaKind::Block(reader.meta_cache(), block_size),
                    smallest,
                    largest,
                    num_entries,
                    local_image,
                })
            }
        }
    })();
    drop(sp_write);

    match result {
        Ok(out) => {
            // Return the unused tail of the extent.
            let used = out.extent.len.next_multiple_of(8);
            if used < cap {
                alloc.free(offset + used, cap - used);
            }
            Ok(out)
        }
        Err(e) => {
            alloc.free(offset, cap);
            Err(e)
        }
    }
}

enum Built {
    ByteAddr(dlsm_sstable::byte_addr::TableMeta),
    Block { smallest: Vec<u8>, largest: Vec<u8>, num_entries: u64, block_size: u32 },
}

fn build_byte_addr<S: TableSink>(
    it: &mut crate::memtable::MemTableIter,
    sink: S,
    bits_per_key: usize,
) -> Result<(S, Built)> {
    let mut builder = ByteAddrBuilder::new(sink, bits_per_key);
    while it.valid() {
        builder.add(it.key(), it.value())?;
        it.next()?;
    }
    let (sink, meta) = builder.finish();
    Ok((sink, Built::ByteAddr(meta)))
}

fn build_block<S: TableSink>(
    it: &mut crate::memtable::MemTableIter,
    sink: S,
    block_size: u32,
    bits_per_key: usize,
) -> Result<(S, Built)> {
    let mut builder = BlockTableBuilder::new(sink, block_size as usize, bits_per_key);
    let mut smallest = Vec::new();
    let mut largest = Vec::new();
    while it.valid() {
        if smallest.is_empty() {
            smallest = it.key().to_vec();
        }
        largest.clear();
        largest.extend_from_slice(it.key());
        builder.add(it.key(), it.value())?;
        it.next()?;
    }
    let num_entries = builder.num_entries();
    let (sink, _total) = builder.finish()?;
    Ok((sink, Built::Block { smallest, largest, num_entries, block_size }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::MemTable;
    use dlsm_memnode::{MemServer, MemServerConfig};
    use dlsm_sstable::byte_addr::{ByteAddrReader, TableGet};
    use dlsm_sstable::key::ValueType;
    use dlsm_sstable::source::RegionSource;
    use rdma_sim::{Fabric, NetworkProfile, Verb};

    fn setup() -> (std::sync::Arc<Fabric>, std::sync::Arc<rdma_sim::Node>, MemServer) {
        let fabric = Fabric::new(NetworkProfile::instant());
        let compute = fabric.add_node();
        let server = MemServer::start(
            &fabric,
            MemServerConfig { region_size: 16 << 20, flush_zone: 8 << 20, compaction_workers: 1, dispatchers: 1 },
        );
        (fabric, compute, server)
    }

    #[test]
    fn flush_roundtrips_through_remote_memory() {
        let (fabric, compute, server) = setup();
        let memnode = MemNodeHandle::from_server(&server);
        let mem = MemTable::new(1, 0..10_000, 1 << 20, 2 << 20);
        for i in 0..500u64 {
            let value = format!("value{i}-{}", "x".repeat(100));
            mem.add(i, ValueType::Value, format!("key{i:05}").as_bytes(), value.as_bytes())
                .unwrap();
        }
        let mut qp = fabric.create_qp(compute.id(), server.node_id()).unwrap();
        let out = flush_memtable(
            &mem,
            &memnode,
            &mut FlushTransport::OneSided(&mut qp),
            TableFormat::ByteAddr,
            10,
            4 << 10, // small buffers force many async writes
            4,
            false,
            Duration::from_secs(10),
        )
        .unwrap();
        assert_eq!(out.num_entries, 500);
        // Verify from the memory node's side.
        let MetaKind::ByteAddr(meta) = &out.meta else { panic!("byte-addr flush") };
        let reader = ByteAddrReader::new(
            std::sync::Arc::clone(meta),
            RegionSource::new(std::sync::Arc::clone(server.region()), out.extent.offset, out.extent.len),
        );
        let expect = format!("value123-{}", "x".repeat(100));
        assert_eq!(reader.get(b"key00123", 1000).unwrap(), TableGet::Found(expect.into_bytes()));
        // Many WRITE work requests were posted (async pipeline, not one blob).
        assert!(fabric.stats().ops(Verb::Write) > 4);
        server.shutdown();
    }

    #[test]
    fn flush_trims_unused_extent() {
        let (fabric, compute, server) = setup();
        let memnode = MemNodeHandle::from_server(&server);
        let mem = MemTable::new(1, 0..100, 1 << 20, 2 << 20);
        mem.add(1, ValueType::Value, b"only", b"entry").unwrap();
        let mut qp = fabric.create_qp(compute.id(), server.node_id()).unwrap();
        let out = flush_memtable(
            &mem,
            &memnode,
            &mut FlushTransport::OneSided(&mut qp),
            TableFormat::ByteAddr,
            10,
            8 << 10,
            4,
            false,
            Duration::from_secs(10),
        )
        .unwrap();
        // Only the rounded table length stays allocated.
        assert_eq!(memnode.flush_alloc().in_use(), out.extent.len.next_multiple_of(8));
        server.shutdown();
    }

    #[test]
    fn block_format_flush_caches_metadata() {
        let (fabric, compute, server) = setup();
        let memnode = MemNodeHandle::from_server(&server);
        let mem = MemTable::new(1, 0..10_000, 1 << 20, 2 << 20);
        for i in 0..300u64 {
            mem.add(i, ValueType::Value, format!("k{i:05}").as_bytes(), b"blockv").unwrap();
        }
        let mut qp = fabric.create_qp(compute.id(), server.node_id()).unwrap();
        let out = flush_memtable(
            &mem,
            &memnode,
            &mut FlushTransport::OneSided(&mut qp),
            TableFormat::Block(2048),
            10,
            8 << 10,
            4,
            false,
            Duration::from_secs(10),
        )
        .unwrap();
        let MetaKind::Block(cache, bs) = &out.meta else { panic!("block flush") };
        assert_eq!(*bs, 2048);
        assert_eq!(cache.num_entries(), 300);
        assert_eq!(dlsm_sstable::key::user_key(&out.smallest), b"k00000");
        assert_eq!(dlsm_sstable::key::user_key(&out.largest), b"k00299");
        server.shutdown();
    }

    #[test]
    fn sink_ring_recycles_buffers_fifo() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let compute = fabric.add_node();
        let memory = fabric.add_node();
        let region = memory.register_region(1 << 20);
        let mut qp = fabric.create_qp(compute.id(), memory.id()).unwrap();
        let mut sink = FlushSink::new(&mut qp, region.addr(0), 1 << 20, 64, 3, Duration::from_secs(10));
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        sink.append(&payload).unwrap();
        let written = sink.finish().unwrap();
        assert_eq!(written, 10_000);
        let mut back = vec![0u8; 10_000];
        region.local_read(0, &mut back).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn sink_full_when_extent_too_small() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let compute = fabric.add_node();
        let memory = fabric.add_node();
        let region = memory.register_region(1 << 20);
        let mut qp = fabric.create_qp(compute.id(), memory.id()).unwrap();
        let mut sink = FlushSink::new(&mut qp, region.addr(0), 100, 64, 2, Duration::from_secs(10));
        assert!(sink.append(&[1u8; 99]).is_ok());
        assert_eq!(sink.append(&[1u8; 2]), Err(SstError::SinkFull));
    }

    /// A flush that dies mid-stream (every WRITE completion dropped) must
    /// error out — and the error path must return the *entire* reserved
    /// extent, leaving no flush-ring slot or flush-zone bytes leaked.
    #[test]
    fn failed_flush_frees_whole_extent() {
        use rdma_sim::ChaosPlan;
        let (fabric, compute, server) = setup();
        let memnode = MemNodeHandle::from_server(&server);
        let mem = MemTable::new(1, 0..10_000, 1 << 20, 2 << 20);
        for i in 0..400u64 {
            let value = format!("value{i}-{}", "y".repeat(120));
            mem.add(i, ValueType::Value, format!("key{i:05}").as_bytes(), value.as_bytes())
                .unwrap();
        }
        let seed = 0xF1A5u64;
        fabric.set_fault_hook(Some(std::sync::Arc::new(
            ChaosPlan::new(seed).drop(Verb::Write, 1.0),
        )));
        let mut qp = fabric.create_qp(compute.id(), server.node_id()).unwrap();
        let err = flush_memtable(
            &mem,
            &memnode,
            &mut FlushTransport::OneSided(&mut qp),
            TableFormat::ByteAddr,
            10,
            4 << 10, // small buffers: the ring fills and hits backpressure
            2,
            false,
            Duration::from_millis(100),
        );
        fabric.set_fault_hook(None);
        let err = match err {
            Err(e) => e,
            Ok(_) => panic!("seed {seed:#x}: flush succeeded despite 100% write drop"),
        };
        assert!(matches!(err, DbError::Sst(_)), "seed {seed:#x}: unexpected error {err:?}");
        assert_eq!(
            memnode.flush_alloc().in_use(),
            0,
            "seed {seed:#x}: failed flush leaked flush-zone bytes"
        );
        server.shutdown();
    }
}
