//! Database counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic counters exported by one [`crate::Db`].
#[derive(Debug, Default)]
pub struct DbStats {
    /// Successful `put`s.
    pub puts: AtomicU64,
    /// Successful `delete`s.
    pub deletes: AtomicU64,
    /// `get` calls.
    pub gets: AtomicU64,
    /// `get` calls that found a live value.
    pub get_hits: AtomicU64,
    /// MemTable switches.
    pub switches: AtomicU64,
    /// Sequence numbers abandoned and re-fetched (stale or arena-full).
    pub reseqs: AtomicU64,
    /// Completed MemTable flushes.
    pub flushes: AtomicU64,
    /// Bytes written to remote memory by flushes.
    pub flush_bytes: AtomicU64,
    /// Tombstones carried into remote memory by flushes (delete churn that
    /// compaction must later reclaim).
    pub flush_tombstones: AtomicU64,
    /// Completed compactions.
    pub compactions: AtomicU64,
    /// Sub-compaction tasks issued.
    pub compaction_subtasks: AtomicU64,
    /// Records read by compactions.
    pub compaction_records_in: AtomicU64,
    /// Records written by compactions.
    pub compaction_records_out: AtomicU64,
    /// Bytes written to remote memory by compaction outputs.
    pub compaction_bytes_out: AtomicU64,
    /// Write-stall episodes.
    pub stall_events: AtomicU64,
    /// Total nanoseconds writers spent stalled.
    pub stall_nanos: AtomicU64,
    /// Batched remote-free RPCs issued.
    pub gc_batches: AtomicU64,
    /// Extents freed remotely.
    pub gc_extents: AtomicU64,
}

impl DbStats {
    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        // ORDERING: relaxed — monotonic stats counters; readers tolerate staleness and the RMW never loses an increment.
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        // ORDERING: relaxed — see bump_by above.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Read a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        // ORDERING: relaxed — stats read; tolerates staleness.
        counter.load(Ordering::Relaxed)
    }

    /// Total time writers spent stalled.
    pub fn stall_time(&self) -> Duration {
        // ORDERING: relaxed — stats read; tolerates staleness.
        Duration::from_nanos(self.stall_nanos.load(Ordering::Relaxed))
    }

    /// A plain point-in-time copy of every counter. Call sites should use
    /// this instead of reaching into the atomics one `Relaxed` load at a
    /// time — the snapshot is `Copy`, diffable, and printable.
    pub fn snapshot(&self) -> DbStatsSnapshot {
        DbStatsSnapshot {
            puts: Self::get(&self.puts),
            deletes: Self::get(&self.deletes),
            gets: Self::get(&self.gets),
            get_hits: Self::get(&self.get_hits),
            switches: Self::get(&self.switches),
            reseqs: Self::get(&self.reseqs),
            flushes: Self::get(&self.flushes),
            flush_bytes: Self::get(&self.flush_bytes),
            flush_tombstones: Self::get(&self.flush_tombstones),
            compactions: Self::get(&self.compactions),
            compaction_subtasks: Self::get(&self.compaction_subtasks),
            compaction_records_in: Self::get(&self.compaction_records_in),
            compaction_records_out: Self::get(&self.compaction_records_out),
            compaction_bytes_out: Self::get(&self.compaction_bytes_out),
            stall_events: Self::get(&self.stall_events),
            stall_nanos: Self::get(&self.stall_nanos),
            gc_batches: Self::get(&self.gc_batches),
            gc_extents: Self::get(&self.gc_extents),
        }
    }
}

/// A frozen copy of [`DbStats`] — plain integers, `Copy`, with delta and
/// merge for phase measurement and shard aggregation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DbStatsSnapshot {
    /// Successful `put`s.
    pub puts: u64,
    /// Successful `delete`s.
    pub deletes: u64,
    /// `get` calls.
    pub gets: u64,
    /// `get` calls that found a live value.
    pub get_hits: u64,
    /// MemTable switches.
    pub switches: u64,
    /// Sequence numbers abandoned and re-fetched.
    pub reseqs: u64,
    /// Completed MemTable flushes.
    pub flushes: u64,
    /// Bytes written to remote memory by flushes.
    pub flush_bytes: u64,
    /// Tombstones carried into remote memory by flushes.
    pub flush_tombstones: u64,
    /// Completed compactions.
    pub compactions: u64,
    /// Sub-compaction tasks issued.
    pub compaction_subtasks: u64,
    /// Records read by compactions.
    pub compaction_records_in: u64,
    /// Records written by compactions.
    pub compaction_records_out: u64,
    /// Bytes written to remote memory by compaction outputs.
    pub compaction_bytes_out: u64,
    /// Write-stall episodes.
    pub stall_events: u64,
    /// Total nanoseconds writers spent stalled.
    pub stall_nanos: u64,
    /// Batched remote-free RPCs issued.
    pub gc_batches: u64,
    /// Extents freed remotely.
    pub gc_extents: u64,
}

impl DbStatsSnapshot {
    /// Total time writers spent stalled.
    pub fn stall_time(&self) -> Duration {
        Duration::from_nanos(self.stall_nanos)
    }

    /// Field-wise `self - earlier` (saturating).
    #[must_use]
    pub fn delta(&self, earlier: &DbStatsSnapshot) -> DbStatsSnapshot {
        let mut out = *self;
        out.for_each_field(earlier, |a, b| *a = a.saturating_sub(b));
        out
    }

    /// Field-wise sum (shard aggregation).
    pub fn merge(&mut self, other: &DbStatsSnapshot) {
        self.for_each_field(other, |a, b| *a += b);
    }

    fn for_each_field(&mut self, other: &DbStatsSnapshot, f: impl Fn(&mut u64, u64)) {
        f(&mut self.puts, other.puts);
        f(&mut self.deletes, other.deletes);
        f(&mut self.gets, other.gets);
        f(&mut self.get_hits, other.get_hits);
        f(&mut self.switches, other.switches);
        f(&mut self.reseqs, other.reseqs);
        f(&mut self.flushes, other.flushes);
        f(&mut self.flush_bytes, other.flush_bytes);
        f(&mut self.flush_tombstones, other.flush_tombstones);
        f(&mut self.compactions, other.compactions);
        f(&mut self.compaction_subtasks, other.compaction_subtasks);
        f(&mut self.compaction_records_in, other.compaction_records_in);
        f(&mut self.compaction_records_out, other.compaction_records_out);
        f(&mut self.compaction_bytes_out, other.compaction_bytes_out);
        f(&mut self.stall_events, other.stall_events);
        f(&mut self.stall_nanos, other.stall_nanos);
        f(&mut self.gc_batches, other.gc_batches);
        f(&mut self.gc_extents, other.gc_extents);
    }

    /// The counters as `(name, value)` pairs, for telemetry export.
    pub fn named_counters(&self) -> [(&'static str, u64); 18] {
        [
            ("puts", self.puts),
            ("deletes", self.deletes),
            ("gets", self.gets),
            ("get_hits", self.get_hits),
            ("switches", self.switches),
            ("reseqs", self.reseqs),
            ("flushes", self.flushes),
            ("flush_bytes", self.flush_bytes),
            ("flush_tombstones", self.flush_tombstones),
            ("compactions", self.compactions),
            ("compaction_subtasks", self.compaction_subtasks),
            ("compaction_records_in", self.compaction_records_in),
            ("compaction_records_out", self.compaction_records_out),
            ("compaction_bytes_out", self.compaction_bytes_out),
            ("stall_events", self.stall_events),
            ("stall_nanos", self.stall_nanos),
            ("gc_batches", self.gc_batches),
            ("gc_extents", self.gc_extents),
        ]
    }
}

impl std::fmt::Display for DbStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "puts={} gets={} (hits={}) switches={} flushes={} ({} MiB) compactions={} (subtasks={}, {}→{} records) stalls={} ({:?}) gc_batches={}",
            self.puts,
            self.gets,
            self.get_hits,
            self.switches,
            self.flushes,
            self.flush_bytes >> 20,
            self.compactions,
            self.compaction_subtasks,
            self.compaction_records_in,
            self.compaction_records_out,
            self.stall_events,
            self.stall_time(),
            self.gc_batches,
        )
    }
}

impl std::fmt::Display for DbStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DbStats::default();
        DbStats::bump(&s.puts);
        DbStats::add(&s.flush_bytes, 1 << 21);
        assert_eq!(DbStats::get(&s.puts), 1);
        assert_eq!(DbStats::get(&s.flush_bytes), 1 << 21);
        let text = s.to_string();
        assert!(text.contains("puts=1"));
        assert!(text.contains("2 MiB"));
    }

    #[test]
    fn snapshot_copies_and_diffs() {
        let s = DbStats::default();
        DbStats::bump(&s.puts);
        DbStats::add(&s.flush_bytes, 100);
        let before = s.snapshot();
        assert_eq!(before.puts, 1);
        assert_eq!(before.flush_bytes, 100);
        assert_eq!(before.to_string(), s.to_string());
        DbStats::bump(&s.puts);
        DbStats::bump(&s.gets);
        let d = s.snapshot().delta(&before);
        assert_eq!(d.puts, 1);
        assert_eq!(d.gets, 1);
        assert_eq!(d.flush_bytes, 0);
    }

    #[test]
    fn snapshot_merges_across_shards() {
        let a = DbStats::default();
        let b = DbStats::default();
        DbStats::add(&a.puts, 3);
        DbStats::add(&b.puts, 4);
        DbStats::bump(&b.stall_events);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.puts, 7);
        assert_eq!(m.stall_events, 1);
        let named: std::collections::HashMap<_, _> = m.named_counters().into_iter().collect();
        assert_eq!(named["puts"], 7);
        assert_eq!(named.len(), 18);
    }
}
