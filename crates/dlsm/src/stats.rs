//! Database counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic counters exported by one [`crate::Db`].
#[derive(Debug, Default)]
pub struct DbStats {
    /// Successful `put`s.
    pub puts: AtomicU64,
    /// Successful `delete`s.
    pub deletes: AtomicU64,
    /// `get` calls.
    pub gets: AtomicU64,
    /// `get` calls that found a live value.
    pub get_hits: AtomicU64,
    /// MemTable switches.
    pub switches: AtomicU64,
    /// Sequence numbers abandoned and re-fetched (stale or arena-full).
    pub reseqs: AtomicU64,
    /// Completed MemTable flushes.
    pub flushes: AtomicU64,
    /// Bytes written to remote memory by flushes.
    pub flush_bytes: AtomicU64,
    /// Completed compactions.
    pub compactions: AtomicU64,
    /// Sub-compaction tasks issued.
    pub compaction_subtasks: AtomicU64,
    /// Records read by compactions.
    pub compaction_records_in: AtomicU64,
    /// Records written by compactions.
    pub compaction_records_out: AtomicU64,
    /// Write-stall episodes.
    pub stall_events: AtomicU64,
    /// Total nanoseconds writers spent stalled.
    pub stall_nanos: AtomicU64,
    /// Batched remote-free RPCs issued.
    pub gc_batches: AtomicU64,
    /// Extents freed remotely.
    pub gc_extents: AtomicU64,
}

impl DbStats {
    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Read a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Total time writers spent stalled.
    pub fn stall_time(&self) -> Duration {
        Duration::from_nanos(self.stall_nanos.load(Ordering::Relaxed))
    }
}

impl std::fmt::Display for DbStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "puts={} gets={} (hits={}) switches={} flushes={} ({} MiB) compactions={} (subtasks={}, {}→{} records) stalls={} ({:?}) gc_batches={}",
            Self::get(&self.puts),
            Self::get(&self.gets),
            Self::get(&self.get_hits),
            Self::get(&self.switches),
            Self::get(&self.flushes),
            Self::get(&self.flush_bytes) >> 20,
            Self::get(&self.compactions),
            Self::get(&self.compaction_subtasks),
            Self::get(&self.compaction_records_in),
            Self::get(&self.compaction_records_out),
            Self::get(&self.stall_events),
            self.stall_time(),
            Self::get(&self.gc_batches),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DbStats::default();
        DbStats::bump(&s.puts);
        DbStats::add(&s.flush_bytes, 1 << 21);
        assert_eq!(DbStats::get(&s.puts), 1);
        assert_eq!(DbStats::get(&s.flush_bytes), 1 << 21);
        let text = s.to_string();
        assert!(text.contains("puts=1"));
        assert!(text.contains("2 MiB"));
    }
}
