//! SSTable handles and owner-aware garbage collection (paper Sec. V-B).

use std::sync::Arc;

use dlsm_memnode::RegionAllocator;
use dlsm_sstable::block::BlockMetaCache;
use dlsm_sstable::byte_addr::TableMeta;
use parking_lot::Mutex;

use crate::context::RemoteRegion;

/// An extent of remote memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Offset within the memory node's region.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Who allocated (and therefore who frees) a table's remote memory.
///
/// The paper's rule: memory allocated for flushing is recycled by the
/// compute node's local allocator; memory allocated for near-data compaction
/// is recycled by the memory node, via a *batched* free RPC. The handle
/// records the origin so the garbage collector can route the free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Allocated by the compute node (flush zone).
    Compute,
    /// Allocated by the memory node (compaction zone).
    MemNode,
    /// Not owned by this database instance (e.g. a restored checkpoint);
    /// never freed.
    External,
}

/// Compute-node-cached metadata of a table, by format.
#[derive(Debug, Clone)]
pub enum MetaKind {
    /// Byte-addressable: per-record index + bloom (paper Sec. VI).
    ByteAddr(Arc<TableMeta>),
    /// Block format: parsed index block + bloom, with the block size used.
    Block(BlockMetaCache, u32),
}

/// One SSTable as the compute node sees it. Dropping the last `Arc` of a
/// handle enqueues its extent for garbage collection — snapshots pin tables
/// simply by holding the `Arc`s (Sec. V-B).
pub struct TableHandle {
    /// Unique table id.
    pub id: u64,
    /// Which memory node holds the table.
    pub home: RemoteRegion,
    /// The table's extent in that node's region.
    pub extent: Extent,
    /// Who frees the extent.
    pub origin: Origin,
    /// Cached metadata.
    pub meta: MetaKind,
    /// Smallest internal key.
    pub smallest: Vec<u8>,
    /// Largest internal key.
    pub largest: Vec<u8>,
    /// Number of records.
    pub num_entries: u64,
    gc: Option<Arc<GcSink>>,
}

impl TableHandle {
    /// Create a handle whose extent will be GC'd through `gc` on last drop.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u64,
        home: RemoteRegion,
        extent: Extent,
        origin: Origin,
        meta: MetaKind,
        smallest: Vec<u8>,
        largest: Vec<u8>,
        num_entries: u64,
        gc: Option<Arc<GcSink>>,
    ) -> Arc<TableHandle> {
        Arc::new(TableHandle {
            id,
            home,
            extent,
            origin,
            meta,
            smallest,
            largest,
            num_entries,
            gc,
        })
    }

    /// Smallest user key.
    pub fn smallest_user(&self) -> &[u8] {
        dlsm_sstable::key::user_key(&self.smallest)
    }

    /// Largest user key.
    pub fn largest_user(&self) -> &[u8] {
        dlsm_sstable::key::user_key(&self.largest)
    }

    /// Whether the table's user-key range intersects `[lo, hi]` (inclusive).
    pub fn overlaps_user_range(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.smallest_user() <= hi && lo <= self.largest_user()
    }
}

impl std::fmt::Debug for TableHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableHandle")
            .field("id", &self.id)
            .field("extent", &self.extent)
            .field("origin", &self.origin)
            .field("entries", &self.num_entries)
            .finish()
    }
}

impl Drop for TableHandle {
    fn drop(&mut self) {
        if let Some(gc) = &self.gc {
            gc.enqueue(self.origin, self.extent);
        }
    }
}

/// Routes frees to the right owner: compute-allocated extents go straight to
/// the local flush allocator; memnode-allocated extents queue up for the
/// next batched `FreeBatch` RPC (Sec. V-B).
pub struct GcSink {
    flush_alloc: Arc<RegionAllocator>,
    remote_pending: Mutex<Vec<(u64, u64)>>,
}

impl GcSink {
    /// Create a sink backed by the compute node's flush allocator.
    pub fn new(flush_alloc: Arc<RegionAllocator>) -> Arc<GcSink> {
        Arc::new(GcSink { flush_alloc, remote_pending: Mutex::new(Vec::new()) })
    }

    /// Record that `extent` is dead.
    pub fn enqueue(&self, origin: Origin, extent: Extent) {
        match origin {
            Origin::Compute => self.flush_alloc.free(extent.offset, extent.len),
            Origin::MemNode => self.remote_pending.lock().push((extent.offset, extent.len)),
            Origin::External => {}
        }
    }

    /// Take the pending remote frees if at least `min` have accumulated
    /// (pass 0 to drain unconditionally, e.g. at shutdown).
    pub fn take_remote_batch(&self, min: usize) -> Option<Vec<(u64, u64)>> {
        let mut pending = self.remote_pending.lock();
        if pending.is_empty() || pending.len() < min {
            return None;
        }
        Some(std::mem::take(&mut *pending))
    }

    /// Number of remote frees waiting to be batched.
    pub fn remote_pending_len(&self) -> usize {
        self.remote_pending.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsm_sstable::byte_addr::ByteAddrBuilder;
    use dlsm_sstable::key::{InternalKey, ValueType};
    use rdma_sim::{MrId, NodeId};

    fn region() -> RemoteRegion {
        RemoteRegion { node: NodeId(1), mr: MrId(0), rkey: 1, len: 1 << 20 }
    }

    fn meta_for(keys: &[&str]) -> (MetaKind, Vec<u8>, Vec<u8>) {
        let mut b = ByteAddrBuilder::new(Vec::new(), 10);
        for k in keys {
            b.add(InternalKey::new(k.as_bytes(), 5, ValueType::Value).as_bytes(), b"v").unwrap();
        }
        let (_, meta) = b.finish();
        let s = meta.smallest().unwrap().to_vec();
        let l = meta.largest().unwrap().to_vec();
        (MetaKind::ByteAddr(Arc::new(meta)), s, l)
    }

    #[test]
    fn drop_routes_compute_extent_to_flush_alloc() {
        let alloc = Arc::new(RegionAllocator::new(0, 1 << 16));
        let off = alloc.alloc(1024).unwrap();
        let gc = GcSink::new(Arc::clone(&alloc));
        let (meta, s, l) = meta_for(&["a"]);
        let h = TableHandle::new(
            1,
            region(),
            Extent { offset: off, len: 1024 },
            Origin::Compute,
            meta,
            s,
            l,
            1,
            Some(Arc::clone(&gc)),
        );
        assert_eq!(alloc.in_use(), 1024);
        drop(h);
        assert_eq!(alloc.in_use(), 0, "compute extent freed locally on drop");
        assert_eq!(gc.remote_pending_len(), 0);
    }

    #[test]
    fn drop_queues_memnode_extent_for_batch() {
        let alloc = Arc::new(RegionAllocator::new(0, 1 << 16));
        let gc = GcSink::new(alloc);
        let (meta, s, l) = meta_for(&["a"]);
        let h = TableHandle::new(
            2,
            region(),
            Extent { offset: 4096, len: 512 },
            Origin::MemNode,
            meta,
            s,
            l,
            1,
            Some(Arc::clone(&gc)),
        );
        drop(h);
        assert_eq!(gc.remote_pending_len(), 1);
        assert!(gc.take_remote_batch(2).is_none(), "below batch threshold");
        assert_eq!(gc.take_remote_batch(1).unwrap(), vec![(4096, 512)]);
        assert_eq!(gc.remote_pending_len(), 0);
    }

    #[test]
    fn snapshot_pinning_via_arc() {
        let alloc = Arc::new(RegionAllocator::new(0, 1 << 16));
        let off = alloc.alloc(256).unwrap();
        let gc = GcSink::new(Arc::clone(&alloc));
        let (meta, s, l) = meta_for(&["a"]);
        let h = TableHandle::new(
            3,
            region(),
            Extent { offset: off, len: 256 },
            Origin::Compute,
            meta,
            s,
            l,
            1,
            Some(gc),
        );
        let pinned = Arc::clone(&h);
        drop(h);
        assert_eq!(alloc.in_use(), 256, "pinned table must not be freed");
        drop(pinned);
        assert_eq!(alloc.in_use(), 0);
    }

    #[test]
    fn external_tables_are_never_freed() {
        let alloc = Arc::new(RegionAllocator::new(0, 1 << 16));
        let gc = GcSink::new(Arc::clone(&alloc));
        let (meta, s, l) = meta_for(&["a"]);
        let h = TableHandle::new(
            4,
            region(),
            Extent { offset: 0, len: 256 },
            Origin::External,
            meta,
            s,
            l,
            1,
            Some(Arc::clone(&gc)),
        );
        drop(h);
        assert_eq!(gc.remote_pending_len(), 0);
    }

    #[test]
    fn overlap_check() {
        let (meta, s, l) = meta_for(&["bbb", "ddd"]);
        let h = TableHandle::new(5, region(), Extent { offset: 0, len: 1 }, Origin::External, meta, s, l, 2, None);
        assert!(h.overlaps_user_range(b"aaa", b"bbb"));
        assert!(h.overlaps_user_range(b"ccc", b"ccc"));
        assert!(h.overlaps_user_range(b"ddd", b"zzz"));
        assert!(!h.overlaps_user_range(b"a", b"b"));
        assert!(!h.overlaps_user_range(b"e", b"z"));
    }
}
