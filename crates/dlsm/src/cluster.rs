//! Multi-compute / multi-memory deployment (paper Sec. IX, Fig. 5).
//!
//! A [`Cluster`] runs `c` compute nodes × `m` memory nodes on one fabric.
//! Each compute node hosts λ range shards; the `c·λ` shards are assigned to
//! memory nodes round-robin so each shard's data stays within a single
//! memory node (keeping near-data compaction local) while load spreads
//! across the pool. Compute nodes sharing a memory node get disjoint
//! windows of its flush zone, so flush allocation stays coordination-free.

use std::sync::Arc;

use dlsm_memnode::{MemServer, MemServerConfig};
use rdma_sim::Fabric;

use crate::config::DbConfig;
use crate::context::{ComputeContext, MemNodeHandle, RemoteRegion};
use crate::shard::ShardedDb;
use crate::Result;

/// Cluster topology and per-node parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Compute nodes.
    pub compute_nodes: usize,
    /// Memory nodes.
    pub memory_nodes: usize,
    /// Range shards per compute node (λ).
    pub lambda: usize,
    /// Memory-node parameters (region size, flush zone, worker cores).
    pub mem_cfg: MemServerConfig,
    /// Per-shard database parameters.
    pub db_cfg: DbConfig,
}

/// A running cluster: the memory-node servers plus one [`ShardedDb`] per
/// compute node.
pub struct Cluster {
    servers: Vec<MemServer>,
    computes: Vec<ClusterCompute>,
}

/// One compute node's sharded database.
pub struct ClusterCompute {
    /// The compute node's context.
    pub ctx: Arc<ComputeContext>,
    /// The λ-sharded database hosted on it.
    pub db: ShardedDb,
}

impl Cluster {
    /// Start `memory_nodes` servers and `compute_nodes` sharded databases on
    /// `fabric`, with round-robin shard placement.
    pub fn start(fabric: &Arc<Fabric>, cfg: ClusterConfig) -> Result<Cluster> {
        assert!(cfg.compute_nodes >= 1 && cfg.memory_nodes >= 1);
        let servers: Vec<MemServer> = (0..cfg.memory_nodes)
            .map(|_| MemServer::start(fabric, cfg.mem_cfg.clone()))
            .collect();

        // Round-robin placement of the c·λ shards over memory nodes
        // (Fig. 5): shard (c, s) -> memory node (c·λ + s) mod m.
        // First pass: count shards per memory node to size flush windows.
        let m = cfg.memory_nodes;
        let mut shards_per_node = vec![0usize; m];
        for c in 0..cfg.compute_nodes {
            for s in 0..cfg.lambda {
                shards_per_node[(c * cfg.lambda + s) % m] += 1;
            }
        }
        // Window cursors per memory node.
        let mut cursor = vec![0u64; m];

        let mut computes = Vec::with_capacity(cfg.compute_nodes);
        for c in 0..cfg.compute_nodes {
            let ctx = ComputeContext::new(fabric);
            let mut handles: Vec<Arc<MemNodeHandle>> = Vec::with_capacity(cfg.lambda);
            for s in 0..cfg.lambda {
                let node = (c * cfg.lambda + s) % m;
                let server = &servers[node];
                let window = server.flush_zone() / shards_per_node[node] as u64;
                let lo = cursor[node];
                let hi = (lo + window).min(server.flush_zone());
                cursor[node] = hi;
                handles.push(MemNodeHandle::with_window(
                    RemoteRegion::of(server.region()),
                    lo,
                    hi,
                ));
            }
            let db = ShardedDb::open_with_handles(Arc::clone(&ctx), handles, cfg.db_cfg.clone())?;
            computes.push(ClusterCompute { ctx, db });
        }
        Ok(Cluster { servers, computes })
    }

    /// The per-compute-node databases.
    pub fn computes(&self) -> &[ClusterCompute] {
        &self.computes
    }

    /// The memory-node servers.
    pub fn servers(&self) -> &[MemServer] {
        &self.servers
    }

    /// Wait until every shard on every compute node is quiescent.
    pub fn wait_until_quiescent(&self) {
        for c in &self.computes {
            c.db.wait_until_quiescent();
        }
    }

    /// Shut down all databases, then all servers.
    pub fn shutdown(self) {
        for c in &self.computes {
            c.db.shutdown();
        }
        for s in self.servers {
            s.shutdown();
        }
    }
}
