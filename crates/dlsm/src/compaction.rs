//! Compaction picking and execution (paper Sec. V).
//!
//! The compute node owns the *policy* — it keeps the LSM metadata, decides
//! which tables to compact and when — while the *mechanism* runs wherever
//! configured:
//!
//! * **Near-data** (`near_data_compaction = true`, dLSM's design): the
//!   compute node ships table extents + merge parameters over the
//!   customized RPC; the memory node merges against its own DRAM and
//!   replies with output metadata. Only metadata crosses the network.
//! * **Compute-side** (`false`, the baselines and the Fig. 12 comparison):
//!   inputs are pulled over the fabric, merged locally, and outputs are
//!   written back — data crosses the network twice.
//!
//! Large compactions split into up to `compaction_subtasks` disjoint
//! user-key ranges executed in parallel (the paper's sub-compaction,
//! Sec. V-A); boundaries come from the compute-node-resident index, so
//! splitting costs no remote I/O.

use std::sync::Arc;
use std::time::Duration;

use dlsm_memnode::{ClientNetStats, CompactArgs, InputTable, RpcClient, TableFormat};
use dlsm_sstable::byte_addr::{ByteAddrBuilder, TableMeta};
use dlsm_sstable::block::BlockTableBuilder;
use dlsm_sstable::coding::get_len_prefixed;
use dlsm_sstable::iter::{ClampIter, MergingIter};
use dlsm_sstable::key::{self, SeqNo};
use dlsm_sstable::merge::{CompactionIter, MergeConfig};
use dlsm_sstable::ForwardIter;

use crate::config::DbConfig;
use crate::context::{ComputeContext, MemNodeHandle};
use crate::handle::{Extent, GcSink, MetaKind, Origin, TableHandle};
use crate::version::Version;
use crate::{DbError, Result};

/// A picked compaction: inputs from `level`, overlapping inputs from
/// `level + 1`, outputs into `level + 1`.
pub struct CompactionJob {
    /// Input level (0 for L0 → L1).
    pub level: usize,
    /// Tables from `level` (L0: newest first — merge priority order).
    pub inputs_lo: Vec<Arc<TableHandle>>,
    /// Overlapping tables from `level + 1` (key order).
    pub inputs_hi: Vec<Arc<TableHandle>>,
    /// Whether tombstones may be dropped (nothing overlaps below the
    /// output level).
    pub drop_deletions: bool,
}

impl CompactionJob {
    /// The output level.
    pub fn output_level(&self) -> usize {
        self.level + 1
    }

    /// All inputs in merge-priority order.
    pub fn all_inputs(&self) -> impl Iterator<Item = &Arc<TableHandle>> {
        self.inputs_lo.iter().chain(self.inputs_hi.iter())
    }

    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.all_inputs().map(|t| t.extent.len).sum()
    }

    /// Union user-key range of the inputs.
    pub fn user_range(&self) -> (Vec<u8>, Vec<u8>) {
        let mut lo: Option<&[u8]> = None;
        let mut hi: Option<&[u8]> = None;
        for t in self.all_inputs() {
            let (s, l) = (t.smallest_user(), t.largest_user());
            if lo.is_none_or(|cur| s < cur) {
                lo = Some(s);
            }
            if hi.is_none_or(|cur| l > cur) {
                hi = Some(l);
            }
        }
        (lo.unwrap_or_default().to_vec(), hi.unwrap_or_default().to_vec())
    }
}

/// Maximum bytes allowed at `level` (≥ 1) before it wants compaction.
pub fn max_bytes_for_level(cfg: &DbConfig, level: usize) -> u64 {
    debug_assert!(level >= 1);
    let mut max = cfg.l1_max_bytes;
    for _ in 1..level {
        max = max.saturating_mul(cfg.level_multiplier);
    }
    max
}

/// Compaction pressure at `level`: ≥ 1.0 means the level is over its
/// trigger. L0 scores by file count, deeper levels by byte volume against
/// [`max_bytes_for_level`]. The last level never compacts further and
/// scores 0. This is the same figure [`pick_compaction`] ranks on; the
/// gauge sampler and stats report export it per level.
pub fn level_score(version: &Version, cfg: &DbConfig, level: usize) -> f64 {
    if level == 0 {
        version.level(0).len() as f64 / cfg.l0_compaction_trigger as f64
    } else if level + 1 < version.level_count() {
        version.level_bytes(level) as f64 / max_bytes_for_level(cfg, level) as f64
    } else {
        0.0
    }
}

/// Pick the most urgent compaction, if any level is over its trigger.
///
/// `compact_pointer` persists the round-robin cursor per level (LevelDB's
/// `compact_pointer_`), so repeated Ln compactions sweep the key space.
pub fn pick_compaction(
    version: &Version,
    cfg: &DbConfig,
    compact_pointer: &mut Vec<Vec<u8>>,
) -> Option<CompactionJob> {
    compact_pointer.resize(version.level_count(), Vec::new());
    // Score every level; L0 by file count, others by byte volume.
    let mut best: Option<(f64, usize)> = None;
    for level in 0..version.level_count() - 1 {
        let score = level_score(version, cfg, level);
        if score >= 1.0 && best.is_none_or(|(s, _)| score > s) {
            best = Some((score, level));
        }
    }
    let (_, level) = best?;

    let inputs_lo: Vec<Arc<TableHandle>> = if level == 0 {
        version.level(0).to_vec() // newest first already
    } else {
        // Round-robin: the first table past the cursor, wrapping.
        let tables = version.level(level);
        let start = tables
            .iter()
            .position(|t| t.smallest > compact_pointer[level])
            .unwrap_or(0);
        vec![Arc::clone(&tables[start])]
    };
    if inputs_lo.is_empty() {
        return None;
    }

    // Overlapping tables one level down.
    let (lo, hi) = {
        let job = CompactionJob { level, inputs_lo, inputs_hi: Vec::new(), drop_deletions: false };
        let range = job.user_range();
        (job.inputs_lo, range)
    };
    let (inputs_lo, (ulo, uhi)) = (lo, hi);
    let inputs_hi = version.overlapping(level + 1, &ulo, &uhi);

    if level >= 1 {
        if let Some(last) = inputs_lo.last() {
            compact_pointer[level] = last.smallest.clone();
        }
    }

    // Tombstones can drop if no deeper level holds any overlapping key.
    let mut drop_deletions = true;
    for deeper in (level + 2)..version.level_count() {
        if !version.overlapping(deeper, &ulo, &uhi).is_empty() {
            drop_deletions = false;
            break;
        }
    }

    Some(CompactionJob { level, inputs_lo, inputs_hi, drop_deletions })
}

/// Choose up to `k - 1` user-key boundaries splitting the job into `k`
/// disjoint sub-ranges, using the compute-node-resident index of the
/// largest input (no remote I/O).
pub fn pick_boundaries(job: &CompactionJob, k: usize) -> Vec<Vec<u8>> {
    if k <= 1 {
        return Vec::new();
    }
    let biggest = job
        .all_inputs()
        .max_by_key(|t| t.num_entries)
        .expect("job has inputs");
    let mut keys: Vec<Vec<u8>> = Vec::new();
    match &biggest.meta {
        MetaKind::ByteAddr(meta) => {
            let n = meta.index.len();
            if n >= 2 * k {
                for i in 1..k {
                    keys.push(key::user_key(meta.index.key(i * n / k)).to_vec());
                }
            }
        }
        MetaKind::Block(cache, _) => {
            // Sample the handle's own key range linearly (block caches do
            // not expose per-record keys; an even split of the byte range is
            // approximated by splitting the [smallest, largest] span of
            // sampled records — fall back to no split for tiny tables).
            let lo = biggest.smallest_user().to_vec();
            let hi = biggest.largest_user().to_vec();
            if cache.num_entries() >= (2 * k) as u64 && lo.len() == hi.len() && !lo.is_empty() {
                // Interpolate numerically over the first 8 differing bytes.
                keys = interpolate_keys(&lo, &hi, k);
            }
        }
    }
    keys.sort();
    keys.dedup();
    keys
}

/// Evenly interpolate `k - 1` keys between `lo` and `hi` (same length).
fn interpolate_keys(lo: &[u8], hi: &[u8], k: usize) -> Vec<Vec<u8>> {
    let width = lo.len().min(8);
    let mut lo8 = [0u8; 8];
    let mut hi8 = [0u8; 8];
    lo8[..width].copy_from_slice(&lo[..width]);
    hi8[..width].copy_from_slice(&hi[..width]);
    let (a, b) = (u64::from_be_bytes(lo8), u64::from_be_bytes(hi8));
    if b <= a {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 1..k {
        let x = a + (b - a) / k as u64 * i as u64;
        let mut keyb = lo.to_vec();
        keyb[..width].copy_from_slice(&x.to_be_bytes()[..width]);
        out.push(keyb);
    }
    out
}

/// Sub-range bounds from boundaries: `[(lo0, hi0), (lo1, hi1), ...]` with
/// empty vectors meaning open ends.
fn subranges(boundaries: &[Vec<u8>]) -> Vec<(Vec<u8>, Vec<u8>)> {
    if boundaries.is_empty() {
        return vec![(Vec::new(), Vec::new())];
    }
    let mut out = Vec::with_capacity(boundaries.len() + 1);
    let mut lo = Vec::new();
    for b in boundaries {
        out.push((lo.clone(), b.clone()));
        lo = b.clone();
    }
    out.push((lo, Vec::new()));
    out
}

/// Outcome of one executed compaction.
pub struct CompactionOutcome {
    /// New tables for the output level, in key order.
    pub outputs: Vec<Arc<TableHandle>>,
    /// Records read.
    pub records_in: u64,
    /// Records written.
    pub records_out: u64,
}

/// Execute `job` by near-data compaction: one RPC per sub-range, all in
/// flight concurrently, each executed by a memory-node worker core.
///
/// `clients` is a reusable pool of RPC clients (owned by the compaction
/// coordinator): creating a client registers multi-MB reply/argument
/// buffers with the NIC, which — per the paper's "register large regions
/// once" rule (Sec. X-B) — must not happen per compaction.
#[allow(clippy::too_many_arguments)]
pub fn run_near_data(
    job: &CompactionJob,
    ctx: &ComputeContext,
    memnode: &MemNodeHandle,
    cfg: &DbConfig,
    smallest_snapshot: SeqNo,
    gc: &Arc<GcSink>,
    next_id: &dyn Fn() -> u64,
    clients: &mut Vec<RpcClient>,
    net: &Arc<ClientNetStats>,
) -> Result<CompactionOutcome> {
    let inputs: Vec<InputTable> = job
        .all_inputs()
        .map(|t| InputTable { offset: t.extent.offset, len: t.extent.len })
        .collect();
    let boundaries = pick_boundaries(job, cfg.compaction_subtasks.max(1));
    let ranges = subranges(&boundaries);
    while clients.len() < ranges.len() {
        clients.push(
            RpcClient::new(ctx.fabric(), ctx.node(), memnode.node_id(), cfg.rpc_buf_size)?
                .with_policy(cfg.rpc_retry)
                .with_net_stats(Arc::clone(net)),
        );
    }

    // One RPC per sub-range, issued from scoped threads: each requester
    // sleeps until the memory node's WRITE-with-IMMEDIATE wakes it. The
    // coordinator's trace context is captured here so each subtask thread
    // (a fresh recorder with no span stack) records as its child.
    let trace_ctx = dlsm_trace::current_ctx();
    let replies: Vec<dlsm_memnode::CompactReply> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for ((lo, hi), client) in ranges.iter().zip(clients.iter_mut()) {
            let args = CompactArgs {
                format: cfg.format,
                smallest_snapshot,
                drop_deletions: job.drop_deletions,
                max_output_bytes: cfg.sstable_size,
                bits_per_key: cfg.bits_per_key as u32,
                range_lo: lo.clone(),
                range_hi: hi.clone(),
                inputs: inputs.clone(),
            };
            handles.push(scope.spawn(move || -> Result<dlsm_memnode::CompactReply> {
                let _sp = match trace_ctx {
                    Some(c) => dlsm_trace::span_child_of(
                        dlsm_trace::Category::Compact,
                        "compact_subtask",
                        c,
                    ),
                    None => dlsm_trace::span(dlsm_trace::Category::Compact, "compact_subtask"),
                };
                Ok(client.compact(&args, ctx.waiter(), Duration::from_secs(120))?)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("sub-compaction thread panicked"))
            .collect::<Result<Vec<_>>>()
    })?;

    let mut outcome = CompactionOutcome { outputs: Vec::new(), records_in: 0, records_out: 0 };
    for reply in replies {
        outcome.records_in += reply.records_in;
        outcome.records_out += reply.records_out;
        for out in reply.outputs {
            outcome.outputs.push(handle_from_output(ctx, memnode, cfg, gc, next_id(), out)?);
        }
    }
    // Sub-ranges were issued in key order and each reply's outputs are in
    // key order, so the concatenation is already sorted; assert in debug.
    debug_assert!(outcome
        .outputs
        .windows(2)
        .all(|w| w[0].largest_user() <= w[1].smallest_user()));
    Ok(outcome)
}

/// Build a compute-side handle from one near-data output table.
fn handle_from_output(
    ctx: &ComputeContext,
    memnode: &MemNodeHandle,
    cfg: &DbConfig,
    gc: &Arc<GcSink>,
    id: u64,
    out: dlsm_memnode::OutputTable,
) -> Result<Arc<TableHandle>> {
    let extent = Extent { offset: out.offset, len: out.len };
    match cfg.format {
        TableFormat::ByteAddr => {
            let (meta, _) = TableMeta::decode(&out.meta)?;
            let smallest = meta.smallest().expect("non-empty output").to_vec();
            let largest = meta.largest().expect("non-empty output").to_vec();
            let n = meta.num_entries;
            Ok(TableHandle::new(
                id,
                memnode.remote(),
                extent,
                Origin::MemNode,
                MetaKind::ByteAddr(Arc::new(meta)),
                smallest,
                largest,
                n,
                Some(Arc::clone(gc)),
            ))
        }
        TableFormat::Block(block_size) => {
            // Reply carries only the key bounds; fetch the table's index and
            // filter (3 remote reads) to populate the compute-side cache.
            let (smallest, n1) = get_len_prefixed(&out.meta, 0)
                .map_err(|e| DbError::Sst(e.to_string()))?;
            let (largest, _) = get_len_prefixed(&out.meta, n1)
                .map_err(|e| DbError::Sst(e.to_string()))?;
            let channel = crate::remote::ReadChannel::one_sided(
                ctx.fabric().create_qp(ctx.node().id(), memnode.node_id())?,
            );
            let source = crate::remote::RemoteSource::new(
                channel,
                memnode.remote().addr(out.offset),
                out.len,
            );
            let reader = dlsm_sstable::block::BlockTableReader::open(source)?;
            let n = reader.num_entries();
            Ok(TableHandle::new(
                id,
                memnode.remote(),
                extent,
                Origin::MemNode,
                MetaKind::Block(reader.meta_cache(), block_size),
                smallest.to_vec(),
                largest.to_vec(),
                n,
                Some(Arc::clone(gc)),
            ))
        }
    }
}

/// Execute `job` on the compute node: pull every input byte over the
/// network, merge locally, push every output byte back. This is what the
/// paper's baselines do, and what dLSM avoids.
#[allow(clippy::too_many_arguments)]
pub fn run_local(
    job: &CompactionJob,
    ctx: &ComputeContext,
    memnode: &MemNodeHandle,
    cfg: &DbConfig,
    smallest_snapshot: SeqNo,
    gc: &Arc<GcSink>,
    next_id: &dyn Fn() -> u64,
    net: &Arc<ClientNetStats>,
) -> Result<CompactionOutcome> {
    let boundaries = pick_boundaries(job, cfg.compaction_subtasks.max(1));
    let ranges = subranges(&boundaries);

    /// (image, meta, smallest, largest) of a staged byte-addressable output.
    type StagedByteAddr = (Vec<u8>, TableMeta, Vec<u8>, Vec<u8>);
    /// (image, smallest, largest, entries) of a staged block output.
    type StagedBlock = (Vec<u8>, Vec<u8>, Vec<u8>, u64);

    struct SubResult {
        staged: Vec<StagedByteAddr>,
        block_staged: Vec<StagedBlock>,
        records_in: u64,
        records_out: u64,
    }

    let subresults: Vec<SubResult> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for (lo, hi) in &ranges {
            let job = &*job;
            handles.push(scope.spawn(move || -> Result<SubResult> {
                let channel = read_channel_for(ctx, memnode, cfg, net)?;
                let iters: Vec<Box<dyn ForwardIter>> = job
                    .all_inputs()
                    // Compaction sweeps every input once; caching those
                    // reads would only churn the point-read working set.
                    .map(|t| crate::remote::table_iter(&channel, t, cfg.scan_prefetch, None))
                    .collect();
                let merged =
                    ClampIter::new(MergingIter::new(iters), lo.clone(), hi.clone());
                let mut it = CompactionIter::new(
                    merged,
                    MergeConfig { smallest_snapshot, drop_deletions: job.drop_deletions },
                );
                it.seek_to_first()?;
                let mut r = SubResult {
                    staged: Vec::new(),
                    block_staged: Vec::new(),
                    records_in: 0,
                    records_out: 0,
                };
                match cfg.format {
                    TableFormat::ByteAddr => {
                        while it.valid() {
                            let mut b = ByteAddrBuilder::new(Vec::new(), cfg.bits_per_key);
                            while it.valid() && b.data_len() < cfg.sstable_size {
                                b.add(it.key(), it.value())?;
                                r.records_out += 1;
                                it.next()?;
                            }
                            let (image, meta) = b.finish();
                            let s = meta.smallest().expect("non-empty").to_vec();
                            let l = meta.largest().expect("non-empty").to_vec();
                            r.staged.push((image, meta, s, l));
                        }
                    }
                    TableFormat::Block(bs) => {
                        while it.valid() {
                            let mut b =
                                BlockTableBuilder::new(Vec::new(), bs as usize, cfg.bits_per_key);
                            let mut s = Vec::new();
                            let mut l = Vec::new();
                            while it.valid() && b.data_len() < cfg.sstable_size {
                                if s.is_empty() {
                                    s = it.key().to_vec();
                                }
                                l.clear();
                                l.extend_from_slice(it.key());
                                b.add(it.key(), it.value())?;
                                r.records_out += 1;
                                it.next()?;
                            }
                            let n = b.num_entries();
                            let (image, _) = b.finish()?;
                            r.block_staged.push((image, s, l, n));
                        }
                    }
                }
                r.records_in = it.records_seen();
                Ok(r)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("local sub-compaction thread panicked"))
            .collect::<Result<Vec<_>>>()
    })?;

    // Write staged outputs back to the flush zone (compute-owned memory),
    // through the configured data path.
    let mut qp = match cfg.data_path {
        crate::config::DataPath::OneSided => {
            Some(ctx.fabric().create_qp(ctx.node().id(), memnode.node_id())?)
        }
        crate::config::DataPath::TwoSidedRpc => None,
    };
    let mut rpc = match cfg.data_path {
        crate::config::DataPath::OneSided => None,
        crate::config::DataPath::TwoSidedRpc => Some(
            RpcClient::new(ctx.fabric(), ctx.node(), memnode.node_id(), (1 << 20) + (64 << 10))?
                .with_policy(cfg.rpc_retry)
                .with_net_stats(Arc::clone(net)),
        ),
    };
    let mut outcome = CompactionOutcome { outputs: Vec::new(), records_in: 0, records_out: 0 };
    let alloc = memnode.flush_alloc();
    let mut write_back = |image: &[u8]| -> Result<Extent> {
        let len = image.len() as u64;
        let offset = alloc.alloc(len).ok_or(DbError::OutOfRemoteMemory { requested: len })?;
        // Large sequential writes in 1 MiB units.
        let mut pos = 0usize;
        while pos < image.len() {
            let chunk = (image.len() - pos).min(1 << 20);
            let slice = &image[pos..pos + chunk];
            let dst = offset + pos as u64;
            match (&mut qp, &mut rpc) {
                (Some(qp), _) => qp.write_sync(slice, memnode.remote().addr(dst))?,
                (None, Some(rpc)) => rpc
                    .write_file(dst, slice, std::time::Duration::from_secs(10))
                    .map_err(crate::DbError::from)?,
                (None, None) => unreachable!(),
            }
            pos += chunk;
        }
        Ok(Extent { offset, len })
    };
    for sr in subresults {
        outcome.records_in += sr.records_in;
        outcome.records_out += sr.records_out;
        for (image, meta, s, l) in sr.staged {
            let extent = write_back(&image)?;
            let n = meta.num_entries;
            outcome.outputs.push(TableHandle::new(
                next_id(),
                memnode.remote(),
                extent,
                Origin::Compute,
                MetaKind::ByteAddr(Arc::new(meta)),
                s,
                l,
                n,
                Some(Arc::clone(gc)),
            ));
        }
        for (image, s, l, n) in sr.block_staged {
            let extent = write_back(&image)?;
            let TableFormat::Block(bs) = cfg.format else { unreachable!() };
            let channel = read_channel_for(ctx, memnode, cfg, net)?;
            let source = crate::remote::RemoteSource::new(
                channel,
                memnode.remote().addr(extent.offset),
                extent.len,
            );
            let reader = dlsm_sstable::block::BlockTableReader::open(source)?;
            outcome.outputs.push(TableHandle::new(
                next_id(),
                memnode.remote(),
                extent,
                Origin::Compute,
                MetaKind::Block(reader.meta_cache(), bs),
                s,
                l,
                n,
                Some(Arc::clone(gc)),
            ));
        }
    }
    Ok(outcome)
}

/// Build a [`crate::remote::ReadChannel`] for compaction I/O per the
/// configured data path.
fn read_channel_for(
    ctx: &ComputeContext,
    memnode: &MemNodeHandle,
    cfg: &DbConfig,
    net: &Arc<ClientNetStats>,
) -> Result<crate::remote::ReadChannel> {
    match cfg.data_path {
        crate::config::DataPath::OneSided => Ok(crate::remote::ReadChannel::one_sided(
            ctx.fabric().create_qp(ctx.node().id(), memnode.node_id())?,
        )),
        crate::config::DataPath::TwoSidedRpc => {
            Ok(crate::remote::ReadChannel::two_sided(
                RpcClient::new(
                    ctx.fabric(),
                    ctx.node(),
                    memnode.node_id(),
                    cfg.scan_prefetch + (64 << 10),
                )?
                .with_policy(cfg.rpc_retry)
                .with_net_stats(Arc::clone(net)),
            ))
        }
    }
}
