//! Compute-node context and memory-node connection handles.

use std::sync::Arc;

use dlsm_memnode::{ImmWaiter, MemServer, RegionAllocator};
use rdma_sim::{Fabric, MemoryRegion, MrId, Node, NodeId, RemoteAddr};

/// Everything dLSM needs from "this compute node": its fabric endpoint and
/// the (single, node-wide) immediate-event notifier thread.
///
/// One `ComputeContext` is shared by every shard ([`crate::Db`]) running on
/// the node, exactly as the paper's RDMA manager is shared process-wide
/// (Sec. X-B).
pub struct ComputeContext {
    fabric: Arc<Fabric>,
    node: Arc<Node>,
    waiter: Arc<ImmWaiter>,
}

impl ComputeContext {
    /// Attach a new compute node to `fabric` and start its notifier.
    pub fn new(fabric: &Arc<Fabric>) -> Arc<ComputeContext> {
        let node = fabric.add_node();
        let waiter = Arc::new(ImmWaiter::start(Arc::clone(&node)));
        Arc::new(ComputeContext { fabric: Arc::clone(fabric), node, waiter })
    }

    /// The fabric this node is attached to.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// This compute node's fabric endpoint.
    pub fn node(&self) -> &Arc<Node> {
        &self.node
    }

    /// The node-wide immediate-event notifier (wakes sleeping compaction
    /// requesters).
    pub fn waiter(&self) -> &Arc<ImmWaiter> {
        &self.waiter
    }
}

/// Connection metadata for one remote region: what a compute node learns at
/// connection setup (node id, region id, rkey, length). This is all that is
/// needed to address remote memory; the bytes themselves stay remote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteRegion {
    /// Owning memory node.
    pub node: NodeId,
    /// Region id within the node.
    pub mr: MrId,
    /// Remote-access key.
    pub rkey: u32,
    /// Region length in bytes.
    pub len: u64,
}

impl RemoteRegion {
    /// Capture the registration info of `region`.
    pub fn of(region: &MemoryRegion) -> RemoteRegion {
        RemoteRegion {
            node: region.node(),
            mr: region.mr(),
            rkey: region.rkey(),
            len: region.len() as u64,
        }
    }

    /// A fabric address at `offset` within the region.
    pub fn addr(&self, offset: u64) -> RemoteAddr {
        RemoteAddr { node: self.node, mr: self.mr, offset, rkey: self.rkey }
    }
}

/// The compute node's view of one memory node: addressing info plus the
/// compute-side allocator over (a window of) the flush zone.
///
/// The flush zone is *controlled and allocated by the compute node* so a
/// MemTable flush needs no allocation round trip (paper Sec. V-A). With
/// several compute nodes sharing one memory node, each gets a disjoint
/// window of the flush zone.
pub struct MemNodeHandle {
    remote: RemoteRegion,
    flush_alloc: Arc<RegionAllocator>,
    flush_zone_end: u64,
}

impl MemNodeHandle {
    /// A handle covering the server's entire flush zone (single-compute-node
    /// deployments).
    pub fn from_server(server: &MemServer) -> Arc<MemNodeHandle> {
        Self::with_window(RemoteRegion::of(server.region()), 0, server.flush_zone())
    }

    /// A handle whose flush allocations come from `[window_lo, window_hi)`
    /// of the flush zone (multi-compute-node deployments partition the zone).
    pub fn with_window(remote: RemoteRegion, window_lo: u64, window_hi: u64) -> Arc<MemNodeHandle> {
        assert!(window_lo <= window_hi && window_hi <= remote.len);
        Arc::new(MemNodeHandle {
            remote,
            flush_alloc: Arc::new(RegionAllocator::new(window_lo, window_hi - window_lo)),
            flush_zone_end: window_hi,
        })
    }

    /// Addressing info for the memory node's region.
    pub fn remote(&self) -> RemoteRegion {
        self.remote
    }

    /// The memory node's fabric id.
    pub fn node_id(&self) -> NodeId {
        self.remote.node
    }

    /// The compute-side allocator over this node's flush window.
    pub fn flush_alloc(&self) -> &Arc<RegionAllocator> {
        &self.flush_alloc
    }

    /// End of this handle's flush window.
    pub fn flush_zone_end(&self) -> u64 {
        self.flush_zone_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsm_memnode::MemServerConfig;
    use rdma_sim::NetworkProfile;

    #[test]
    fn remote_region_addressing() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let node = fabric.add_node();
        let region = node.register_region(4096);
        let rr = RemoteRegion::of(&region);
        let addr = rr.addr(100);
        assert_eq!(addr.node, node.id());
        assert_eq!(addr.offset, 100);
        assert_eq!(addr.rkey, region.rkey());
    }

    #[test]
    fn handle_windows_are_disjoint() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let server = MemServer::start(
            &fabric,
            MemServerConfig { region_size: 1 << 20, flush_zone: 512 << 10, compaction_workers: 1, dispatchers: 1 },
        );
        let rr = RemoteRegion::of(server.region());
        let a = MemNodeHandle::with_window(rr, 0, 256 << 10);
        let b = MemNodeHandle::with_window(rr, 256 << 10, 512 << 10);
        let oa = a.flush_alloc().alloc(1024).unwrap();
        let ob = b.flush_alloc().alloc(1024).unwrap();
        assert!(oa < 256 << 10);
        assert!((256 << 10..512 << 10).contains(&ob));
        server.shutdown();
    }

    #[test]
    fn compute_context_starts_waiter() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let ctx = ComputeContext::new(&fabric);
        assert_eq!(ctx.node().id().0, 0);
        assert!(Arc::strong_count(ctx.waiter()) >= 1);
    }
}
