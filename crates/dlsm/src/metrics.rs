//! Live gauge collectors for [`Db`] and [`ShardedDb`] (DESIGN.md §8b).
//!
//! Each shard registers one closure with a
//! [`dlsm_metrics::MetricsRegistry`]; every `gather()` reads the shard's
//! live state — MemTable occupancy and sequence-range headroom, flush-ring
//! depth, per-level shape and compaction scores, write-stall fractions,
//! live remote extents split by GC origin, flush-zone allocator
//! utilization, and GC backlog — alongside every [`crate::DbStats`]
//! counter and telemetry histogram.
//!
//! ## Sampling-consistency invariant
//!
//! The collector pins the current version (`Arc<Version>`) *before*
//! reading the flush allocator's `in_use()`. Pinned tables cannot be
//! freed while the `Arc` is held, and tables installed after the pin only
//! grow `in_use` — so the sampled compute-origin live bytes never exceed
//! the sampled allocator figure, even under concurrent writers, flushes
//! and GC. `dlsm/tests/metrics.rs` hammers this.

use std::sync::{Arc, Weak};
use std::time::Duration;

use dlsm_metrics::{MetricsRegistry, MetricsServer, Sample};

use crate::compaction::level_score;
use crate::db::{Db, Shared};
use crate::handle::Origin;
use crate::shard::ShardedDb;
use crate::telemetry::StallReason;

impl Db {
    /// Register this database's live-state collector with `reg` (no
    /// `shard` label; see [`ShardedDb::register_metrics`] for the sharded
    /// form). The collector holds only a weak reference — dropping the
    /// `Db` turns it into a no-op rather than keeping state alive.
    pub fn register_metrics(&self, reg: &MetricsRegistry) {
        register_shard(Arc::downgrade(self.shared()), None, reg);
    }

    /// Serve `GET /metrics` for this database on `addr` (`"127.0.0.1:0"`
    /// binds an ephemeral port). `sample_period = Some(p)` serves a cached
    /// sample refreshed every `p`; `None` gathers live per scrape.
    pub fn serve_metrics(
        &self,
        addr: &str,
        sample_period: Option<Duration>,
    ) -> std::io::Result<MetricsServer> {
        let reg = MetricsRegistry::new();
        self.register_metrics(&reg);
        dlsm_metrics::serve(reg, addr, sample_period)
    }
}

impl ShardedDb {
    /// Register one collector per shard, each labeling its series with
    /// `shard="<index>"`.
    pub fn register_metrics(&self, reg: &MetricsRegistry) {
        for (i, db) in self.shards().iter().enumerate() {
            register_shard(Arc::downgrade(db.shared()), Some(i), reg);
        }
    }

    /// Serve `GET /metrics` for all shards on one listener. See
    /// [`Db::serve_metrics`].
    pub fn serve_metrics(
        &self,
        addr: &str,
        sample_period: Option<Duration>,
    ) -> std::io::Result<MetricsServer> {
        let reg = MetricsRegistry::new();
        self.register_metrics(&reg);
        dlsm_metrics::serve(reg, addr, sample_period)
    }
}

fn register_shard(shared: Weak<Shared>, shard: Option<usize>, reg: &MetricsRegistry) {
    let shard_label = shard.map(|i| i.to_string());
    reg.register(move |out: &mut Sample| {
        let Some(shared) = shared.upgrade() else { return };
        let labels: Vec<(&'static str, &str)> = match &shard_label {
            Some(s) => vec![("shard", s.as_str())],
            None => Vec::new(),
        };
        collect_shard(&shared, &labels, out);
    });
}

fn origin_slot(origin: Origin) -> usize {
    match origin {
        Origin::Compute => 0,
        Origin::MemNode => 1,
        Origin::External => 2,
    }
}

const ORIGIN_NAMES: [&str; 3] = ["compute", "memnode", "external"];

fn collect_shard(shared: &Shared, labels: &[(&'static str, &str)], out: &mut Sample) {
    let live = shared.live_state();
    out.gauge_with("dlsm_memtable_bytes", labels, live.mem_bytes as f64);
    out.gauge_with("dlsm_memtable_limit_bytes", labels, live.mem_limit as f64);
    out.gauge_with("dlsm_memtable_entries", labels, live.mem_entries as f64);
    out.gauge_with("dlsm_seq_headroom", labels, live.seq_headroom as f64);
    out.gauge_with("dlsm_imm_queue_depth", labels, live.imm_count as f64);
    out.gauge_with("dlsm_flush_queue_depth", labels, live.flush_queue_len as f64);
    out.gauge_with("dlsm_uptime_seconds", labels, live.uptime.as_secs_f64());

    // Pin the version BEFORE reading the allocator: every table counted
    // below stays allocated until `version` drops, so compute-origin live
    // bytes ≤ flush-zone in_use holds for this sample.
    let version = shared.versions.current();
    for level in 0..version.level_count() {
        let lvl = level.to_string();
        let mut l = labels.to_vec();
        l.push(("level", lvl.as_str()));
        out.gauge_with("dlsm_level_files", &l, version.level(level).len() as f64);
        out.gauge_with("dlsm_level_bytes", &l, version.level_bytes(level) as f64);
        out.gauge_with("dlsm_level_score", &l, level_score(&version, &shared.cfg, level));
    }

    let mut live_bytes = [0u64; 3];
    let mut live_counts = [0u64; 3];
    for level in 0..version.level_count() {
        for table in version.level(level) {
            let slot = origin_slot(table.origin);
            // Same 8-byte-granule rounding as `Db::live_extents`, so the
            // figures reconcile with allocator accounting exactly.
            live_bytes[slot] += table.extent.len.div_ceil(8) * 8;
            live_counts[slot] += 1;
        }
    }
    for (i, name) in ORIGIN_NAMES.iter().enumerate() {
        let mut l = labels.to_vec();
        l.push(("origin", name));
        out.gauge_with("dlsm_live_extent_bytes", &l, live_bytes[i] as f64);
        out.gauge_with("dlsm_live_extents", &l, live_counts[i] as f64);
    }

    let alloc = shared.memnode.flush_alloc();
    out.gauge_with("dlsm_flush_zone_used_bytes", labels, alloc.in_use() as f64);
    out.gauge_with("dlsm_flush_zone_capacity_bytes", labels, alloc.capacity() as f64);
    out.gauge_with("dlsm_flush_zone_fragments", labels, alloc.fragments() as f64);
    drop(version); // held until after the in_use read — see module docs

    out.gauge_with("dlsm_gc_backlog_extents", labels, shared.gc.remote_pending_len() as f64);

    let uptime_micros = (live.uptime.as_micros().max(1)) as f64;
    for (reason, name) in
        [(StallReason::ImmQueueFull, "imm_queue"), (StallReason::L0Limit, "l0_limit")]
    {
        let (_events, micros) = shared.telemetry.stall_micros(reason);
        let mut l = labels.to_vec();
        l.push(("reason", name));
        // Can exceed 1.0 when several writers stall concurrently.
        out.gauge_with("dlsm_stall_fraction", &l, micros as f64 / uptime_micros);
    }

    let cache_snap = shared.cache.as_ref().map(|c| c.snapshot());
    if let Some(cs) = &cache_snap {
        out.gauge_with("dlsm_cache_hit_ratio", labels, cs.hit_ratio());
        out.gauge_with("dlsm_cache_resident_bytes", labels, cs.resident_bytes as f64);
        out.gauge_with("dlsm_cache_capacity_bytes", labels, cs.capacity_bytes as f64);
        out.gauge_with("dlsm_cache_bytes_saved", labels, cs.bytes_saved as f64);
        out.gauge_with("dlsm_cache_evictions", labels, cs.evictions as f64);
        out.gauge_with("dlsm_cache_invalidations", labels, cs.invalidations as f64);
    }

    let mut snap = shared.telemetry.snapshot();
    for (name, v) in shared.stats.snapshot().named_counters() {
        snap.set_counter(name, v);
    }
    if let Some(cs) = &cache_snap {
        for (name, v) in crate::named_cache_counters(cs) {
            snap.set_counter(name, v);
        }
    }
    out.push_telemetry("dlsm_", labels, &snap);
}
