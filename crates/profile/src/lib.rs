//! # dlsm-profile — continuous span-stack sampling profiler
//!
//! Histograms (dlsm-telemetry) say *how slow*, traces (dlsm-trace) say
//! *what one op did*; this crate says **where the wall-time goes over a
//! whole run** (DESIGN.md §12). A sampler thread periodically snapshots
//! every registered thread's live span stack — the seqlock-published
//! [`dlsm_trace::stack`] structures maintained by the RAII span guards —
//! and folds each consistent snapshot into call-path counts:
//!
//! * **Off-CPU/stall attribution.** A leaf `Category::Stall` frame means
//!   the thread is *blocked*, not working; its samples land in an explicit
//!   stall bucket named by the [`StallReason`] arg
//!   (`write_stall[imm_queue]`, `write_stall[l0_limit]`), so blocked time
//!   is attributed, never lost.
//! * **Fabric attribution.** A leaf `Rdma`/`Rpc` frame attributes the
//!   sample to the disaggregation fabric — the compute-vs-fabric
//!   decomposition dLSM's Sec. VIII analysis hinges on.
//! * **Zero-cost when off.** The mutatee side is the span guards' own
//!   seqlock pushes; with profiling disabled a probe is one relaxed load.
//!   The sampler never blocks a mutatee: torn snapshots are rejected and
//!   counted, not retried forever.
//!
//! Output: [`ProfileSnapshot`] (mergeable/delta-able folded counts) →
//! flamegraph folded text ([`ProfileSnapshot::folded`]), a doctor-style
//! ["where did the wall time go" report](ProfileSnapshot::report), a JSON
//! block for `BENCH_<system>.json`, and `dlsm_profile_*` gauges for the
//! Prometheus exporter ([`Profiler::register_metrics`]).

use dlsm_metrics::MetricsRegistry;
use dlsm_telemetry::JsonWriter;
use dlsm_trace::{Category, StackFrame, STALL_IMM_QUEUE, STALL_L0_LIMIT};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default sampling period: 1 kHz. At ~10 threads that is ~10k seqlock
/// reads/s on a dedicated thread — well inside the ≤2% overhead budget.
pub const DEFAULT_PERIOD: Duration = Duration::from_millis(1);

/// What kind of time a sampled call path represents, decided by its leaf
/// frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathClass {
    /// Leaf is engine/server work: the thread is (nominally) on-CPU.
    OnCpu,
    /// Leaf is a `Category::Stall` span: blocked, off-CPU time.
    Stall,
    /// Leaf is a `Category::Rdma`/`Rpc` span: waiting on the fabric.
    Fabric,
}

impl PathClass {
    /// Stable lower-case name (JSON field).
    pub fn name(self) -> &'static str {
        match self {
            PathClass::OnCpu => "on_cpu",
            PathClass::Stall => "stall",
            PathClass::Fabric => "fabric",
        }
    }
}

/// One folded call path and its sample count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathCount {
    /// Semicolon-joined frames, outermost first, rooted at the node label
    /// (flamegraph "folded" convention).
    pub path: String,
    pub class: PathClass,
    pub samples: u64,
}

/// Frozen folded-profile state; delta-able against an earlier snapshot of
/// the same profiler so a bench phase reports exactly its own samples.
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    /// Folded paths, most-sampled first.
    pub paths: Vec<PathCount>,
    /// Total thread-samples taken (attributed + torn).
    pub samples: u64,
    /// Thread-samples rejected because the stack was mid-mutation on every
    /// read attempt.
    pub torn: u64,
    /// Sampling passes completed.
    pub ticks: u64,
}

impl ProfileSnapshot {
    /// Samples attributed to a non-empty span path (including the explicit
    /// stall/fabric buckets).
    pub fn attributed(&self) -> u64 {
        self.paths.iter().filter(|p| !p.path.ends_with(UNTRACKED_LEAF)).map(|p| p.samples).sum()
    }

    /// Fraction of all samples attributed to leaf span paths, in `[0, 1]`.
    /// The ISSUE 8 acceptance bar is ≥ 0.95 per bench phase.
    pub fn attribution(&self) -> f64 {
        if self.samples == 0 {
            return 1.0;
        }
        self.attributed() as f64 / self.samples as f64
    }

    fn class_samples(&self, class: PathClass) -> u64 {
        self.paths.iter().filter(|p| p.class == class).map(|p| p.samples).sum()
    }

    /// Fraction of all samples in explicit stall (blocked/off-CPU) buckets.
    pub fn stall_share(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.class_samples(PathClass::Stall) as f64 / self.samples as f64
    }

    /// Fraction of all samples waiting on the fabric (RDMA verbs, RPC).
    pub fn fabric_share(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.class_samples(PathClass::Fabric) as f64 / self.samples as f64
    }

    /// The `n` most-sampled paths.
    pub fn top_paths(&self, n: usize) -> &[PathCount] {
        &self.paths[..n.min(self.paths.len())]
    }

    /// Samples since `earlier` (a previous snapshot of the same profiler):
    /// counts subtract saturating, paths that gained nothing are dropped.
    pub fn delta(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        let old: HashMap<&str, u64> =
            earlier.paths.iter().map(|p| (p.path.as_str(), p.samples)).collect();
        let mut paths: Vec<PathCount> = self
            .paths
            .iter()
            .filter_map(|p| {
                let gained = p.samples.saturating_sub(old.get(p.path.as_str()).copied().unwrap_or(0));
                (gained > 0).then(|| PathCount { path: p.path.clone(), class: p.class, samples: gained })
            })
            .collect();
        paths.sort_by(|a, b| b.samples.cmp(&a.samples).then_with(|| a.path.cmp(&b.path)));
        ProfileSnapshot {
            paths,
            samples: self.samples.saturating_sub(earlier.samples),
            torn: self.torn.saturating_sub(earlier.torn),
            ticks: self.ticks.saturating_sub(earlier.ticks),
        }
    }

    /// Flamegraph "folded" text: one `path count` line per call path,
    /// ready for `flamegraph.pl` / `inferno-flamegraph`.
    pub fn folded(&self) -> String {
        let mut lines: Vec<&PathCount> = self.paths.iter().collect();
        lines.sort_by(|a, b| a.path.cmp(&b.path));
        let mut out = String::new();
        for p in lines {
            out.push_str(&p.path);
            out.push(' ');
            out.push_str(&p.samples.to_string());
            out.push('\n');
        }
        out
    }

    /// Doctor-style plain-text "where did the wall time go" section.
    pub fn report(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("== profile: {title} ==\n"));
        out.push_str(&format!(
            "samples: {} ({} ticks, {} torn), attribution {:.1}%\n",
            self.samples,
            self.ticks,
            self.torn,
            100.0 * self.attribution()
        ));
        out.push_str(&format!(
            "time share: stall {:.1}%, fabric {:.1}%, on-cpu {:.1}%\n",
            100.0 * self.stall_share(),
            100.0 * self.fabric_share(),
            100.0 * (1.0 - self.stall_share() - self.fabric_share()),
        ));
        out.push_str("hottest paths:\n");
        for p in self.top_paths(8) {
            let pct = if self.samples == 0 {
                0.0
            } else {
                100.0 * p.samples as f64 / self.samples as f64
            };
            out.push_str(&format!("  {pct:5.1}%  [{}] {}\n", p.class.name(), p.path));
        }
        out
    }

    /// Serialize into an open JSON object (caller owns begin/end so extra
    /// fields — e.g. the engine's stall-fraction — can sit alongside).
    pub fn write_json_fields(&self, w: &mut JsonWriter) {
        w.field_u64("samples", self.samples);
        w.field_u64("ticks", self.ticks);
        w.field_u64("torn", self.torn);
        w.field_f64("attribution", self.attribution());
        w.field_f64("stall_share", self.stall_share());
        w.field_f64("fabric_share", self.fabric_share());
        w.key("top");
        w.begin_array();
        for p in self.top_paths(10) {
            w.begin_object();
            w.field_str("path", &p.path);
            w.field_str("class", p.class.name());
            w.field_u64("samples", p.samples);
            w.end_object();
        }
        w.end_array();
    }
}

/// Leaf appended to a registered thread whose stack was empty when
/// sampled (between spans: on-CPU outside instrumentation, or idle with
/// no task frame). Counts against attribution.
const UNTRACKED_LEAF: &str = "(untracked)";

fn stall_bucket(arg: u64) -> &'static str {
    match arg {
        STALL_IMM_QUEUE => "[imm_queue]",
        STALL_L0_LIMIT => "[l0_limit]",
        _ => "[other]",
    }
}

/// Fold one sampled stack into its path key + class.
fn fold(node_label: &str, frames: &[StackFrame]) -> (String, PathClass) {
    let mut path = String::with_capacity(64);
    path.push_str(node_label);
    if frames.is_empty() {
        path.push(';');
        path.push_str(UNTRACKED_LEAF);
        return (path, PathClass::OnCpu);
    }
    for f in frames {
        path.push(';');
        path.push_str(f.name);
        if f.cat == Category::Stall {
            path.push_str(stall_bucket(f.arg));
        }
    }
    let class = match frames.last().map(|f| f.cat) {
        Some(Category::Stall) => PathClass::Stall,
        Some(Category::Rdma) | Some(Category::Rpc) => PathClass::Fabric,
        _ => PathClass::OnCpu,
    };
    (path, class)
}

struct ProfShared {
    stop: AtomicBool,
    counts: Mutex<HashMap<String, (PathClass, u64)>>,
    samples: AtomicU64,
    torn: AtomicU64,
    ticks: AtomicU64,
    /// Microseconds since `epoch` of the last completed sampling pass.
    last_tick_us: AtomicU64,
    epoch: Instant,
}

impl ProfShared {
    fn tick(&self) {
        let s = dlsm_trace::sample_stacks();
        {
            let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
            for stack in &s.stacks {
                let (path, class) = fold(stack.node_label, &stack.frames);
                counts.entry(path).or_insert((class, 0)).1 += 1;
            }
        }
        // ORDERING: relaxed — statistics counters; the counts mutex above
        // is the publication point for the folded paths themselves.
        self.samples.fetch_add(s.stacks.len() as u64 + s.torn, Ordering::Relaxed);
        self.torn.fetch_add(s.torn, Ordering::Relaxed);
        // ORDERING: relaxed — same statistics counters as above.
        self.ticks.fetch_add(1, Ordering::Relaxed);
        // ORDERING: relaxed — freshness gauge, monotone, read by scrapes.
        self.last_tick_us.store(self.epoch.elapsed().as_micros() as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ProfileSnapshot {
        let mut paths: Vec<PathCount> = {
            let counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
            counts
                .iter()
                .map(|(path, &(class, samples))| PathCount { path: path.clone(), class, samples })
                .collect()
        };
        paths.sort_by(|a, b| b.samples.cmp(&a.samples).then_with(|| a.path.cmp(&b.path)));
        ProfileSnapshot {
            paths,
            // ORDERING: relaxed — statistics counters; see tick.
            samples: self.samples.load(Ordering::Relaxed),
            torn: self.torn.load(Ordering::Relaxed),
            ticks: self.ticks.load(Ordering::Relaxed),
        }
    }

    fn staleness(&self) -> Duration {
        // ORDERING: relaxed — freshness gauge; see tick.
        let last = self.last_tick_us.load(Ordering::Relaxed);
        Duration::from_micros((self.epoch.elapsed().as_micros() as u64).saturating_sub(last))
    }
}

/// The continuous profiler: owns the sampler thread, flips the process-wide
/// profiling flag on start/stop, and hands out [`ProfileSnapshot`]s.
pub struct Profiler {
    shared: Arc<ProfShared>,
    period: Duration,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Profiler {
    /// Start sampling every `period` (see [`DEFAULT_PERIOD`]). Enables
    /// span-stack maintenance process-wide (`dlsm_trace::set_profiling`).
    pub fn start(period: Duration) -> Profiler {
        dlsm_trace::set_profiling(true);
        let shared = Arc::new(ProfShared {
            stop: AtomicBool::new(false),
            counts: Mutex::new(HashMap::new()),
            samples: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            last_tick_us: AtomicU64::new(0),
            epoch: Instant::now(),
        });
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("dlsm-profiler".into())
            .spawn(move || {
                // ORDERING: acquire — pairs with the Release store in stop();
                // the final tick must see a fully published stop request.
                while !worker.stop.load(Ordering::Acquire) {
                    std::thread::sleep(period);
                    worker.tick();
                }
            })
            .expect("spawn profiler thread");
        Profiler { shared, period, handle: Some(handle) }
    }

    /// The configured sampling period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Folded counts so far. Cheap; callable while sampling continues.
    pub fn snapshot(&self) -> ProfileSnapshot {
        self.shared.snapshot()
    }

    /// Time since the last completed sampling pass (liveness signal).
    pub fn staleness(&self) -> Duration {
        self.shared.staleness()
    }

    /// Stop the sampler thread and turn span-stack maintenance off.
    /// Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        // ORDERING: release — pairs with the Acquire in the sampler loop.
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
        dlsm_trace::set_profiling(false);
    }

    /// Expose live `dlsm_profile_*` gauges on a metrics registry: sample
    /// and torn totals, attribution, stall/fabric time share, sampler
    /// staleness, and the top-5 hotspot paths with their sample share.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        let shared = Arc::clone(&self.shared);
        registry.register(move |out: &mut dlsm_metrics::Sample| {
            let snap = shared.snapshot();
            out.counter_with("dlsm_profile_samples", &[], snap.samples);
            out.counter_with("dlsm_profile_torn_samples", &[], snap.torn);
            out.gauge("dlsm_profile_attribution", snap.attribution());
            out.gauge("dlsm_profile_stall_share", snap.stall_share());
            out.gauge("dlsm_profile_fabric_share", snap.fabric_share());
            out.gauge("dlsm_profile_staleness_seconds", shared.staleness().as_secs_f64());
            for p in snap.top_paths(5) {
                let share = if snap.samples == 0 {
                    0.0
                } else {
                    p.samples as f64 / snap.samples as f64
                };
                out.gauge_with("dlsm_profile_hotspot_share", &[("path", p.path.as_str())], share);
            }
        });
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsm_trace::{span, span_arg, Category};

    fn frame(name: &'static str, cat: Category, arg: u64) -> StackFrame {
        StackFrame { name, cat, arg }
    }

    #[test]
    fn fold_classifies_leaves() {
        let (p, c) = fold("compute", &[frame("put", Category::Db, 0)]);
        assert_eq!(p, "compute;put");
        assert_eq!(c, PathClass::OnCpu);
        let (p, c) = fold(
            "compute",
            &[frame("put", Category::Db, 0), frame("write_stall", Category::Stall, STALL_IMM_QUEUE)],
        );
        assert_eq!(p, "compute;put;write_stall[imm_queue]");
        assert_eq!(c, PathClass::Stall);
        let (p, c) = fold("memnode", &[frame("rdma_read", Category::Rdma, 4096)]);
        assert_eq!(p, "memnode;rdma_read");
        assert_eq!(c, PathClass::Fabric);
        let (p, c) = fold("compute", &[]);
        assert_eq!(p, "compute;(untracked)");
        assert_eq!(c, PathClass::OnCpu);
    }

    #[test]
    fn snapshot_math_and_delta() {
        let mk = |path: &str, class, samples| PathCount { path: path.into(), class, samples };
        let snap = ProfileSnapshot {
            paths: vec![
                mk("compute;worker;put", PathClass::OnCpu, 60),
                mk("compute;worker;put;write_stall[imm_queue]", PathClass::Stall, 20),
                mk("compute;worker;get;rdma_read", PathClass::Fabric, 15),
                mk("compute;(untracked)", PathClass::OnCpu, 5),
            ],
            samples: 100,
            torn: 0,
            ticks: 50,
        };
        assert_eq!(snap.attributed(), 95);
        assert!((snap.attribution() - 0.95).abs() < 1e-9);
        assert!((snap.stall_share() - 0.20).abs() < 1e-9);
        assert!((snap.fabric_share() - 0.15).abs() < 1e-9);
        let folded = snap.folded();
        assert!(folded.contains("compute;worker;put 60\n"), "{folded}");
        assert!(folded.contains("write_stall[imm_queue] 20"), "{folded}");

        let mut later = snap.clone();
        later.paths[0].samples = 90;
        later.samples = 130;
        later.ticks = 65;
        let d = later.delta(&snap);
        assert_eq!(d.samples, 30);
        assert_eq!(d.ticks, 15);
        assert_eq!(d.paths.len(), 1);
        assert_eq!(d.paths[0].samples, 30);
        assert_eq!(d.paths[0].path, "compute;worker;put");

        let report = snap.report("randomread");
        assert!(report.contains("where") || report.contains("profile: randomread"), "{report}");
        assert!(report.contains("stall 20.0%"), "{report}");
    }

    #[test]
    fn live_sampling_attributes_spans_and_stalls() {
        let mut profiler = Profiler::start(Duration::from_micros(200));
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _task = dlsm_trace::profile_span("test_worker");
                // ORDERING: relaxed — test stop flag.
                while !stop.load(Ordering::Relaxed) {
                    {
                        let _op = span(Category::Db, "test_op");
                        std::thread::sleep(Duration::from_micros(300));
                    }
                    {
                        let _st = span_arg(Category::Stall, "test_stall", STALL_L0_LIMIT);
                        std::thread::sleep(Duration::from_micros(300));
                    }
                }
            })
        };
        std::thread::sleep(Duration::from_millis(80));
        // ORDERING: relaxed — test stop flag.
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        profiler.stop();
        let snap = profiler.snapshot();
        assert!(snap.samples > 0, "{snap:?}");
        assert!(snap.ticks > 0);
        let folded = snap.folded();
        assert!(folded.contains("test_worker;test_op"), "{folded}");
        assert!(folded.contains("test_worker;test_stall[l0_limit]"), "{folded}");
        assert!(snap.stall_share() > 0.0, "{snap:?}");
        // The worker held a task or op frame the whole time: attribution
        // for its samples is total (other test threads may pollute the
        // registry, so assert on the share of known paths instead of 1.0).
        assert!(snap.attribution() > 0.5, "{snap:?}");

        let mut w = JsonWriter::new();
        w.begin_object();
        snap.write_json_fields(&mut w);
        w.end_object();
        let json = w.finish();
        assert!(json.contains("\"stall_share\""), "{json}");
        assert!(json.contains("\"top\""), "{json}");
    }

    #[test]
    fn metrics_registration_exports_gauges() {
        let profiler = Profiler::start(Duration::from_millis(1));
        let registry = MetricsRegistry::new();
        profiler.register_metrics(&registry);
        std::thread::sleep(Duration::from_millis(10));
        let sample = registry.gather();
        assert!(sample.gauge_value("dlsm_profile_attribution", &[]).is_some());
        assert!(sample.gauge_value("dlsm_profile_staleness_seconds", &[]).is_some());
        assert!(sample.counters.iter().any(|c| c.name == "dlsm_profile_samples"));
    }
}
