//! Wire-format robustness: decoders must never panic on arbitrary bytes,
//! every encodable message round-trips, reply frames reject truncation and
//! detect duplication (stale request ids), and the server's dedup window
//! never lets a request execute twice.

use dlsm_memnode::wire::{BufDesc, ReplyFrame, Request};
use dlsm_memnode::{
    CachedReply, CompactArgs, CompactReply, DedupDecision, DedupMap, InputTable, OutputTable,
    TableFormat,
};
use proptest::prelude::*;

fn desc_strategy() -> impl Strategy<Value = BufDesc> {
    (any::<u32>(), any::<u64>(), any::<u32>(), any::<u32>())
        .prop_map(|(mr, offset, rkey, len)| BufDesc { mr, offset, rkey, len })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic any decoder (they may error).
    #[test]
    fn decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&bytes);
        let _ = CompactArgs::decode(&bytes);
        let _ = CompactReply::decode(&bytes);
    }

    #[test]
    fn request_roundtrip(
        reply in desc_strategy(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        offset in any::<u64>(),
        len in any::<u32>(),
        unique_id in any::<u32>(),
        args in desc_strategy(),
        extents in prop::collection::vec((any::<u64>(), any::<u64>()), 0..16),
        req_id in any::<u64>(),
        target in any::<u64>(),
    ) {
        let cases = vec![
            Request::Ping { reply, payload: payload.clone() },
            Request::FreeBatch { reply, extents },
            Request::Compact { reply, unique_id, args },
            Request::ReadFile { reply, offset, len },
            Request::WriteFile { reply, offset, data: payload },
            Request::CancelCompact { reply, target },
        ];
        for r in cases {
            prop_assert_eq!(Request::decode(&r.encode(req_id)).unwrap(), (req_id, r));
        }
    }

    /// Reply frames round-trip; any truncation is rejected rather than
    /// yielding a short payload; a duplicated (stale) frame is detectable
    /// by its request id alone.
    #[test]
    fn reply_frame_truncation_and_duplication(
        req_id in any::<u64>(),
        stale_id in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
        cut in any::<prop::sample::Index>(),
    ) {
        let frame = ReplyFrame::encode(req_id, &payload);
        let (got_id, got) = ReplyFrame::decode(&frame).unwrap();
        prop_assert_eq!(got_id, req_id);
        prop_assert_eq!(got, &payload[..]);

        // Every strict prefix fails to decode (no silent short reads).
        let cut = cut.index(frame.len());
        prop_assert!(ReplyFrame::decode(&frame[..cut]).is_err());

        // A frame left over from an earlier request is identified by id:
        // this is exactly the check the client uses to discard duplicated
        // or stale reply deliveries after a retry.
        let old = ReplyFrame::encode(stale_id, &payload);
        let (old_id, _) = ReplyFrame::decode(&old).unwrap();
        prop_assert_eq!(old_id == req_id, stale_id == req_id);
    }

    /// Under an arbitrary interleaving of request arrivals (including
    /// duplicates), cancels, and completions, the dedup window never tells
    /// the server to execute the same request id twice unless the first
    /// execution was aborted (failed), and canceled work is never replayed.
    #[test]
    fn dedup_window_is_at_most_once(
        script in prop::collection::vec((0u8..4, 0u64..24), 1..200),
    ) {
        let map = DedupMap::new(1024);
        let fabric = rdma_sim::Fabric::new(rdma_sim::NetworkProfile::instant());
        let client = fabric.add_node().id();
        // Per id: (executions since last abort, ever completed, ever canceled)
        let mut running: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut done: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut canceled: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (action, id) in script {
            match action {
                0 => match map.begin(client, id) {
                    DedupDecision::Execute => {
                        prop_assert!(!running.contains(&id), "double execution of in-flight id");
                        prop_assert!(!done.contains(&id), "re-execution of completed id");
                        prop_assert!(!canceled.contains(&id), "execution of canceled id");
                        running.insert(id);
                    }
                    DedupDecision::InFlight => {
                        prop_assert!(running.contains(&id) || canceled.contains(&id));
                    }
                    DedupDecision::Replay(_) => {
                        prop_assert!(done.contains(&id), "replay of never-completed id");
                    }
                },
                1 => {
                    if running.remove(&id) {
                        let cached = CachedReply {
                            payload: vec![id as u8],
                            extents: vec![],
                            compact: false,
                        };
                        if map.complete(client, id, cached) {
                            done.insert(id);
                        } else {
                            prop_assert!(canceled.contains(&id));
                        }
                    }
                }
                2 => {
                    if running.remove(&id) {
                        map.abort(client, id); // failed: retries may re-execute
                    }
                }
                _ => {
                    map.cancel(client, id);
                    canceled.insert(id);
                    done.remove(&id);
                    running.remove(&id);
                }
            }
        }
    }

    #[test]
    fn compact_args_roundtrip(
        block in prop::option::of(any::<u32>()),
        snapshot in 0u64..(1 << 56),
        drop_deletions in any::<bool>(),
        max_out in any::<u64>(),
        bits in any::<u32>(),
        lo in prop::collection::vec(any::<u8>(), 0..24),
        hi in prop::collection::vec(any::<u8>(), 0..24),
        inputs in prop::collection::vec((any::<u64>(), any::<u64>()), 0..32),
    ) {
        let args = CompactArgs {
            format: match block {
                Some(b) => TableFormat::Block(b),
                None => TableFormat::ByteAddr,
            },
            smallest_snapshot: snapshot,
            drop_deletions,
            max_output_bytes: max_out,
            bits_per_key: bits,
            range_lo: lo,
            range_hi: hi,
            inputs: inputs.into_iter().map(|(offset, len)| InputTable { offset, len }).collect(),
        };
        prop_assert_eq!(CompactArgs::decode(&args.encode()).unwrap(), args);
    }

    #[test]
    fn compact_reply_roundtrip(
        outputs in prop::collection::vec(
            (any::<u64>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..64)),
            0..16,
        ),
        records_in in any::<u64>(),
        records_out in any::<u64>(),
    ) {
        let reply = CompactReply {
            outputs: outputs
                .into_iter()
                .map(|(offset, len, meta)| OutputTable { offset, len, meta })
                .collect(),
            records_in,
            records_out,
        };
        prop_assert_eq!(CompactReply::decode(&reply.encode()).unwrap(), reply);
    }

    /// The allocator never hands out overlapping extents and coalesces back
    /// to a single free extent under arbitrary alloc/free interleavings.
    #[test]
    fn allocator_invariants(script in prop::collection::vec((any::<bool>(), 1u64..2048), 1..200)) {
        use dlsm_memnode::RegionAllocator;
        let a = RegionAllocator::new(64, 1 << 20);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (is_alloc, size) in script {
            if is_alloc || live.is_empty() {
                if let Some(off) = a.alloc(size) {
                    for &(o, s) in &live {
                        let s8 = s.next_multiple_of(8);
                        let size8 = size.next_multiple_of(8);
                        prop_assert!(off + size8 <= o || o + s8 <= off, "overlap");
                    }
                    prop_assert!(off >= 64 && off + size <= 64 + (1 << 20));
                    live.push((off, size));
                }
            } else {
                let (off, size) = live.swap_remove(0);
                a.free(off, size);
            }
        }
        for (off, size) in live.drain(..) {
            a.free(off, size);
        }
        prop_assert_eq!(a.in_use(), 0);
        prop_assert_eq!(a.fragments(), 1);
    }
}
