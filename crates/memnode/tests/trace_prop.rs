//! Structural properties of concurrent tracing (DESIGN.md §8a): spans
//! recorded by parallel writer threads always end at or after they start,
//! a parent span strictly encloses its children on the same thread, and a
//! cross-node child created from a wire-header round-tripped [`TraceCtx`]
//! joins the originating trace and names a real parent span.
//!
//! Lives in the memnode crate (not `dlsm-trace`) so the context can take
//! the production path through `Request::encode_with_ctx` /
//! `decode_with_ctx` without a dev-dependency cycle.

use std::sync::{Barrier, Mutex, OnceLock};

use dlsm_memnode::wire::{BufDesc, Request};
use dlsm_trace::{Category, Event, EventKind};
use proptest::prelude::*;

/// Tracing state (enable flag, ring registry) is process-global, so test
/// cases must not interleave with each other.
fn test_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Ship `ctx` through a real wire frame, exactly as an RPC client would,
/// and hand back what the server dispatcher decodes.
fn roundtrip_ctx(ctx: dlsm_trace::TraceCtx) -> dlsm_trace::TraceCtx {
    let reply = BufDesc { mr: 1, offset: 0, rkey: 7, len: 64 };
    let req = Request::Ping { reply, payload: vec![0xAB; 3] };
    let frame = req.encode_with_ctx(42, Some(ctx));
    let (req_id, decoded, back) = Request::decode_with_ctx(&frame).expect("valid frame");
    assert_eq!(req_id, 42);
    assert_eq!(back, req);
    decoded.expect("ctx survives the header")
}

/// One writer thread: nested spans `depth` deep, with a busy loop inside
/// so parent/child timestamps are distinguishable at µs resolution.
fn run_writer(depth: usize, spins: u32) {
    fn nest(depth: usize, spins: u32) {
        if depth == 0 {
            for _ in 0..spins {
                std::hint::black_box(0u64);
            }
            return;
        }
        let _sp = dlsm_trace::span(Category::Db, "prop_span");
        nest(depth - 1, spins);
    }
    nest(depth, spins);
}

fn parent_of(events: &[Event], child: &Event) -> Option<Event> {
    events.iter().find(|e| e.span_id == child.parent_id).cloned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_spans_are_well_formed(
        depths in prop::collection::vec(1usize..6, 2..4),
        spins in 0u32..2_000,
    ) {
        let _g = test_lock().lock().unwrap_or_else(|e| e.into_inner());
        dlsm_trace::clear();
        dlsm_trace::set_enabled(true);

        // Writers record concurrently; the last thread plays "memnode":
        // it receives the first writer's root context through the wire
        // header and records a child span under a different node id.
        let barrier = Barrier::new(depths.len() + 1);
        let (ctx_tx, ctx_rx) = std::sync::mpsc::channel::<dlsm_trace::TraceCtx>();
        std::thread::scope(|scope| {
            for (i, &depth) in depths.iter().enumerate() {
                let barrier = &barrier;
                let ctx_tx = ctx_tx.clone();
                scope.spawn(move || {
                    barrier.wait();
                    let root = dlsm_trace::span(Category::Rpc, "prop_root");
                    if i == 0 {
                        let ctx = dlsm_trace::current_ctx().expect("inside a span");
                        ctx_tx.send(roundtrip_ctx(ctx)).unwrap();
                    }
                    run_writer(depth, spins);
                    drop(root);
                });
            }
            let barrier = &barrier;
            scope.spawn(move || {
                dlsm_trace::set_thread_node(2, "memnode");
                barrier.wait();
                let ctx = ctx_rx.recv().expect("client ctx");
                let _sp = dlsm_trace::span_child_of(Category::Server, "prop_dispatch", ctx);
            });
        });
        dlsm_trace::set_enabled(false);
        let events = dlsm_trace::collect_events();

        let spans: Vec<&Event> =
            events.iter().filter(|e| e.kind == EventKind::Span).collect();
        // Every writer produced its root plus `depth` nested spans, and the
        // server thread produced one — nothing may be lost below RING_CAP.
        let expected: usize = depths.iter().map(|d| d + 1).sum::<usize>() + 1;
        prop_assert_eq!(spans.len(), expected);

        for s in &spans {
            // End never precedes start.
            prop_assert!(s.end_us() >= s.ts_us);
            if s.parent_id == 0 {
                continue;
            }
            let parent = parent_of(&events, s);
            prop_assert!(parent.is_some(), "dangling parent_id {}", s.parent_id);
            let parent = parent.unwrap();
            prop_assert_eq!(parent.trace_id, s.trace_id);
            if parent.tid == s.tid {
                // Same-thread nesting: the parent encloses the child.
                prop_assert!(parent.ts_us <= s.ts_us);
                prop_assert!(s.end_us() <= parent.end_us());
            }
        }

        // The cross-node child joined the first writer's trace through the
        // wire header and points at its live root span.
        let dispatch = spans
            .iter()
            .find(|e| e.name == "prop_dispatch")
            .expect("server span recorded");
        prop_assert_eq!(dispatch.node_id, 2);
        let root = parent_of(&events, dispatch).expect("parent root span exists");
        prop_assert_eq!(root.name, "prop_root");
        prop_assert_eq!(root.node_id, 0); // compute side
        prop_assert_eq!(dispatch.trace_id, root.trace_id);
    }
}
