//! Near-data compaction execution.
//!
//! The merge runs entirely against the memory node's own DRAM: inputs are
//! scanned in place ([`RegionSource`] — zero network cost) and outputs are
//! serialized straight into extents allocated from the node's **compaction
//! zone**. The only bytes that ever cross the network for a compaction are
//! the small RPC argument and the output metadata in the reply (paper
//! Sec. V).
//!
//! The same code also runs *on the compute node* when near-data compaction
//! is disabled (the Fig. 12 "compaction on compute node" bar and the
//! RocksDB-RDMA baselines) — callers simply hand it a remote-reading
//! `DataSource` and a staging sink; see the `dlsm` crate.

use std::sync::Arc;

use dlsm_sstable::block::{BlockTableBuilder, BlockTableReader};
use dlsm_sstable::byte_addr::{ByteAddrBuilder, RawTableIter};
use dlsm_sstable::iter::{ClampIter, ForwardIter, MergingIter};
use dlsm_sstable::merge::{CompactionIter, MergeConfig};
use dlsm_sstable::source::RegionSource;
use rdma_sim::MemoryRegion;

use crate::alloc::RegionAllocator;
use crate::sink::RegionSink;
use crate::wire::{CompactArgs, CompactReply, OutputTable, TableFormat};
use crate::{MemNodeError, Result};

/// Slack added on top of `max_output_bytes` when reserving an output extent
/// (covers the final record straddling the cut point plus, for the block
/// format, the filter/index/footer). The unused tail is freed afterwards.
const OUTPUT_SLACK: u64 = 4 << 20;

/// Chunk size for scanning input tables from local DRAM.
const LOCAL_SCAN_CHUNK: usize = 1 << 20;

/// Smallest extent worth reserving for an output table.
const MIN_OUTPUT_EXTENT: u64 = 64 << 10;

/// Safety margin kept free in an output extent when deciding to cut.
const CUT_MARGIN: u64 = 1 << 10;

/// Run one compaction described by `args` against `region`, allocating
/// outputs from `allocator` (the compaction zone).
pub fn execute_compaction(
    region: &Arc<MemoryRegion>,
    allocator: &RegionAllocator,
    args: &CompactArgs,
) -> Result<CompactReply> {
    match args.format {
        TableFormat::ByteAddr => {
            let iters: Vec<RawTableIter<RegionSource>> = args
                .inputs
                .iter()
                .map(|t| {
                    RawTableIter::new(
                        RegionSource::new(Arc::clone(region), t.offset, t.len),
                        t.len,
                        LOCAL_SCAN_CHUNK,
                    )
                })
                .collect();
            let clamped = ClampIter::new(MergingIter::new(iters), args.range_lo.clone(), args.range_hi.clone());
            compact_byte_addr(clamped, region, allocator, args)
        }
        TableFormat::Block(block_size) => {
            let readers: Vec<BlockTableReader<RegionSource>> = args
                .inputs
                .iter()
                .map(|t| {
                    BlockTableReader::open(RegionSource::new(Arc::clone(region), t.offset, t.len))
                })
                .collect::<dlsm_sstable::Result<_>>()?;
            let iters: Vec<_> = readers.iter().map(|r| r.iter(LOCAL_SCAN_CHUNK)).collect();
            let clamped = ClampIter::new(MergingIter::new(iters), args.range_lo.clone(), args.range_hi.clone());
            compact_block(clamped, region, allocator, args, block_size)
        }
    }
}

fn merge_config(args: &CompactArgs) -> MergeConfig {
    MergeConfig { smallest_snapshot: args.smallest_snapshot, drop_deletions: args.drop_deletions }
}

/// Reserve an output extent: ideally `max_output_bytes + OUTPUT_SLACK`, but
/// fall back to smaller extents when the zone is fragmented or small (the
/// output is simply cut earlier).
fn reserve(allocator: &RegionAllocator, args: &CompactArgs) -> Result<(u64, u64)> {
    let mut cap = args.max_output_bytes + OUTPUT_SLACK;
    loop {
        if let Some(off) = allocator.alloc(cap) {
            return Ok((off, cap));
        }
        if cap <= MIN_OUTPUT_EXTENT {
            return Err(MemNodeError::OutOfMemory { requested: cap });
        }
        cap = (cap / 2).max(MIN_OUTPUT_EXTENT);
    }
}

/// Return the unused tail of an output extent to the allocator.
fn trim(allocator: &RegionAllocator, off: u64, cap: u64, used: u64) {
    let used = used.next_multiple_of(8);
    if used < cap {
        allocator.free(off + used, cap - used);
    }
}

/// Free every extent a partially-built compaction owns. A mid-merge error
/// must not leak compaction-zone memory: without this, an aborted
/// compaction would strand its reserved extent (and any finished outputs)
/// forever, since the requester only learns offsets from a success reply.
fn reclaim_partial(allocator: &RegionAllocator, outputs: &mut Vec<OutputTable>, current: Option<(u64, u64)>) {
    if let Some((off, cap)) = current {
        allocator.free(off, cap);
    }
    for out in outputs.drain(..) {
        allocator.free(out.offset, out.len);
    }
}

fn compact_byte_addr<I: ForwardIter>(
    input: I,
    region: &Arc<MemoryRegion>,
    allocator: &RegionAllocator,
    args: &CompactArgs,
) -> Result<CompactReply> {
    let mut it = CompactionIter::new(input, merge_config(args));
    let mut outputs = Vec::new();
    let mut records_out = 0u64;
    if let Err(e) = it.seek_to_first() {
        return Err(e.into());
    }
    while it.valid() {
        let (off, cap) = reserve(allocator, args)
            .inspect_err(|_| reclaim_partial(allocator, &mut outputs, None))?;
        let built: Result<(u64, Vec<u8>)> = (|| {
            let sink = RegionSink::new(Arc::clone(region), off, cap);
            let mut builder = ByteAddrBuilder::new(sink, args.bits_per_key as usize);
            while it.valid() && builder.data_len() < args.max_output_bytes {
                let record = 20 + it.key().len() as u64 + it.value().len() as u64;
                if builder.data_len() + record + CUT_MARGIN > cap {
                    break; // extent nearly full: cut this output early
                }
                builder.add(it.key(), it.value())?;
                records_out += 1;
                it.next()?;
            }
            let (sink, meta) = builder.finish();
            Ok((sink.written(), meta.encode()))
        })();
        match built {
            Ok((used, meta)) => {
                trim(allocator, off, cap, used);
                outputs.push(OutputTable { offset: off, len: used, meta });
            }
            Err(e) => {
                reclaim_partial(allocator, &mut outputs, Some((off, cap)));
                return Err(e);
            }
        }
    }
    Ok(CompactReply { outputs, records_in: it.records_seen(), records_out })
}

fn compact_block<I: ForwardIter>(
    input: I,
    region: &Arc<MemoryRegion>,
    allocator: &RegionAllocator,
    args: &CompactArgs,
    block_size: u32,
) -> Result<CompactReply> {
    let mut it = CompactionIter::new(input, merge_config(args));
    let mut outputs = Vec::new();
    let mut records_out = 0u64;
    if let Err(e) = it.seek_to_first() {
        return Err(e.into());
    }
    while it.valid() {
        let (off, cap) = reserve(allocator, args)
            .inspect_err(|_| reclaim_partial(allocator, &mut outputs, None))?;
        let built: Result<(u64, Vec<u8>)> = (|| {
            let sink = RegionSink::new(Arc::clone(region), off, cap);
            let mut builder =
                BlockTableBuilder::new(sink, block_size as usize, args.bits_per_key as usize);
            let mut smallest: Option<Vec<u8>> = None;
            let mut largest: Vec<u8> = Vec::new();
            while it.valid() && builder.data_len() < args.max_output_bytes {
                let record = 20 + it.key().len() as u64 + it.value().len() as u64;
                if builder.estimated_finished_len() + record + CUT_MARGIN > cap {
                    break; // extent nearly full: cut this output early
                }
                builder.add(it.key(), it.value())?;
                if smallest.is_none() {
                    smallest = Some(it.key().to_vec());
                }
                largest.clear();
                largest.extend_from_slice(it.key());
                records_out += 1;
                it.next()?;
            }
            let (sink, total_len) = builder.finish()?;
            debug_assert_eq!(sink.written(), total_len);
            // Block tables keep their real metadata remotely; the reply only
            // carries the key bounds (len-prefixed smallest, then largest) so
            // the compute node can place the table without opening it first.
            let mut meta = Vec::new();
            dlsm_sstable::coding::put_len_prefixed(&mut meta, smallest.as_deref().unwrap_or(&[]));
            dlsm_sstable::coding::put_len_prefixed(&mut meta, &largest);
            Ok((total_len, meta))
        })();
        match built {
            Ok((total_len, meta)) => {
                trim(allocator, off, cap, total_len);
                outputs.push(OutputTable { offset: off, len: total_len, meta });
            }
            Err(e) => {
                reclaim_partial(allocator, &mut outputs, Some((off, cap)));
                return Err(e);
            }
        }
    }
    Ok(CompactReply { outputs, records_in: it.records_seen(), records_out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::InputTable;
    use dlsm_sstable::byte_addr::{ByteAddrReader, TableGet, TableMeta};
    use dlsm_sstable::key::{InternalKey, ValueType, MAX_SEQ};
    use rdma_sim::{Fabric, NetworkProfile};

    fn setup(region_size: usize) -> (Arc<MemoryRegion>, RegionAllocator) {
        let fabric = Fabric::new(NetworkProfile::instant());
        let node = fabric.add_node();
        let region = node.register_region(region_size);
        // Inputs are staged in the low half; the allocator owns the top half.
        let alloc = RegionAllocator::new(region_size as u64 / 2, region_size as u64 / 2);
        (region, alloc)
    }

    /// Build a byte-addressable table image at `off` with the given entries.
    fn stage_table(
        region: &Arc<MemoryRegion>,
        off: u64,
        entries: &[(&str, u64, ValueType, &str)],
    ) -> InputTable {
        let mut b = ByteAddrBuilder::new(Vec::new(), 10);
        for (k, s, t, v) in entries {
            b.add(InternalKey::new(k.as_bytes(), *s, *t).as_bytes(), v.as_bytes()).unwrap();
        }
        let (data, _meta) = b.finish();
        region.local_write(off, &data).unwrap();
        InputTable { offset: off, len: data.len() as u64 }
    }

    fn args(inputs: Vec<InputTable>) -> CompactArgs {
        CompactArgs {
            format: TableFormat::ByteAddr,
            smallest_snapshot: MAX_SEQ,
            drop_deletions: true,
            max_output_bytes: 64 << 20,
            bits_per_key: 10,
            range_lo: vec![],
            range_hi: vec![],
            inputs,
        }
    }

    #[test]
    fn merges_and_dedups() {
        let (region, alloc) = setup(8 << 20);
        let t1 = stage_table(
            &region,
            0,
            &[("a", 10, ValueType::Value, "a-new"), ("b", 11, ValueType::Deletion, "")],
        );
        let t2 = stage_table(
            &region,
            64 << 10,
            &[("a", 3, ValueType::Value, "a-old"), ("b", 4, ValueType::Value, "b-old"), ("c", 5, ValueType::Value, "c")],
        );
        let reply = execute_compaction(&region, &alloc, &args(vec![t1, t2])).unwrap();
        assert_eq!(reply.records_in, 5);
        // b fully vanishes (tombstone + bottom level); a keeps newest; c kept.
        assert_eq!(reply.records_out, 2);
        assert_eq!(reply.outputs.len(), 1);
        let out = &reply.outputs[0];
        let (meta, _) = TableMeta::decode(&out.meta).unwrap();
        let reader = ByteAddrReader::new(
            Arc::new(meta),
            RegionSource::new(Arc::clone(&region), out.offset, out.len),
        );
        assert_eq!(reader.get(b"a", MAX_SEQ).unwrap(), TableGet::Found(b"a-new".to_vec()));
        assert_eq!(reader.get(b"b", MAX_SEQ).unwrap(), TableGet::NotFound);
        assert_eq!(reader.get(b"c", MAX_SEQ).unwrap(), TableGet::Found(b"c".to_vec()));
    }

    #[test]
    fn splits_outputs_at_size_budget() {
        let (region, alloc) = setup(64 << 20);
        let entries: Vec<(String, String)> = (0..2000)
            .map(|i| (format!("key{i:06}"), format!("val{i:06}-{}", "x".repeat(100))))
            .collect();
        let refs: Vec<(&str, u64, ValueType, &str)> =
            entries.iter().map(|(k, v)| (k.as_str(), 7u64, ValueType::Value, v.as_str())).collect();
        let t = stage_table(&region, 0, &refs);
        let mut a = args(vec![t]);
        a.max_output_bytes = 32 << 10; // force several outputs
        let reply = execute_compaction(&region, &alloc, &a).unwrap();
        assert!(reply.outputs.len() > 2, "expected multiple outputs, got {}", reply.outputs.len());
        assert_eq!(reply.records_out, 2000);
        // Outputs are disjoint, ordered, and decode cleanly.
        let mut total = 0;
        for out in &reply.outputs {
            let (meta, _) = TableMeta::decode(&out.meta).unwrap();
            total += meta.num_entries;
        }
        assert_eq!(total, 2000);
    }

    #[test]
    fn unused_extent_tail_is_returned() {
        let (region, alloc) = setup(8 << 20);
        let t = stage_table(&region, 0, &[("only", 1, ValueType::Value, "v")]);
        let before = alloc.in_use();
        let reply = execute_compaction(&region, &alloc, &args(vec![t])).unwrap();
        let out_len = reply.outputs[0].len.next_multiple_of(8);
        assert_eq!(alloc.in_use() - before, out_len, "tail must be trimmed back");
    }

    #[test]
    fn out_of_memory_surfaces() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let node = fabric.add_node();
        let region = node.register_region(1 << 20);
        let alloc = RegionAllocator::new(0, 64); // absurdly small zone
        let t = stage_table(&region, 1 << 18, &[("k", 1, ValueType::Value, "v")]);
        let err = execute_compaction(&region, &alloc, &args(vec![t])).unwrap_err();
        assert!(matches!(err, MemNodeError::OutOfMemory { .. }));
    }

    #[test]
    fn error_midway_frees_every_reserved_extent() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let node = fabric.add_node();
        let region = node.register_region(1 << 20);
        // A zone big enough for exactly one MIN_OUTPUT_EXTENT reservation:
        // the first output succeeds, the second reservation hits OOM with
        // an output already produced.
        let alloc = RegionAllocator::new(512 << 10, 80 << 10);
        let entries: Vec<(String, String)> = (0..500)
            .map(|i| (format!("key{i:06}"), format!("val-{}", "y".repeat(200))))
            .collect();
        let refs: Vec<(&str, u64, ValueType, &str)> =
            entries.iter().map(|(k, v)| (k.as_str(), 7u64, ValueType::Value, v.as_str())).collect();
        let t = stage_table(&region, 0, &refs);
        let mut a = args(vec![t]);
        a.max_output_bytes = 32 << 10;
        let err = execute_compaction(&region, &alloc, &a).unwrap_err();
        assert!(matches!(err, MemNodeError::OutOfMemory { .. }));
        assert_eq!(alloc.in_use(), 0, "aborted compaction must not leak extents");
    }

    #[test]
    fn block_format_roundtrip() {
        use dlsm_sstable::block::BlockTableBuilder as BB;
        let (region, alloc) = setup(16 << 20);
        // Stage a block-format input.
        let mut b = BB::new(Vec::new(), 2048, 10);
        for i in 0..500 {
            b.add(
                InternalKey::new(format!("k{i:05}").as_bytes(), 9, ValueType::Value).as_bytes(),
                b"blockval",
            )
            .unwrap();
        }
        let (data, total) = b.finish().unwrap();
        region.local_write(0, &data).unwrap();
        let mut a = args(vec![InputTable { offset: 0, len: total }]);
        a.format = TableFormat::Block(2048);
        let reply = execute_compaction(&region, &alloc, &a).unwrap();
        assert_eq!(reply.records_out, 500);
        assert_eq!(reply.outputs.len(), 1);
        let out = &reply.outputs[0];
        let (small, n) = dlsm_sstable::coding::get_len_prefixed(&out.meta, 0).unwrap();
        let (large, _) = dlsm_sstable::coding::get_len_prefixed(&out.meta, n).unwrap();
        assert_eq!(dlsm_sstable::key::user_key(small), b"k00000");
        assert_eq!(dlsm_sstable::key::user_key(large), b"k00499");
        let reader = BlockTableReader::open(RegionSource::new(
            Arc::clone(&region),
            out.offset,
            out.len,
        ))
        .unwrap();
        assert_eq!(reader.num_entries(), 500);
        assert_eq!(reader.get(b"k00123", MAX_SEQ).unwrap(), TableGet::Found(b"blockval".to_vec()));
    }
}
