//! RPC wire formats (hand-rolled little-endian).
//!
//! Every request is a two-sided SEND whose payload starts with an opcode, a
//! **request id**, and the requester's **reply-buffer descriptor**
//! `(mr, offset, rkey, len)`; the responder answers with a one-sided WRITE
//! into that buffer, bypassing any dispatcher on the requester side (paper
//! Sec. X-D1). The compaction request additionally carries a unique id (the
//! wake-up immediate) and an **argument-buffer descriptor** that the
//! responder pulls with an RDMA read, keeping the SEND itself small
//! (Sec. X-D2).
//!
//! Request ids make the protocol safe to retry over a lossy fabric: a
//! client re-issues a timed-out request under the *same* id, and the server
//! deduplicates — non-idempotent ops (extent frees, compactions) execute at
//! most once, with the cached reply replayed for duplicates. Replies echo
//! the id in their frame ([`ReplyFrame`]) so a poller can tell a late,
//! stale reply from the one it is waiting for.

use dlsm_sstable::coding::{get_u32, get_u64, put_u32, put_u64};
use dlsm_sstable::key::SeqNo;

use crate::{MemNodeError, Result};

/// RPC opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Echo the payload (liveness/latency probe).
    Ping = 1,
    /// Free a batch of extents in the memory node's compaction zone.
    FreeBatch = 2,
    /// Near-data compaction (customized RPC).
    Compact = 3,
    /// Two-sided read of region bytes (the Nova-LSM-style tmpfs path).
    ReadFile = 4,
    /// Two-sided write of region bytes (tmpfs path).
    WriteFile = 5,
    /// Abandon a compaction by its request id, freeing any outputs it
    /// produced (or will produce) on the memory node.
    CancelCompact = 6,
}

impl Op {
    /// Parse an opcode byte.
    pub fn from_u8(b: u8) -> Option<Op> {
        match b {
            1 => Some(Op::Ping),
            2 => Some(Op::FreeBatch),
            3 => Some(Op::Compact),
            4 => Some(Op::ReadFile),
            5 => Some(Op::WriteFile),
            6 => Some(Op::CancelCompact),
            _ => None,
        }
    }
}

/// Framing of every reply written one-sided into the requester's polling
/// buffer: `[payload len u32][req_id u64][payload]`, with the completion
/// flag word occupying the final 8 bytes of the buffer. The echoed request
/// id lets the poller reject frames left over from earlier, retried calls.
pub struct ReplyFrame;

impl ReplyFrame {
    /// Bytes before the payload.
    pub const HEADER: usize = 12;

    /// Frame `payload` for request `req_id`.
    pub fn encode(req_id: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::HEADER + payload.len());
        put_u32(&mut out, payload.len() as u32);
        put_u64(&mut out, req_id);
        out.extend_from_slice(payload);
        out
    }

    /// Parse a frame, returning `(req_id, payload)`.
    pub fn decode(buf: &[u8]) -> Result<(u64, &[u8])> {
        let len = get_u32(buf, 0).map_err(bad)? as usize;
        let req_id = get_u64(buf, 4).map_err(bad)?;
        let payload = buf
            .get(Self::HEADER..Self::HEADER + len)
            .ok_or_else(|| MemNodeError::BadMessage(format!("truncated reply frame ({len} byte payload)")))?;
        Ok((req_id, payload))
    }
}

/// A buffer descriptor `(mr, offset, rkey, len)` on some node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufDesc {
    /// Memory-region id on the owning node.
    pub mr: u32,
    /// Offset within the region.
    pub offset: u64,
    /// Remote-access key.
    pub rkey: u32,
    /// Buffer length in bytes.
    pub len: u32,
}

impl BufDesc {
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.mr);
        put_u64(out, self.offset);
        put_u32(out, self.rkey);
        put_u32(out, self.len);
    }

    pub(crate) fn decode(buf: &[u8], off: usize) -> Result<(BufDesc, usize)> {
        let mr = get_u32(buf, off).map_err(bad)?;
        let offset = get_u64(buf, off + 4).map_err(bad)?;
        let rkey = get_u32(buf, off + 12).map_err(bad)?;
        let len = get_u32(buf, off + 16).map_err(bad)?;
        Ok((BufDesc { mr, offset, rkey, len }, 20))
    }
}

fn bad(e: dlsm_sstable::SstError) -> MemNodeError {
    MemNodeError::BadMessage(e.to_string())
}

/// Which table format a compaction reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableFormat {
    /// dLSM's byte-addressable format (Sec. VI).
    ByteAddr,
    /// Block-based format with the given block size (0 = one record per
    /// block) — used by the dLSM-Block ablation.
    Block(u32),
}

/// One input table for a compaction: its extent in the memory node's region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputTable {
    /// Offset of the table image in the region.
    pub offset: u64,
    /// Length of the table image.
    pub len: u64,
}

/// The (large) compaction argument, pulled by the responder via RDMA read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactArgs {
    /// Format of inputs and outputs.
    pub format: TableFormat,
    /// Snapshot horizon for version dropping.
    pub smallest_snapshot: SeqNo,
    /// True when compacting into the bottom-most level.
    pub drop_deletions: bool,
    /// Split outputs at roughly this many data bytes.
    pub max_output_bytes: u64,
    /// Bloom-filter budget for outputs.
    pub bits_per_key: u32,
    /// Inclusive lower user-key bound of this (sub-)compaction; empty =
    /// unbounded. Sub-compactions split one logical compaction into
    /// disjoint user-key ranges executed in parallel (paper Sec. V-A).
    pub range_lo: Vec<u8>,
    /// Exclusive upper user-key bound; empty = unbounded.
    pub range_hi: Vec<u8>,
    /// Input tables, already in merge order (L0 newest-first, then Ln+1).
    pub inputs: Vec<InputTable>,
}

impl CompactArgs {
    /// Serialize into the argument buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40 + self.inputs.len() * 16);
        let (fmt, bs) = match self.format {
            TableFormat::ByteAddr => (0u8, 0u32),
            TableFormat::Block(b) => (1u8, b),
        };
        out.push(fmt);
        put_u32(&mut out, bs);
        put_u64(&mut out, self.smallest_snapshot);
        out.push(self.drop_deletions as u8);
        put_u64(&mut out, self.max_output_bytes);
        put_u32(&mut out, self.bits_per_key);
        put_u32(&mut out, self.range_lo.len() as u32);
        out.extend_from_slice(&self.range_lo);
        put_u32(&mut out, self.range_hi.len() as u32);
        out.extend_from_slice(&self.range_hi);
        put_u32(&mut out, self.inputs.len() as u32);
        for t in &self.inputs {
            put_u64(&mut out, t.offset);
            put_u64(&mut out, t.len);
        }
        out
    }

    /// Parse an argument buffer.
    pub fn decode(buf: &[u8]) -> Result<CompactArgs> {
        let fmt_b = *buf.first().ok_or_else(|| MemNodeError::BadMessage("empty args".into()))?;
        let bs = get_u32(buf, 1).map_err(bad)?;
        let format = match fmt_b {
            0 => TableFormat::ByteAddr,
            1 => TableFormat::Block(bs),
            _ => return Err(MemNodeError::BadMessage(format!("bad format byte {fmt_b}"))),
        };
        let smallest_snapshot = get_u64(buf, 5).map_err(bad)?;
        let drop_deletions = buf
            .get(13)
            .copied()
            .ok_or_else(|| MemNodeError::BadMessage("truncated args".into()))?
            != 0;
        let max_output_bytes = get_u64(buf, 14).map_err(bad)?;
        let bits_per_key = get_u32(buf, 22).map_err(bad)?;
        let mut off = 26;
        let lo_len = get_u32(buf, off).map_err(bad)? as usize;
        off += 4;
        let range_lo = buf
            .get(off..off + lo_len)
            .ok_or_else(|| MemNodeError::BadMessage("truncated range_lo".into()))?
            .to_vec();
        off += lo_len;
        let hi_len = get_u32(buf, off).map_err(bad)? as usize;
        off += 4;
        let range_hi = buf
            .get(off..off + hi_len)
            .ok_or_else(|| MemNodeError::BadMessage("truncated range_hi".into()))?
            .to_vec();
        off += hi_len;
        let count = get_u32(buf, off).map_err(bad)? as usize;
        off += 4;
        // Never trust a wire count for pre-allocation.
        let mut inputs = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let offset = get_u64(buf, off).map_err(bad)?;
            let len = get_u64(buf, off + 8).map_err(bad)?;
            inputs.push(InputTable { offset, len });
            off += 16;
        }
        Ok(CompactArgs {
            format,
            smallest_snapshot,
            drop_deletions,
            max_output_bytes,
            bits_per_key,
            range_lo,
            range_hi,
            inputs,
        })
    }
}

/// One output table produced by a compaction.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputTable {
    /// Extent of the new table image in the memory node's compaction zone.
    pub offset: u64,
    /// Data-image length (byte-addressable) or full table length (block).
    pub len: u64,
    /// Encoded [`dlsm_sstable::byte_addr::TableMeta`] for byte-addressable
    /// outputs; empty for block outputs (the compute node opens those by
    /// reading footer/index/filter remotely).
    pub meta: Vec<u8>,
}

/// Reply to a compaction RPC.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactReply {
    /// New tables, in key order.
    pub outputs: Vec<OutputTable>,
    /// Total input records merged.
    pub records_in: u64,
    /// Records surviving into outputs.
    pub records_out: u64,
}

impl CompactReply {
    /// Serialize into the requester's reply buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.records_in);
        put_u64(&mut out, self.records_out);
        put_u32(&mut out, self.outputs.len() as u32);
        for t in &self.outputs {
            put_u64(&mut out, t.offset);
            put_u64(&mut out, t.len);
            put_u32(&mut out, t.meta.len() as u32);
            out.extend_from_slice(&t.meta);
        }
        out
    }

    /// Parse a reply buffer.
    pub fn decode(buf: &[u8]) -> Result<CompactReply> {
        let records_in = get_u64(buf, 0).map_err(bad)?;
        let records_out = get_u64(buf, 8).map_err(bad)?;
        let count = get_u32(buf, 16).map_err(bad)? as usize;
        // Never trust a wire count for pre-allocation.
        let mut outputs = Vec::with_capacity(count.min(1024));
        let mut off = 20;
        for _ in 0..count {
            let offset = get_u64(buf, off).map_err(bad)?;
            let len = get_u64(buf, off + 8).map_err(bad)?;
            let meta_len = get_u32(buf, off + 16).map_err(bad)? as usize;
            off += 20;
            let meta = buf
                .get(off..off + meta_len)
                .ok_or_else(|| MemNodeError::BadMessage("truncated reply meta".into()))?
                .to_vec();
            off += meta_len;
            outputs.push(OutputTable { offset, len, meta });
        }
        Ok(CompactReply { outputs, records_in, records_out })
    }
}

/// Requests as parsed by the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Echo.
    Ping {
        /// The requester's polling buffer.
        reply: BufDesc,
        /// Bytes to echo back.
        payload: Vec<u8>,
    },
    /// Free extents in the memory node's zone.
    FreeBatch {
        /// The requester's polling buffer.
        reply: BufDesc,
        /// `(offset, len)` extents to free.
        extents: Vec<(u64, u64)>,
    },
    /// Near-data compaction.
    Compact {
        /// The requester's polling buffer (reply body destination).
        reply: BufDesc,
        /// Unique id echoed as the wake-up immediate.
        unique_id: u32,
        /// Descriptor of the serialized [`CompactArgs`] on the requester.
        args: BufDesc,
    },
    /// Two-sided region read (tmpfs-style).
    ReadFile {
        /// The requester's polling buffer.
        reply: BufDesc,
        /// Offset in the memory node's region.
        offset: u64,
        /// Bytes to read.
        len: u32,
    },
    /// Two-sided region write (tmpfs-style).
    WriteFile {
        /// The requester's polling buffer.
        reply: BufDesc,
        /// Offset in the memory node's region.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Abandon the compaction issued under request id `target`: the server
    /// frees its outputs (already produced or still to come) and forgets the
    /// cached reply.
    CancelCompact {
        /// The requester's polling buffer.
        reply: BufDesc,
        /// Request id of the compaction being abandoned.
        target: u64,
    },
}

impl Request {
    /// Serialize a request into a SEND payload under request id `req_id`.
    /// Retries of the same logical request must reuse the same id so the
    /// server can deduplicate.
    pub fn encode(&self, req_id: u64) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping { reply, payload } => {
                out.push(Op::Ping as u8);
                put_u64(&mut out, req_id);
                reply.encode(&mut out);
                out.extend_from_slice(payload);
            }
            Request::FreeBatch { reply, extents } => {
                out.push(Op::FreeBatch as u8);
                put_u64(&mut out, req_id);
                reply.encode(&mut out);
                put_u32(&mut out, extents.len() as u32);
                for &(o, l) in extents {
                    put_u64(&mut out, o);
                    put_u64(&mut out, l);
                }
            }
            Request::Compact { reply, unique_id, args } => {
                out.push(Op::Compact as u8);
                put_u64(&mut out, req_id);
                reply.encode(&mut out);
                put_u32(&mut out, *unique_id);
                args.encode(&mut out);
            }
            Request::ReadFile { reply, offset, len } => {
                out.push(Op::ReadFile as u8);
                put_u64(&mut out, req_id);
                reply.encode(&mut out);
                put_u64(&mut out, *offset);
                put_u32(&mut out, *len);
            }
            Request::WriteFile { reply, offset, data } => {
                out.push(Op::WriteFile as u8);
                put_u64(&mut out, req_id);
                reply.encode(&mut out);
                put_u64(&mut out, *offset);
                out.extend_from_slice(data);
            }
            Request::CancelCompact { reply, target } => {
                out.push(Op::CancelCompact as u8);
                put_u64(&mut out, req_id);
                reply.encode(&mut out);
                put_u64(&mut out, *target);
            }
        }
        out
    }

    /// Parse a SEND payload into `(req_id, request)`.
    pub fn decode(buf: &[u8]) -> Result<(u64, Request)> {
        let op = Op::from_u8(*buf.first().ok_or_else(|| MemNodeError::BadMessage("empty".into()))?)
            .ok_or_else(|| MemNodeError::BadMessage(format!("bad op {}", buf[0])))?;
        let req_id = get_u64(buf, 1).map_err(bad)?;
        let (reply, n) = BufDesc::decode(buf, 9)?;
        let body = 9 + n;
        let req = match op {
            Op::Ping => Request::Ping { reply, payload: buf[body..].to_vec() },
            Op::FreeBatch => {
                let count = get_u32(buf, body).map_err(bad)? as usize;
                let mut extents = Vec::with_capacity(count.min(1024));
                let mut off = body + 4;
                for _ in 0..count {
                    extents.push((get_u64(buf, off).map_err(bad)?, get_u64(buf, off + 8).map_err(bad)?));
                    off += 16;
                }
                Request::FreeBatch { reply, extents }
            }
            Op::Compact => {
                let unique_id = get_u32(buf, body).map_err(bad)?;
                let (args, _) = BufDesc::decode(buf, body + 4)?;
                Request::Compact { reply, unique_id, args }
            }
            Op::ReadFile => {
                let offset = get_u64(buf, body).map_err(bad)?;
                let len = get_u32(buf, body + 8).map_err(bad)?;
                Request::ReadFile { reply, offset, len }
            }
            Op::WriteFile => {
                let offset = get_u64(buf, body).map_err(bad)?;
                Request::WriteFile { reply, offset, data: buf[body + 8..].to_vec() }
            }
            Op::CancelCompact => {
                let target = get_u64(buf, body).map_err(bad)?;
                Request::CancelCompact { reply, target }
            }
        };
        Ok((req_id, req))
    }

    /// The reply-buffer descriptor attached to this request.
    pub fn reply_desc(&self) -> BufDesc {
        match self {
            Request::Ping { reply, .. }
            | Request::FreeBatch { reply, .. }
            | Request::Compact { reply, .. }
            | Request::ReadFile { reply, .. }
            | Request::WriteFile { reply, .. }
            | Request::CancelCompact { reply, .. } => *reply,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(i: u32) -> BufDesc {
        BufDesc { mr: i, offset: u64::from(i) * 7, rkey: i ^ 0xAA, len: 4096 }
    }

    #[test]
    fn requests_roundtrip() {
        let cases = vec![
            Request::Ping { reply: desc(1), payload: b"hello".to_vec() },
            Request::FreeBatch { reply: desc(2), extents: vec![(0, 64), (128, 4096)] },
            Request::Compact { reply: desc(3), unique_id: 77, args: desc(4) },
            Request::ReadFile { reply: desc(5), offset: 4096, len: 512 },
            Request::WriteFile { reply: desc(6), offset: 8192, data: vec![1, 2, 3] },
            Request::CancelCompact { reply: desc(7), target: 0xDEAD_BEEF },
        ];
        for (i, r) in cases.into_iter().enumerate() {
            let req_id = 1000 + i as u64;
            let enc = r.encode(req_id);
            assert_eq!(Request::decode(&enc).unwrap(), (req_id, r));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99, 0, 0]).is_err());
        let enc = Request::ReadFile { reply: desc(1), offset: 1, len: 2 }.encode(7);
        assert!(Request::decode(&enc[..enc.len() - 4]).is_err());
    }

    #[test]
    fn reply_frame_roundtrip_and_truncation() {
        let frame = ReplyFrame::encode(0xFEED_F00D, b"payload-bytes");
        let (id, payload) = ReplyFrame::decode(&frame).unwrap();
        assert_eq!(id, 0xFEED_F00D);
        assert_eq!(payload, b"payload-bytes");
        // Truncated header and truncated payload both error, never panic.
        assert!(ReplyFrame::decode(&frame[..3]).is_err());
        assert!(ReplyFrame::decode(&frame[..frame.len() - 1]).is_err());
        // Empty payloads are legal.
        let empty = ReplyFrame::encode(1, &[]);
        let (id, payload) = ReplyFrame::decode(&empty).unwrap();
        assert_eq!((id, payload.len()), (1, 0));
    }

    #[test]
    fn compact_args_roundtrip() {
        let args = CompactArgs {
            format: TableFormat::Block(8192),
            smallest_snapshot: 123_456,
            drop_deletions: true,
            max_output_bytes: 64 << 20,
            bits_per_key: 10,
            range_lo: b"aaa".to_vec(),
            range_hi: b"zzz".to_vec(),
            inputs: vec![InputTable { offset: 0, len: 100 }, InputTable { offset: 200, len: 300 }],
        };
        assert_eq!(CompactArgs::decode(&args.encode()).unwrap(), args);
        let args2 = CompactArgs { format: TableFormat::ByteAddr, inputs: vec![], range_lo: vec![], range_hi: vec![], ..args };
        assert_eq!(CompactArgs::decode(&args2.encode()).unwrap(), args2);
    }

    #[test]
    fn compact_reply_roundtrip() {
        let reply = CompactReply {
            outputs: vec![
                OutputTable { offset: 1024, len: 888, meta: vec![9; 33] },
                OutputTable { offset: 4096, len: 111, meta: vec![] },
            ],
            records_in: 1000,
            records_out: 900,
        };
        assert_eq!(CompactReply::decode(&reply.encode()).unwrap(), reply);
    }
}
