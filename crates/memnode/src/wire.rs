//! RPC wire formats (hand-rolled little-endian).
//!
//! Every request is a two-sided SEND whose payload starts with an opcode, a
//! **request id**, and the requester's **reply-buffer descriptor**
//! `(mr, offset, rkey, len)`; the responder answers with a one-sided WRITE
//! into that buffer, bypassing any dispatcher on the requester side (paper
//! Sec. X-D1). The compaction request additionally carries a unique id (the
//! wake-up immediate) and an **argument-buffer descriptor** that the
//! responder pulls with an RDMA read, keeping the SEND itself small
//! (Sec. X-D2).
//!
//! Request ids make the protocol safe to retry over a lossy fabric: a
//! client re-issues a timed-out request under the *same* id, and the server
//! deduplicates — non-idempotent ops (extent frees, compactions) execute at
//! most once, with the cached reply replayed for duplicates. Replies echo
//! the id in their frame ([`ReplyFrame`]) so a poller can tell a late,
//! stale reply from the one it is waiting for.

use dlsm_sstable::coding::{get_u32, get_u64, put_u32, put_u64};
use dlsm_sstable::key::SeqNo;
use dlsm_trace::TraceCtx;

use crate::{MemNodeError, Result};

/// Header version flag on the opcode byte: when set, sixteen extra bytes
/// — `[trace_id u64][span_id u64]` — follow the request id, carrying the
/// sender's tracing context so memory-node work appears as a child of the
/// compute-node span that caused it. Frames without the flag are the v1
/// format and decode unchanged (back-compat).
pub const TRACE_FLAG: u8 = 0x80;

/// RPC opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Echo the payload (liveness/latency probe).
    Ping = 1,
    /// Free a batch of extents in the memory node's compaction zone.
    FreeBatch = 2,
    /// Near-data compaction (customized RPC).
    Compact = 3,
    /// Two-sided read of region bytes (the Nova-LSM-style tmpfs path).
    ReadFile = 4,
    /// Two-sided write of region bytes (tmpfs path).
    WriteFile = 5,
    /// Abandon a compaction by its request id, freeing any outputs it
    /// produced (or will produce) on the memory node.
    CancelCompact = 6,
}

impl Op {
    /// Parse an opcode byte.
    pub fn from_u8(b: u8) -> Option<Op> {
        match b {
            1 => Some(Op::Ping),
            2 => Some(Op::FreeBatch),
            3 => Some(Op::Compact),
            4 => Some(Op::ReadFile),
            5 => Some(Op::WriteFile),
            6 => Some(Op::CancelCompact),
            _ => None,
        }
    }
}

/// Framing of every reply written one-sided into the requester's polling
/// buffer: `[payload len u32][req_id u64][payload]`, with the completion
/// flag word occupying the final 8 bytes of the buffer. The echoed request
/// id lets the poller reject frames left over from earlier, retried calls.
pub struct ReplyFrame;

impl ReplyFrame {
    /// Bytes before the payload.
    pub const HEADER: usize = 12;

    /// Frame `payload` for request `req_id`.
    pub fn encode(req_id: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::HEADER + payload.len());
        put_len32(&mut out, payload.len());
        put_u64(&mut out, req_id);
        out.extend_from_slice(payload);
        out
    }

    /// Parse a frame, returning `(req_id, payload)`.
    pub fn decode(buf: &[u8]) -> Result<(u64, &[u8])> {
        let len = get_u32(buf, 0).map_err(bad)? as usize;
        let req_id = get_u64(buf, 4).map_err(bad)?;
        let payload = buf
            .get(Self::HEADER..Self::HEADER + len)
            .ok_or_else(|| MemNodeError::BadMessage(format!("truncated reply frame ({len} byte payload)")))?;
        Ok((req_id, payload))
    }
}

/// A buffer descriptor `(mr, offset, rkey, len)` on some node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufDesc {
    /// Memory-region id on the owning node.
    pub mr: u32,
    /// Offset within the region.
    pub offset: u64,
    /// Remote-access key.
    pub rkey: u32,
    /// Buffer length in bytes.
    pub len: u32,
}

impl BufDesc {
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.mr);
        put_u64(out, self.offset);
        put_u32(out, self.rkey);
        put_u32(out, self.len);
    }

    pub(crate) fn decode(buf: &[u8], off: usize) -> Result<(BufDesc, usize)> {
        let mr = get_u32(buf, off).map_err(bad)?;
        let offset = get_u64(buf, off + 4).map_err(bad)?;
        let rkey = get_u32(buf, off + 12).map_err(bad)?;
        let len = get_u32(buf, off + 16).map_err(bad)?;
        Ok((BufDesc { mr, offset, rkey, len }, 20))
    }
}

fn bad(e: dlsm_sstable::SstError) -> MemNodeError {
    MemNodeError::BadMessage(e.to_string())
}

/// Encode a payload/collection length as the u32 the frame formats carry.
/// Panics instead of silently truncating: every length on the wire is
/// bounded far below 4 GiB (arena sizes, extent counts, key lengths), so an
/// overflow here is a logic bug, not an input condition.
fn put_len32(out: &mut Vec<u8>, len: usize) {
    // PANIC-SAFE: see above — a >4 GiB wire length is a logic bug; truncating
    // it silently would corrupt the frame for the peer.
    put_u32(out, u32::try_from(len).expect("wire length exceeds u32"));
}

/// Which table format a compaction reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableFormat {
    /// dLSM's byte-addressable format (Sec. VI).
    ByteAddr,
    /// Block-based format with the given block size (0 = one record per
    /// block) — used by the dLSM-Block ablation.
    Block(u32),
}

/// One input table for a compaction: its extent in the memory node's region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputTable {
    /// Offset of the table image in the region.
    pub offset: u64,
    /// Length of the table image.
    pub len: u64,
}

/// The (large) compaction argument, pulled by the responder via RDMA read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactArgs {
    /// Format of inputs and outputs.
    pub format: TableFormat,
    /// Snapshot horizon for version dropping.
    pub smallest_snapshot: SeqNo,
    /// True when compacting into the bottom-most level.
    pub drop_deletions: bool,
    /// Split outputs at roughly this many data bytes.
    pub max_output_bytes: u64,
    /// Bloom-filter budget for outputs.
    pub bits_per_key: u32,
    /// Inclusive lower user-key bound of this (sub-)compaction; empty =
    /// unbounded. Sub-compactions split one logical compaction into
    /// disjoint user-key ranges executed in parallel (paper Sec. V-A).
    pub range_lo: Vec<u8>,
    /// Exclusive upper user-key bound; empty = unbounded.
    pub range_hi: Vec<u8>,
    /// Input tables, already in merge order (L0 newest-first, then Ln+1).
    pub inputs: Vec<InputTable>,
}

impl CompactArgs {
    /// Serialize into the argument buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40 + self.inputs.len() * 16);
        let (fmt, bs) = match self.format {
            TableFormat::ByteAddr => (0u8, 0u32),
            TableFormat::Block(b) => (1u8, b),
        };
        out.push(fmt);
        put_u32(&mut out, bs);
        put_u64(&mut out, self.smallest_snapshot);
        out.push(u8::from(self.drop_deletions));
        put_u64(&mut out, self.max_output_bytes);
        put_u32(&mut out, self.bits_per_key);
        put_len32(&mut out, self.range_lo.len());
        out.extend_from_slice(&self.range_lo);
        put_len32(&mut out, self.range_hi.len());
        out.extend_from_slice(&self.range_hi);
        put_len32(&mut out, self.inputs.len());
        for t in &self.inputs {
            put_u64(&mut out, t.offset);
            put_u64(&mut out, t.len);
        }
        out
    }

    /// Parse an argument buffer.
    pub fn decode(buf: &[u8]) -> Result<CompactArgs> {
        let fmt_b = *buf.first().ok_or_else(|| MemNodeError::BadMessage("empty args".into()))?;
        let bs = get_u32(buf, 1).map_err(bad)?;
        let format = match fmt_b {
            0 => TableFormat::ByteAddr,
            1 => TableFormat::Block(bs),
            _ => return Err(MemNodeError::BadMessage(format!("bad format byte {fmt_b}"))),
        };
        let smallest_snapshot = get_u64(buf, 5).map_err(bad)?;
        let drop_deletions = buf
            .get(13)
            .copied()
            .ok_or_else(|| MemNodeError::BadMessage("truncated args".into()))?
            != 0;
        let max_output_bytes = get_u64(buf, 14).map_err(bad)?;
        let bits_per_key = get_u32(buf, 22).map_err(bad)?;
        let mut off = 26;
        let lo_len = get_u32(buf, off).map_err(bad)? as usize;
        off += 4;
        let range_lo = buf
            .get(off..off + lo_len)
            .ok_or_else(|| MemNodeError::BadMessage("truncated range_lo".into()))?
            .to_vec();
        off += lo_len;
        let hi_len = get_u32(buf, off).map_err(bad)? as usize;
        off += 4;
        let range_hi = buf
            .get(off..off + hi_len)
            .ok_or_else(|| MemNodeError::BadMessage("truncated range_hi".into()))?
            .to_vec();
        off += hi_len;
        let count = get_u32(buf, off).map_err(bad)? as usize;
        off += 4;
        // Never trust a wire count for pre-allocation.
        let mut inputs = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let offset = get_u64(buf, off).map_err(bad)?;
            let len = get_u64(buf, off + 8).map_err(bad)?;
            inputs.push(InputTable { offset, len });
            off += 16;
        }
        Ok(CompactArgs {
            format,
            smallest_snapshot,
            drop_deletions,
            max_output_bytes,
            bits_per_key,
            range_lo,
            range_hi,
            inputs,
        })
    }
}

/// One output table produced by a compaction.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputTable {
    /// Extent of the new table image in the memory node's compaction zone.
    pub offset: u64,
    /// Data-image length (byte-addressable) or full table length (block).
    pub len: u64,
    /// Encoded [`dlsm_sstable::byte_addr::TableMeta`] for byte-addressable
    /// outputs; empty for block outputs (the compute node opens those by
    /// reading footer/index/filter remotely).
    pub meta: Vec<u8>,
}

/// Reply to a compaction RPC.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactReply {
    /// New tables, in key order.
    pub outputs: Vec<OutputTable>,
    /// Total input records merged.
    pub records_in: u64,
    /// Records surviving into outputs.
    pub records_out: u64,
}

impl CompactReply {
    /// Serialize into the requester's reply buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.records_in);
        put_u64(&mut out, self.records_out);
        put_len32(&mut out, self.outputs.len());
        for t in &self.outputs {
            put_u64(&mut out, t.offset);
            put_u64(&mut out, t.len);
            put_len32(&mut out, t.meta.len());
            out.extend_from_slice(&t.meta);
        }
        out
    }

    /// Parse a reply buffer.
    pub fn decode(buf: &[u8]) -> Result<CompactReply> {
        let records_in = get_u64(buf, 0).map_err(bad)?;
        let records_out = get_u64(buf, 8).map_err(bad)?;
        let count = get_u32(buf, 16).map_err(bad)? as usize;
        // Never trust a wire count for pre-allocation.
        let mut outputs = Vec::with_capacity(count.min(1024));
        let mut off = 20;
        for _ in 0..count {
            let offset = get_u64(buf, off).map_err(bad)?;
            let len = get_u64(buf, off + 8).map_err(bad)?;
            let meta_len = get_u32(buf, off + 16).map_err(bad)? as usize;
            off += 20;
            let meta = buf
                .get(off..off + meta_len)
                .ok_or_else(|| MemNodeError::BadMessage("truncated reply meta".into()))?
                .to_vec();
            off += meta_len;
            outputs.push(OutputTable { offset, len, meta });
        }
        Ok(CompactReply { outputs, records_in, records_out })
    }
}

/// Requests as parsed by the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Echo.
    Ping {
        /// The requester's polling buffer.
        reply: BufDesc,
        /// Bytes to echo back.
        payload: Vec<u8>,
    },
    /// Free extents in the memory node's zone.
    FreeBatch {
        /// The requester's polling buffer.
        reply: BufDesc,
        /// `(offset, len)` extents to free.
        extents: Vec<(u64, u64)>,
    },
    /// Near-data compaction.
    Compact {
        /// The requester's polling buffer (reply body destination).
        reply: BufDesc,
        /// Unique id echoed as the wake-up immediate.
        unique_id: u32,
        /// Descriptor of the serialized [`CompactArgs`] on the requester.
        args: BufDesc,
    },
    /// Two-sided region read (tmpfs-style).
    ReadFile {
        /// The requester's polling buffer.
        reply: BufDesc,
        /// Offset in the memory node's region.
        offset: u64,
        /// Bytes to read.
        len: u32,
    },
    /// Two-sided region write (tmpfs-style).
    WriteFile {
        /// The requester's polling buffer.
        reply: BufDesc,
        /// Offset in the memory node's region.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Abandon the compaction issued under request id `target`: the server
    /// frees its outputs (already produced or still to come) and forgets the
    /// cached reply.
    CancelCompact {
        /// The requester's polling buffer.
        reply: BufDesc,
        /// Request id of the compaction being abandoned.
        target: u64,
    },
}

impl Request {
    /// Serialize a request into a SEND payload under request id `req_id`
    /// (v1 framing, no trace context). Retries of the same logical request
    /// must reuse the same id so the server can deduplicate.
    pub fn encode(&self, req_id: u64) -> Vec<u8> {
        self.encode_with_ctx(req_id, None)
    }

    /// Serialize under `req_id`, optionally attaching the sender's trace
    /// context (v2 framing, [`TRACE_FLAG`] on the op byte). With
    /// `ctx = None` the bytes are identical to the v1 [`encode`](Self::encode).
    pub fn encode_with_ctx(&self, req_id: u64, ctx: Option<TraceCtx>) -> Vec<u8> {
        let mut out = Vec::new();
        let flag = if ctx.is_some() { TRACE_FLAG } else { 0 };
        // LOSSY: Op discriminants are 1..=6, always below TRACE_FLAG (0x80).
        out.push(self.op() as u8 | flag);
        put_u64(&mut out, req_id);
        if let Some(c) = ctx {
            put_u64(&mut out, c.trace_id);
            put_u64(&mut out, c.span_id);
        }
        self.reply_desc().encode(&mut out);
        match self {
            Request::Ping { payload, .. } => {
                out.extend_from_slice(payload);
            }
            Request::FreeBatch { extents, .. } => {
                put_len32(&mut out, extents.len());
                for &(o, l) in extents {
                    put_u64(&mut out, o);
                    put_u64(&mut out, l);
                }
            }
            Request::Compact { unique_id, args, .. } => {
                put_u32(&mut out, *unique_id);
                args.encode(&mut out);
            }
            Request::ReadFile { offset, len, .. } => {
                put_u64(&mut out, *offset);
                put_u32(&mut out, *len);
            }
            Request::WriteFile { offset, data, .. } => {
                put_u64(&mut out, *offset);
                out.extend_from_slice(data);
            }
            Request::CancelCompact { target, .. } => {
                put_u64(&mut out, *target);
            }
        }
        out
    }

    /// This request's opcode.
    pub fn op(&self) -> Op {
        match self {
            Request::Ping { .. } => Op::Ping,
            Request::FreeBatch { .. } => Op::FreeBatch,
            Request::Compact { .. } => Op::Compact,
            Request::ReadFile { .. } => Op::ReadFile,
            Request::WriteFile { .. } => Op::WriteFile,
            Request::CancelCompact { .. } => Op::CancelCompact,
        }
    }

    /// Parse a SEND payload into `(req_id, request)`, dropping any trace
    /// context.
    pub fn decode(buf: &[u8]) -> Result<(u64, Request)> {
        let (req_id, _ctx, req) = Self::decode_with_ctx(buf)?;
        Ok((req_id, req))
    }

    /// Parse a SEND payload into `(req_id, trace context, request)`.
    /// Accepts both framings: v1 frames (no [`TRACE_FLAG`]) yield
    /// `ctx = None`.
    pub fn decode_with_ctx(buf: &[u8]) -> Result<(u64, Option<TraceCtx>, Request)> {
        let first = *buf.first().ok_or_else(|| MemNodeError::BadMessage("empty".into()))?;
        let op = Op::from_u8(first & !TRACE_FLAG)
            .ok_or_else(|| MemNodeError::BadMessage(format!("bad op {}", buf[0])))?;
        let req_id = get_u64(buf, 1).map_err(bad)?;
        let (ctx, header) = if first & TRACE_FLAG != 0 {
            let trace_id = get_u64(buf, 9).map_err(bad)?;
            let span_id = get_u64(buf, 17).map_err(bad)?;
            (Some(TraceCtx { trace_id, span_id }), 25)
        } else {
            (None, 9)
        };
        let (reply, n) = BufDesc::decode(buf, header)?;
        let body = header + n;
        let req = match op {
            Op::Ping => Request::Ping { reply, payload: buf[body..].to_vec() },
            Op::FreeBatch => {
                let count = get_u32(buf, body).map_err(bad)? as usize;
                let mut extents = Vec::with_capacity(count.min(1024));
                let mut off = body + 4;
                for _ in 0..count {
                    extents.push((get_u64(buf, off).map_err(bad)?, get_u64(buf, off + 8).map_err(bad)?));
                    off += 16;
                }
                Request::FreeBatch { reply, extents }
            }
            Op::Compact => {
                let unique_id = get_u32(buf, body).map_err(bad)?;
                let (args, _) = BufDesc::decode(buf, body + 4)?;
                Request::Compact { reply, unique_id, args }
            }
            Op::ReadFile => {
                let offset = get_u64(buf, body).map_err(bad)?;
                let len = get_u32(buf, body + 8).map_err(bad)?;
                Request::ReadFile { reply, offset, len }
            }
            Op::WriteFile => {
                let offset = get_u64(buf, body).map_err(bad)?;
                Request::WriteFile { reply, offset, data: buf[body + 8..].to_vec() }
            }
            Op::CancelCompact => {
                let target = get_u64(buf, body).map_err(bad)?;
                Request::CancelCompact { reply, target }
            }
        };
        Ok((req_id, ctx, req))
    }

    /// The reply-buffer descriptor attached to this request.
    pub fn reply_desc(&self) -> BufDesc {
        match self {
            Request::Ping { reply, .. }
            | Request::FreeBatch { reply, .. }
            | Request::Compact { reply, .. }
            | Request::ReadFile { reply, .. }
            | Request::WriteFile { reply, .. }
            | Request::CancelCompact { reply, .. } => *reply,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(i: u32) -> BufDesc {
        BufDesc { mr: i, offset: u64::from(i) * 7, rkey: i ^ 0xAA, len: 4096 }
    }

    #[test]
    fn requests_roundtrip() {
        let cases = vec![
            Request::Ping { reply: desc(1), payload: b"hello".to_vec() },
            Request::FreeBatch { reply: desc(2), extents: vec![(0, 64), (128, 4096)] },
            Request::Compact { reply: desc(3), unique_id: 77, args: desc(4) },
            Request::ReadFile { reply: desc(5), offset: 4096, len: 512 },
            Request::WriteFile { reply: desc(6), offset: 8192, data: vec![1, 2, 3] },
            Request::CancelCompact { reply: desc(7), target: 0xDEAD_BEEF },
        ];
        for (i, r) in cases.into_iter().enumerate() {
            let req_id = 1000 + i as u64;
            let enc = r.encode(req_id);
            assert_eq!(Request::decode(&enc).unwrap(), (req_id, r));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99, 0, 0]).is_err());
        let enc = Request::ReadFile { reply: desc(1), offset: 1, len: 2 }.encode(7);
        assert!(Request::decode(&enc[..enc.len() - 4]).is_err());
        // A trace flag does not launder an unknown opcode.
        assert!(Request::decode(&[TRACE_FLAG | 9, 0, 0]).is_err());
    }

    /// Header version bump: v1 frames (no trace flag) must keep decoding —
    /// old encoders against a new server — and the v2 framing must carry
    /// the context through unchanged.
    #[test]
    fn trace_ctx_header_both_encodings() {
        let ctx = TraceCtx { trace_id: 0x1122_3344_5566_7788, span_id: 0x99AA_BBCC_DDEE_FF00 };
        let cases = vec![
            Request::Ping { reply: desc(1), payload: b"hello".to_vec() },
            Request::FreeBatch { reply: desc(2), extents: vec![(0, 64), (128, 4096)] },
            Request::Compact { reply: desc(3), unique_id: 77, args: desc(4) },
            Request::ReadFile { reply: desc(5), offset: 4096, len: 512 },
            Request::WriteFile { reply: desc(6), offset: 8192, data: vec![1, 2, 3] },
            Request::CancelCompact { reply: desc(7), target: 0xDEAD_BEEF },
        ];
        for (i, r) in cases.into_iter().enumerate() {
            let req_id = 2000 + i as u64;
            // v1 (old format): no flag byte, context decodes as None.
            let v1 = r.encode(req_id);
            assert_eq!(v1[0] & TRACE_FLAG, 0, "v1 frame must not carry the flag");
            assert_eq!(v1, r.encode_with_ctx(req_id, None), "encode must stay v1-identical");
            assert_eq!(Request::decode_with_ctx(&v1).unwrap(), (req_id, None, r.clone()));
            // v2: flag set, 16 extra header bytes, context round-trips.
            let v2 = r.encode_with_ctx(req_id, Some(ctx));
            assert_eq!(v2[0], v1[0] | TRACE_FLAG);
            assert_eq!(v2.len(), v1.len() + 16);
            assert_eq!(Request::decode_with_ctx(&v2).unwrap(), (req_id, Some(ctx), r.clone()));
            // The ctx-blind decoder still accepts v2 frames.
            assert_eq!(Request::decode(&v2).unwrap(), (req_id, r));
        }
    }

    #[test]
    fn trace_ctx_truncated_header_rejected() {
        let r = Request::ReadFile { reply: desc(1), offset: 1, len: 2 };
        let v2 = r.encode_with_ctx(7, Some(TraceCtx { trace_id: 1, span_id: 2 }));
        // Chop inside the 16-byte context extension: must error, not panic.
        assert!(Request::decode_with_ctx(&v2[..20]).is_err());
    }

    #[test]
    fn reply_frame_roundtrip_and_truncation() {
        let frame = ReplyFrame::encode(0xFEED_F00D, b"payload-bytes");
        let (id, payload) = ReplyFrame::decode(&frame).unwrap();
        assert_eq!(id, 0xFEED_F00D);
        assert_eq!(payload, b"payload-bytes");
        // Truncated header and truncated payload both error, never panic.
        assert!(ReplyFrame::decode(&frame[..3]).is_err());
        assert!(ReplyFrame::decode(&frame[..frame.len() - 1]).is_err());
        // Empty payloads are legal.
        let empty = ReplyFrame::encode(1, &[]);
        let (id, payload) = ReplyFrame::decode(&empty).unwrap();
        assert_eq!((id, payload.len()), (1, 0));
    }

    #[test]
    fn compact_args_roundtrip() {
        let args = CompactArgs {
            format: TableFormat::Block(8192),
            smallest_snapshot: 123_456,
            drop_deletions: true,
            max_output_bytes: 64 << 20,
            bits_per_key: 10,
            range_lo: b"aaa".to_vec(),
            range_hi: b"zzz".to_vec(),
            inputs: vec![InputTable { offset: 0, len: 100 }, InputTable { offset: 200, len: 300 }],
        };
        assert_eq!(CompactArgs::decode(&args.encode()).unwrap(), args);
        let args2 = CompactArgs { format: TableFormat::ByteAddr, inputs: vec![], range_lo: vec![], range_hi: vec![], ..args };
        assert_eq!(CompactArgs::decode(&args2.encode()).unwrap(), args2);
    }

    #[test]
    fn compact_reply_roundtrip() {
        let reply = CompactReply {
            outputs: vec![
                OutputTable { offset: 1024, len: 888, meta: vec![9; 33] },
                OutputTable { offset: 4096, len: 111, meta: vec![] },
            ],
            records_in: 1000,
            records_out: 900,
        };
        assert_eq!(CompactReply::decode(&reply.encode()).unwrap(), reply);
    }
}
