//! The memory-node server: dispatcher, compaction workers, GC, statistics.
//!
//! One [`MemServer`] owns a node on the fabric, a single large registered
//! region (paper Sec. X-B: register once, sub-allocate in user space) split
//! into the compute-controlled **flush zone** and the server-controlled
//! **compaction zone**, and two thread pools:
//!
//! * **dispatchers** drain the node's inbox and answer general-purpose RPCs
//!   inline, writing replies one-sided into the requester's polling buffer
//!   so the reply path bypasses any requester-side dispatcher (Sec. X-D1);
//! * **compaction workers** (the remote-CPU-core budget of Fig. 12) pull
//!   compaction jobs from a queue, RDMA-read the argument from the
//!   requester, run the merge against local DRAM, and reply with a
//!   WRITE-with-IMMEDIATE that wakes the sleeping requester (Sec. X-D2).
//!
//! Because clients retry timed-out calls, every request carries a request
//! id and the server keeps a per-client [`DedupMap`]: a duplicate of an
//! in-flight request is dropped, a duplicate of a completed request replays
//! the cached reply without re-executing (at-most-once execution for
//! non-idempotent ops like `FreeBatch` and `Compact`), and a
//! `CancelCompact` reclaims the outputs of a compaction whose requester
//! gave up — so a lost RPC can never leak a compaction-zone extent.
//!
//! [`MemServer::crash`] / [`MemServer::restart`] model a memory-node
//! failure: threads stop and in-flight messages are lost, but the
//! registered region — the disaggregated DRAM itself — survives, as do the
//! allocator and dedup window backed by it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rdma_sim::{Fabric, MemoryRegion, Node, NodeId, QueuePair};

use crate::alloc::RegionAllocator;
use crate::compactor::execute_compaction;
use crate::wire::{BufDesc, CompactArgs, ReplyFrame, Request};
use crate::{MemNodeError, Result};

/// How long the server waits for one of its own reply-path completions.
/// Legitimate completions arrive in microseconds in the simulator; a
/// dropped completion should stall a dispatcher briefly, not for the
/// client-visible timeout (the client's retry recovers the reply anyway).
const REPLY_POLL: Duration = Duration::from_millis(500);

/// How long a compaction worker waits for the RDMA read of a job's argument
/// block. Bounded so a blackholed fabric (crash window) cannot pin a worker
/// for long while `crash()` drains the job queue; the requester's retry or
/// `CancelCompact` handles the failed job.
const ARG_READ_POLL: Duration = Duration::from_secs(1);

/// Configuration for one memory node.
#[derive(Debug, Clone)]
pub struct MemServerConfig {
    /// Total registered region size in bytes.
    pub region_size: usize,
    /// Prefix of the region whose allocation the *compute node* controls
    /// (MemTable flush targets). The remainder is the compaction zone.
    pub flush_zone: u64,
    /// Remote CPU cores devoted to near-data compaction (Fig. 12 knob).
    pub compaction_workers: usize,
    /// Dispatcher threads draining the RPC inbox.
    pub dispatchers: usize,
}

impl Default for MemServerConfig {
    fn default() -> Self {
        MemServerConfig {
            region_size: 256 << 20,
            flush_zone: 96 << 20,
            compaction_workers: 4,
            dispatchers: 1,
        }
    }
}

/// Counters exported by a [`MemServer`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Nanoseconds compaction workers spent executing merges.
    pub busy_nanos: AtomicU64,
    /// Compactions completed.
    pub compactions: AtomicU64,
    /// Records read by compactions.
    pub records_in: AtomicU64,
    /// Records written by compactions.
    pub records_out: AtomicU64,
    /// Extents freed via the GC RPC.
    pub freed_extents: AtomicU64,
    /// General-purpose RPCs served.
    pub rpcs: AtomicU64,
    /// Compactions that failed (error status replied).
    pub failures: AtomicU64,
    /// Cached replies re-delivered for retried requests.
    pub replays: AtomicU64,
    /// Duplicate requests dropped because the original is still running.
    pub dup_dropped: AtomicU64,
    /// Compactions canceled (outputs reclaimed) via `CancelCompact`.
    pub canceled: AtomicU64,
    /// Times the server was restarted after a crash.
    pub restarts: AtomicU64,
    /// Service time of general RPCs handled inline by a dispatcher
    /// (decode + dedup + execute + reply delivery), nanoseconds.
    pub dispatch: dlsm_telemetry::Histogram,
    /// Wall time per near-data compaction merge (`execute_compaction`),
    /// nanoseconds — the histogram twin of `busy_nanos`.
    pub merge: dlsm_telemetry::Histogram,
}

impl ServerStats {
    /// Average remote CPU utilization over `wall` given `workers` cores,
    /// measured from a `busy_nanos` delta.
    pub fn utilization(busy_delta_nanos: u64, workers: usize, wall: Duration) -> f64 {
        if wall.is_zero() || workers == 0 {
            return 0.0;
        }
        busy_delta_nanos as f64 / (workers as f64 * wall.as_nanos() as f64)
    }
}

/// A reply the server remembers so a retried request can be answered
/// without re-executing.
#[derive(Debug, Clone)]
pub struct CachedReply {
    /// The framed payload as delivered (for compactions this includes the
    /// leading status byte).
    pub payload: Vec<u8>,
    /// Compaction-zone extents owned by this reply's outputs; freed if the
    /// request is canceled instead of acknowledged.
    pub extents: Vec<(u64, u64)>,
    /// Whether the reply is delivered compaction-style (WRITE-with-IMM).
    pub compact: bool,
}

enum Entry {
    /// Executing right now (or queued for a worker).
    InFlight,
    /// The requester gave up; if the request (or its result) shows up,
    /// drop it and reclaim any outputs.
    Canceled,
    /// Finished; reply cached for replay.
    Done(CachedReply),
}

#[derive(Default)]
struct ClientWindow {
    entries: HashMap<u64, Entry>,
    max_seen: u64,
}

/// What the dispatcher should do with an arriving request.
pub enum DedupDecision {
    /// First sighting: execute it.
    Execute,
    /// Duplicate of a request still executing (or canceled): drop it.
    InFlight,
    /// Duplicate of a completed request: re-deliver the cached reply.
    Replay(CachedReply),
}

/// Per-client at-most-once window keyed by `(client node, request id)`.
///
/// Completed and canceled entries older than `window` ids behind the
/// newest are pruned; in-flight entries are never pruned (a slow
/// compaction must not lose its entry and run twice).
pub struct DedupMap {
    window: u64,
    clients: Mutex<HashMap<NodeId, ClientWindow>>,
}

impl DedupMap {
    /// Create a map remembering roughly `window` recent requests per client.
    pub fn new(window: u64) -> DedupMap {
        DedupMap { window: window.max(1), clients: Mutex::new(HashMap::new()) }
    }

    /// Record the arrival of `(client, req_id)` and decide how to handle it.
    pub fn begin(&self, client: NodeId, req_id: u64) -> DedupDecision {
        let mut clients = self.clients.lock();
        let win = clients.entry(client).or_default();
        match win.entries.get(&req_id) {
            Some(Entry::InFlight) | Some(Entry::Canceled) => DedupDecision::InFlight,
            Some(Entry::Done(r)) => DedupDecision::Replay(r.clone()),
            None => {
                win.entries.insert(req_id, Entry::InFlight);
                win.max_seen = win.max_seen.max(req_id);
                let (window, max_seen) = (self.window, win.max_seen);
                win.entries.retain(|id, e| {
                    matches!(e, Entry::InFlight) || id.saturating_add(window) >= max_seen
                });
                DedupDecision::Execute
            }
        }
    }

    /// Record a successful execution. Returns `false` if the request was
    /// canceled while executing — the caller must free `reply.extents` and
    /// must not deliver the reply.
    pub fn complete(&self, client: NodeId, req_id: u64, reply: CachedReply) -> bool {
        let mut clients = self.clients.lock();
        let win = clients.entry(client).or_default();
        match win.entries.get(&req_id) {
            Some(Entry::Canceled) => false,
            _ => {
                win.entries.insert(req_id, Entry::Done(reply));
                true
            }
        }
    }

    /// Record a failed execution. The entry is removed so a retry
    /// re-executes (errors are never cached).
    pub fn abort(&self, client: NodeId, req_id: u64) {
        let mut clients = self.clients.lock();
        if let Some(win) = clients.get_mut(&client) {
            if matches!(win.entries.get(&req_id), Some(Entry::InFlight)) {
                win.entries.remove(&req_id);
            }
        }
    }

    /// Cancel `(client, target)`. If the request already completed, its
    /// cached reply is returned so the caller can free the extents it owns;
    /// in every case a tombstone remains so the request can never execute
    /// (or deliver) later.
    pub fn cancel(&self, client: NodeId, target: u64) -> Option<CachedReply> {
        let mut clients = self.clients.lock();
        let win = clients.entry(client).or_default();
        win.max_seen = win.max_seen.max(target);
        match win.entries.insert(target, Entry::Canceled) {
            Some(Entry::Done(r)) => Some(r),
            _ => None,
        }
    }

    /// Drop all in-flight entries (crash recovery: the work they tracked
    /// died with the server's threads, so retries must re-execute).
    pub fn sweep_in_flight(&self) {
        let mut clients = self.clients.lock();
        for win in clients.values_mut() {
            win.entries.retain(|_, e| !matches!(e, Entry::InFlight));
        }
    }

    /// Total remembered entries across all client windows (in-flight,
    /// canceled, and cached replies) — the dedup-state footprint gauge.
    pub fn len(&self) -> usize {
        self.clients.lock().values().map(|w| w.entries.len()).sum()
    }

    /// True when no client window remembers anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct CompactJob {
    src: NodeId,
    req_id: u64,
    reply: BufDesc,
    unique_id: u32,
    args: BufDesc,
    /// Requester's trace context (wire header v2), if it sent one.
    trace: Option<dlsm_trace::TraceCtx>,
}

/// A running memory node.
pub struct MemServer {
    fabric: Arc<Fabric>,
    node: Arc<Node>,
    region: Arc<MemoryRegion>,
    cfg: MemServerConfig,
    allocator: Arc<RegionAllocator>,
    stats: Arc<ServerStats>,
    dedup: Arc<DedupMap>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    crashed: bool,
}

#[allow(clippy::too_many_arguments)]
fn spawn_threads(
    fabric: &Arc<Fabric>,
    node: &Arc<Node>,
    region: &Arc<MemoryRegion>,
    allocator: &Arc<RegionAllocator>,
    stats: &Arc<ServerStats>,
    dedup: &Arc<DedupMap>,
    stop: &Arc<AtomicBool>,
    cfg: &MemServerConfig,
) -> Vec<std::thread::JoinHandle<()>> {
    let (tx, rx) = unbounded::<CompactJob>();
    let mut threads = Vec::new();
    for _ in 0..cfg.dispatchers.max(1) {
        let ctx = DispatchCtx {
            fabric: Arc::clone(fabric),
            node: Arc::clone(node),
            region: Arc::clone(region),
            allocator: Arc::clone(allocator),
            stats: Arc::clone(stats),
            dedup: Arc::clone(dedup),
            stop: Arc::clone(stop),
            compact_tx: tx.clone(),
        };
        threads.push(std::thread::spawn(move || dispatcher_loop(ctx)));
    }
    drop(tx);
    for _ in 0..cfg.compaction_workers.max(1) {
        let ctx = WorkerCtx {
            fabric: Arc::clone(fabric),
            node_id: node.id(),
            region: Arc::clone(region),
            allocator: Arc::clone(allocator),
            stats: Arc::clone(stats),
            dedup: Arc::clone(dedup),
            rx: rx.clone(),
        };
        threads.push(std::thread::spawn(move || worker_loop(ctx)));
    }
    drop(rx);
    threads
}

impl MemServer {
    /// Create a node on `fabric`, register its region, and start dispatcher
    /// and worker threads.
    pub fn start(fabric: &Arc<Fabric>, cfg: MemServerConfig) -> MemServer {
        assert!(cfg.flush_zone <= cfg.region_size as u64, "flush zone exceeds region");
        let node = fabric.add_node();
        let region = node.register_region(cfg.region_size);
        let allocator = Arc::new(RegionAllocator::new(
            cfg.flush_zone,
            cfg.region_size as u64 - cfg.flush_zone,
        ));
        let stats = Arc::new(ServerStats::default());
        let dedup = Arc::new(DedupMap::new(1024));
        let stop = Arc::new(AtomicBool::new(false));
        let threads =
            spawn_threads(fabric, &node, &region, &allocator, &stats, &dedup, &stop, &cfg);
        MemServer {
            fabric: Arc::clone(fabric),
            node,
            region,
            cfg,
            allocator,
            stats,
            dedup,
            stop,
            threads,
            crashed: false,
        }
    }

    /// This server's node id (RPC target for clients).
    pub fn node_id(&self) -> NodeId {
        self.node.id()
    }

    /// The server's registered region (clients address SSTables within it).
    pub fn region(&self) -> &Arc<MemoryRegion> {
        &self.region
    }

    /// Length of the compute-controlled flush zone.
    pub fn flush_zone(&self) -> u64 {
        self.cfg.flush_zone
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &MemServerConfig {
        &self.cfg
    }

    /// Server-side counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// A point-in-time telemetry snapshot: dispatch/merge latency
    /// histograms plus every counter, all under a `server_` prefix so the
    /// snapshot can be merged with compute-side ones without collisions.
    pub fn telemetry_snapshot(&self) -> dlsm_telemetry::TelemetrySnapshot {
        let st = &self.stats;
        let mut s = dlsm_telemetry::TelemetrySnapshot::new();
        s.set_breakdown("server_dispatch", st.dispatch.snapshot());
        s.set_breakdown("server_compact_merge", st.merge.snapshot());
        for (name, counter) in [
            ("server_busy_nanos", &st.busy_nanos),
            ("server_compactions", &st.compactions),
            ("server_records_in", &st.records_in),
            ("server_records_out", &st.records_out),
            ("server_freed_extents", &st.freed_extents),
            ("server_rpcs", &st.rpcs),
            ("server_failures", &st.failures),
            ("server_replays", &st.replays),
            ("server_dup_dropped", &st.dup_dropped),
            ("server_canceled", &st.canceled),
            ("server_restarts", &st.restarts),
        ] {
            // ORDERING: relaxed — stats-report read of a monotonic counter.
            s.set_counter(name, counter.load(Ordering::Relaxed));
        }
        s
    }

    /// The at-most-once request window.
    pub fn dedup(&self) -> &Arc<DedupMap> {
        &self.dedup
    }

    /// Register this server's live state with a metrics registry: region
    /// utilization split CN-controlled (flush zone) vs MN-controlled
    /// (compaction zone), dedup-window footprint, and every `server_*`
    /// counter and latency histogram, all labeled with the node id.
    ///
    /// The collector captures `Arc`s of the allocator/stats/dedup state,
    /// which [`MemServer::crash`]/[`MemServer::restart`] preserve — so a
    /// registered collector stays accurate across a crash cycle.
    pub fn register_metrics(&self, reg: &dlsm_metrics::MetricsRegistry) {
        let node = self.node.id().0.to_string();
        let allocator = Arc::clone(&self.allocator);
        let stats = Arc::clone(&self.stats);
        let dedup = Arc::clone(&self.dedup);
        let region_size = self.cfg.region_size as u64;
        let flush_zone = self.cfg.flush_zone;
        reg.register(move |out: &mut dlsm_metrics::Sample| {
            let labels: &[(&'static str, &str)] = &[("node", node.as_str())];
            out.gauge_with("memnode_region_bytes", labels, region_size as f64);
            // CN-controlled zone: capacity only — the *used* figure lives on
            // the compute node (its window's RegionAllocator), exported as
            // dlsm_flush_zone_used_bytes by Db collectors.
            out.gauge_with("memnode_flush_zone_bytes", labels, flush_zone as f64);
            out.gauge_with(
                "memnode_compaction_zone_used_bytes",
                labels,
                allocator.in_use() as f64,
            );
            out.gauge_with(
                "memnode_compaction_zone_capacity_bytes",
                labels,
                allocator.capacity() as f64,
            );
            out.gauge_with(
                "memnode_compaction_zone_fragments",
                labels,
                allocator.fragments() as f64,
            );
            out.gauge_with("memnode_dedup_entries", labels, dedup.len() as f64);

            for (name, counter) in [
                ("memnode_server_busy_nanos", &stats.busy_nanos),
                ("memnode_server_compactions", &stats.compactions),
                ("memnode_server_records_in", &stats.records_in),
                ("memnode_server_records_out", &stats.records_out),
                ("memnode_server_freed_extents", &stats.freed_extents),
                ("memnode_server_rpcs", &stats.rpcs),
                ("memnode_server_failures", &stats.failures),
                ("memnode_server_replays", &stats.replays),
                ("memnode_server_dup_dropped", &stats.dup_dropped),
                ("memnode_server_canceled", &stats.canceled),
                ("memnode_server_restarts", &stats.restarts),
            ] {
                // ORDERING: relaxed — Prometheus-export read of a monotonic counter.
                out.counter_with(name, labels, counter.load(Ordering::Relaxed));
            }
            for (stage, h) in [
                ("server_dispatch", stats.dispatch.snapshot()),
                ("server_compact_merge", stats.merge.snapshot()),
            ] {
                out.hist_with(
                    "memnode_breakdown_latency_ns",
                    &[("node", node.as_str()), ("stage", stage)],
                    h,
                );
            }
        });
    }

    /// Serve a Prometheus scrape of this server's metrics on `addr` (pass
    /// port 0 for an ephemeral port; read it back from the returned
    /// server's `local_addr()`).
    pub fn serve_metrics(
        &self,
        addr: &str,
        sample_period: Option<Duration>,
    ) -> std::io::Result<dlsm_metrics::MetricsServer> {
        let reg = dlsm_metrics::MetricsRegistry::new();
        self.register_metrics(&reg);
        dlsm_metrics::serve(reg, addr, sample_period)
    }

    /// Bytes in use in the compaction zone.
    pub fn compaction_zone_in_use(&self) -> u64 {
        self.allocator.in_use()
    }

    /// The fabric this server is attached to.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Whether the server is currently crashed (threads stopped).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Crash the memory node's *service*: stop every thread. Queued
    /// compactions drain first (thread-level stop is graceful); the
    /// abruptness of a real failure is modeled at the fabric level by
    /// blackholing the node with a
    /// [`rdma_sim::ChaosPlan::crash_window`]. The registered region — the
    /// disaggregated DRAM — and the allocator/dedup state backed by it
    /// survive for [`MemServer::restart`].
    pub fn crash(&mut self) {
        if self.crashed {
            return;
        }
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Anything the threads were tracking died with them; retried
        // requests must re-execute rather than wait forever.
        self.dedup.sweep_in_flight();
        self.crashed = true;
    }

    /// Restart after [`MemServer::crash`]: messages that arrived while the
    /// node was down are lost (clients retry), then fresh dispatcher and
    /// worker threads come up over the preserved region.
    pub fn restart(&mut self) {
        if !self.crashed {
            return;
        }
        while self.node.recv(Duration::ZERO).is_ok() {}
        while self.node.recv_imm(Duration::ZERO).is_ok() {}
        self.stop = Arc::new(AtomicBool::new(false));
        self.threads = spawn_threads(
            &self.fabric,
            &self.node,
            &self.region,
            &self.allocator,
            &self.stats,
            &self.dedup,
            &self.stop,
            &self.cfg,
        );
        // ORDERING: relaxed — restart counter; reporting only.
        self.stats.restarts.fetch_add(1, Ordering::Relaxed);
        self.crashed = false;
    }

    /// Stop all threads and wait for them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for MemServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

struct DispatchCtx {
    fabric: Arc<Fabric>,
    node: Arc<Node>,
    region: Arc<MemoryRegion>,
    allocator: Arc<RegionAllocator>,
    stats: Arc<ServerStats>,
    dedup: Arc<DedupMap>,
    stop: Arc<AtomicBool>,
    compact_tx: Sender<CompactJob>,
}

/// Write a [`ReplyFrame`] into the requester's reply buffer, then bump the
/// completion flag (the last word of the buffer) with a remote atomic.
///
/// The payload write is awaited *before* the flag is raised so a poller can
/// never observe the flag without the payload (in the simulator, payload
/// bytes land at post time but the flag is only bumped after the payload's
/// completion deadline has passed — mirroring real RDMA's in-order delivery
/// within a queue pair).
fn reply_general(
    qp: &mut QueuePair,
    reply: &BufDesc,
    region_of: &Arc<Node>,
    req_id: u64,
    payload: &[u8],
) -> Result<()> {
    let target = region_of.region(rdma_sim::MrId(reply.mr))?;
    let base = target.addr(reply.offset);
    // rkey comes from the descriptor, not the region lookup: enforce it.
    let base = rdma_sim::RemoteAddr { rkey: reply.rkey, ..base };
    if payload.len() + ReplyFrame::HEADER + 8 > reply.len as usize {
        return Err(MemNodeError::BadMessage(format!(
            "reply of {} bytes exceeds reply buffer of {}",
            payload.len(),
            reply.len
        )));
    }
    let framed = ReplyFrame::encode(req_id, payload);
    qp.post_write(&framed, base, 1)?;
    // Await the payload before raising the flag.
    qp.poll_one_blocking(REPLY_POLL)?;
    let flag_addr = base.add(u64::from(reply.len) - 8);
    qp.fetch_add(flag_addr, 1)?;
    Ok(())
}

/// Deliver a compaction-style reply: frame one-sided into the requester's
/// reply buffer, then WRITE-with-IMMEDIATE carrying `unique_id` to wake
/// the sleeping requester. `body` is `[status u8][payload]`.
#[allow(clippy::too_many_arguments)]
fn deliver_compact_reply(
    fabric: &Arc<Fabric>,
    local: NodeId,
    qps: &mut HashMap<NodeId, QueuePair>,
    src: NodeId,
    req_id: u64,
    reply: &BufDesc,
    unique_id: u32,
    body: &[u8],
) -> Result<()> {
    let qp = qp_for(fabric, local, src, qps)?;
    let requester = fabric.node(src)?;
    let target = requester.region(rdma_sim::MrId(reply.mr))?;
    let base = rdma_sim::RemoteAddr { rkey: reply.rkey, ..target.addr(reply.offset) };
    if body.len() + ReplyFrame::HEADER + 8 > reply.len as usize {
        return Err(MemNodeError::BadMessage("compaction reply too large".into()));
    }
    let framed = ReplyFrame::encode(req_id, body);
    qp.post_write(&framed, base, 1)?;
    qp.poll_one_blocking(REPLY_POLL)?;
    // The immediate wakes the requester; the written word is unused.
    let flag_addr = base.add(u64::from(reply.len) - 8);
    qp.post_write_imm(&1u64.to_le_bytes(), flag_addr, unique_id, 2)?;
    qp.poll_one_blocking(REPLY_POLL)?;
    Ok(())
}

fn dispatcher_loop(ctx: DispatchCtx) {
    dlsm_trace::set_thread_node(u64::from(ctx.node.id().0) + 1, "memnode");
    // Profiler task root: idle recv waits attribute to the dispatcher.
    let _task = dlsm_trace::profile_span("memnode_dispatcher");
    let mut qps: HashMap<NodeId, QueuePair> = HashMap::new();
    while !ctx.stop.load(Ordering::Acquire) {
        let msg = match ctx.node.recv(Duration::from_millis(20)) {
            Ok(m) => m,
            Err(_) => continue,
        };
        // ORDERING: relaxed — RPC stats counter; reporting only.
        ctx.stats.rpcs.fetch_add(1, Ordering::Relaxed);
        let (req_id, trace, req) = match Request::decode_with_ctx(&msg.payload) {
            Ok(r) => r,
            Err(_) => continue, // malformed: drop (client times out)
        };
        let src = msg.src;
        match ctx.dedup.begin(src, req_id) {
            DedupDecision::Execute => {}
            DedupDecision::InFlight => {
                // ORDERING: relaxed — dedup/replay counters; reporting only.
                ctx.stats.dup_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            DedupDecision::Replay(cached) => {
                // ORDERING: relaxed — dedup/replay counters; reporting only.
                ctx.stats.replays.fetch_add(1, Ordering::Relaxed);
                // Re-deliver into *this* request's reply buffer (the
                // retrying client may have reconnected).
                let reply = req.reply_desc();
                let result = if cached.compact {
                    let unique_id = match req {
                        Request::Compact { unique_id, .. } => unique_id,
                        _ => 0,
                    };
                    deliver_compact_reply(
                        &ctx.fabric,
                        ctx.node.id(),
                        &mut qps,
                        src,
                        req_id,
                        &reply,
                        unique_id,
                        &cached.payload,
                    )
                } else {
                    (|| {
                        let requester = ctx.fabric.node(src)?;
                        let qp = qp_for(&ctx.fabric, ctx.node.id(), src, &mut qps)?;
                        reply_general(qp, &reply, &requester, req_id, &cached.payload)
                    })()
                };
                if let Err(e) = result {
                    eprintln!("memnode: replay delivery failed: {e}");
                    // ORDERING: relaxed — failure counter; reporting only.
                    ctx.stats.failures.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
        }
        // Compactions are long-running: hand to the core-budgeted worker
        // pool (the dedup entry stays in-flight until the worker finishes).
        if let Request::Compact { reply, unique_id, args } = req {
            let _ = ctx.compact_tx.send(CompactJob { src, req_id, reply, unique_id, args, trace });
            continue;
        }
        // Server-side dispatch span: a child of the compute-node RPC span
        // that sent this request (when the v2 header carried its context).
        let _sp = match trace {
            Some(c) => dlsm_trace::span_child_of(dlsm_trace::Category::Server, "server_dispatch", c),
            None => dlsm_trace::span(dlsm_trace::Category::Server, "server_dispatch"),
        };
        let reply = req.reply_desc();
        let t_serve = Instant::now();
        let executed: Result<Vec<u8>> = (|| match req {
            Request::Ping { payload, .. } => Ok(payload),
            Request::FreeBatch { extents, .. } => {
                for (off, len) in &extents {
                    ctx.allocator.free(*off, *len);
                    // ORDERING: relaxed — freed-extent counter; reporting only.
                    ctx.stats.freed_extents.fetch_add(1, Ordering::Relaxed);
                }
                Ok(vec![0u8])
            }
            Request::ReadFile { offset, len, .. } => {
                // tmpfs-style read: copy out of the region into the
                // reply (the extra memory copy the paper blames on the
                // Nova-LSM read path).
                let mut data = vec![0u8; len as usize];
                ctx.region.local_read(offset, &mut data)?;
                Ok(data)
            }
            Request::WriteFile { offset, data, .. } => {
                ctx.region.local_write(offset, &data)?;
                Ok(vec![0u8])
            }
            Request::CancelCompact { target, .. } => {
                if let Some(cached) = ctx.dedup.cancel(src, target) {
                    for (off, len) in &cached.extents {
                        ctx.allocator.free(*off, *len);
                    }
                }
                // ORDERING: relaxed — cancel counter; reporting only.
                ctx.stats.canceled.fetch_add(1, Ordering::Relaxed);
                Ok(vec![0u8])
            }
            Request::Compact { .. } => unreachable!("handled above"),
        })();
        let result: Result<()> = match executed {
            Ok(payload) => {
                let cached =
                    CachedReply { payload: payload.clone(), extents: Vec::new(), compact: false };
                if ctx.dedup.complete(src, req_id, cached) {
                    (|| {
                        let requester = ctx.fabric.node(src)?;
                        let qp = qp_for(&ctx.fabric, ctx.node.id(), src, &mut qps)?;
                        reply_general(qp, &reply, &requester, req_id, &payload)
                    })()
                } else {
                    Ok(()) // canceled: no delivery
                }
            }
            Err(e) => {
                // Errors are never cached; a retry re-executes.
                ctx.dedup.abort(src, req_id);
                Err(e)
            }
        };
        if let Err(e) = result {
            eprintln!("memnode: rpc dispatch failed: {e}");
            // ORDERING: relaxed — failure counter; reporting only.
            ctx.stats.failures.fetch_add(1, Ordering::Relaxed);
        }
        ctx.stats.dispatch.record_elapsed(t_serve.elapsed());
    }
}

fn qp_for<'a>(
    fabric: &Arc<Fabric>,
    local: NodeId,
    remote: NodeId,
    qps: &'a mut HashMap<NodeId, QueuePair>,
) -> Result<&'a mut QueuePair> {
    if let std::collections::hash_map::Entry::Vacant(e) = qps.entry(remote) {
        e.insert(fabric.create_qp(local, remote)?);
    }
    Ok(qps.get_mut(&remote).expect("just inserted"))
}

struct WorkerCtx {
    fabric: Arc<Fabric>,
    node_id: NodeId,
    region: Arc<MemoryRegion>,
    allocator: Arc<RegionAllocator>,
    stats: Arc<ServerStats>,
    dedup: Arc<DedupMap>,
    rx: Receiver<CompactJob>,
}

fn worker_loop(ctx: WorkerCtx) {
    dlsm_trace::set_thread_node(u64::from(ctx.node_id.0) + 1, "memnode");
    // Profiler task root: near-data compaction workers.
    let _task = dlsm_trace::profile_span("memnode_compactor");
    let mut qps: HashMap<NodeId, QueuePair> = HashMap::new();
    // Workers exit when the channel closes (all dispatchers stopped).
    while let Ok(job) = ctx.rx.recv() {
        // The whole job — argument pull, merge, reply delivery — hangs off
        // the compute-node span that requested the compaction.
        let _sp = match job.trace {
            Some(c) => {
                dlsm_trace::span_child_of(dlsm_trace::Category::Server, "server_compact_merge", c)
            }
            None => dlsm_trace::span(dlsm_trace::Category::Server, "server_compact_merge"),
        };
        type Outcome = Result<(Vec<u8>, Vec<(u64, u64)>)>;
        let outcome: Outcome = (|| {
            let qp = qp_for(&ctx.fabric, ctx.node_id, job.src, &mut qps)?;
            // Pull the (large) argument from the requester with an RDMA
            // read instead of inlining it in the request (Sec. X-D2).
            let requester = ctx.fabric.node(job.src)?;
            let arg_region = requester.region(rdma_sim::MrId(job.args.mr))?;
            let mut arg_buf = vec![0u8; job.args.len as usize];
            let addr = rdma_sim::RemoteAddr { rkey: job.args.rkey, ..arg_region.addr(job.args.offset) };
            qp.post_read(addr, &mut arg_buf, u64::MAX)?;
            let deadline = Instant::now() + ARG_READ_POLL;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                let c = qp.poll_one_blocking(left)?;
                if c.wr_id == u64::MAX && c.verb == rdma_sim::Verb::Read {
                    break;
                }
            }
            let args = CompactArgs::decode(&arg_buf)?;
            let t0 = Instant::now();
            let reply = execute_compaction(&ctx.region, &ctx.allocator, &args);
            // ORDERING: relaxed — compaction stats counters; reporting only.
            ctx.stats.busy_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            ctx.stats.merge.record_elapsed(t0.elapsed());
            let reply = reply?;
            // ORDERING: relaxed — compaction stats counters; reporting only.
            ctx.stats.compactions.fetch_add(1, Ordering::Relaxed);
            ctx.stats.records_in.fetch_add(reply.records_in, Ordering::Relaxed);
            ctx.stats.records_out.fetch_add(reply.records_out, Ordering::Relaxed);
            let extents = reply.outputs.iter().map(|o| (o.offset, o.len)).collect();
            Ok((reply.encode(), extents))
        })();
        // Body delivered to the requester: [status u8][payload].
        let body = match outcome {
            Ok((encoded, extents)) => {
                let mut body = Vec::with_capacity(1 + encoded.len());
                body.push(0u8);
                body.extend_from_slice(&encoded);
                let cached =
                    CachedReply { payload: body.clone(), extents: extents.clone(), compact: true };
                if !ctx.dedup.complete(job.src, job.req_id, cached) {
                    // Canceled while running: the requester is gone, so the
                    // outputs would otherwise leak. Reclaim and move on.
                    for (off, len) in extents {
                        ctx.allocator.free(off, len);
                    }
                    // ORDERING: relaxed — cancel counter; reporting only.
                    ctx.stats.canceled.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                body
            }
            Err(e) => {
                // ORDERING: relaxed — failure counter; reporting only.
                ctx.stats.failures.fetch_add(1, Ordering::Relaxed);
                // Errors are never cached; the retry re-executes.
                ctx.dedup.abort(job.src, job.req_id);
                let mut body = vec![1u8];
                body.extend_from_slice(e.to_string().into_bytes().as_slice());
                body
            }
        };
        if let Err(e) = deliver_compact_reply(
            &ctx.fabric,
            ctx.node_id,
            &mut qps,
            job.src,
            job.req_id,
            &job.reply,
            job.unique_id,
            &body,
        ) {
            // A lost reply leaves the requester sleeping until its timeout;
            // the retry will replay the cached reply. Make the cause loud.
            eprintln!("memnode: failed to deliver compaction reply: {e}");
            // ORDERING: relaxed — failure counter; reporting only.
            ctx.stats.failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::NetworkProfile;

    fn nid(n: u64) -> NodeId {
        // NodeId is opaque; mint distinct ids from a real fabric.
        let fabric = Fabric::new(NetworkProfile::instant());
        let mut id = fabric.add_node().id();
        for _ in 0..n {
            id = fabric.add_node().id();
        }
        id
    }

    fn reply(tag: u8) -> CachedReply {
        CachedReply { payload: vec![tag], extents: vec![], compact: false }
    }

    #[test]
    fn dedup_executes_once_and_replays() {
        let map = DedupMap::new(64);
        let c = nid(0);
        assert!(matches!(map.begin(c, 7), DedupDecision::Execute));
        // Duplicate while in flight: dropped.
        assert!(matches!(map.begin(c, 7), DedupDecision::InFlight));
        assert!(map.complete(c, 7, reply(42)));
        match map.begin(c, 7) {
            DedupDecision::Replay(r) => assert_eq!(r.payload, vec![42]),
            _ => panic!("expected replay"),
        }
    }

    #[test]
    fn dedup_abort_allows_reexecution() {
        let map = DedupMap::new(64);
        let c = nid(0);
        assert!(matches!(map.begin(c, 3), DedupDecision::Execute));
        map.abort(c, 3);
        assert!(matches!(map.begin(c, 3), DedupDecision::Execute));
    }

    #[test]
    fn dedup_cancel_tombstones_and_returns_done_reply() {
        let map = DedupMap::new(64);
        let c = nid(0);
        // Cancel before the request ever arrives: tombstone.
        assert!(map.cancel(c, 9).is_none());
        assert!(matches!(map.begin(c, 9), DedupDecision::InFlight));
        // Cancel after completion: reply (and its extents) returned.
        assert!(matches!(map.begin(c, 10), DedupDecision::Execute));
        assert!(map.complete(
            c,
            10,
            CachedReply { payload: vec![1], extents: vec![(0, 8)], compact: true }
        ));
        let r = map.cancel(c, 10).expect("done reply returned");
        assert_eq!(r.extents, vec![(0, 8)]);
        // And the request can never run again.
        assert!(matches!(map.begin(c, 10), DedupDecision::InFlight));
        // Cancel while in flight: complete() reports cancellation.
        assert!(matches!(map.begin(c, 11), DedupDecision::Execute));
        assert!(map.cancel(c, 11).is_none());
        assert!(!map.complete(c, 11, reply(5)));
    }

    #[test]
    fn dedup_prunes_old_done_entries_but_never_in_flight() {
        let map = DedupMap::new(4);
        let c = nid(0);
        assert!(matches!(map.begin(c, 1), DedupDecision::Execute)); // stays in flight
        for id in 2..32u64 {
            assert!(matches!(map.begin(c, id), DedupDecision::Execute));
            assert!(map.complete(c, id, reply(id as u8)));
        }
        // Old done entries pruned: a very late duplicate re-executes.
        assert!(matches!(map.begin(c, 2), DedupDecision::Execute));
        // The in-flight entry survived the churn.
        assert!(matches!(map.begin(c, 1), DedupDecision::InFlight));
    }

    #[test]
    fn crash_and_restart_preserve_region_and_allocator() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let mut server = MemServer::start(
            &fabric,
            MemServerConfig {
                region_size: 4 << 20,
                flush_zone: 1 << 20,
                compaction_workers: 1,
                dispatchers: 1,
            },
        );
        server.region().local_write(64, b"survives-crash").unwrap();
        let off = server.allocator.alloc(1024).unwrap();
        let used = server.compaction_zone_in_use();
        assert!(used >= 1024);

        server.crash();
        assert!(server.is_crashed());
        server.restart();
        assert!(!server.is_crashed());
        assert_eq!(server.stats().restarts.load(Ordering::Relaxed), 1);

        let mut back = [0u8; 14];
        server.region().local_read(64, &mut back).unwrap();
        assert_eq!(&back, b"survives-crash");
        assert_eq!(server.compaction_zone_in_use(), used);
        server.allocator.free(off, 1024);
        server.shutdown();
    }
}
