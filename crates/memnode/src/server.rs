//! The memory-node server: dispatcher, compaction workers, GC, statistics.
//!
//! One [`MemServer`] owns a node on the fabric, a single large registered
//! region (paper Sec. X-B: register once, sub-allocate in user space) split
//! into the compute-controlled **flush zone** and the server-controlled
//! **compaction zone**, and two thread pools:
//!
//! * **dispatchers** drain the node's inbox and answer general-purpose RPCs
//!   inline, writing replies one-sided into the requester's polling buffer
//!   so the reply path bypasses any requester-side dispatcher (Sec. X-D1);
//! * **compaction workers** (the remote-CPU-core budget of Fig. 12) pull
//!   compaction jobs from a queue, RDMA-read the argument from the
//!   requester, run the merge against local DRAM, and reply with a
//!   WRITE-with-IMMEDIATE that wakes the sleeping requester (Sec. X-D2).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use rdma_sim::{Fabric, MemoryRegion, Node, NodeId, QueuePair};

use crate::alloc::RegionAllocator;
use crate::compactor::execute_compaction;
use crate::wire::{BufDesc, CompactArgs, Request};
use crate::{MemNodeError, Result};

/// Configuration for one memory node.
#[derive(Debug, Clone)]
pub struct MemServerConfig {
    /// Total registered region size in bytes.
    pub region_size: usize,
    /// Prefix of the region whose allocation the *compute node* controls
    /// (MemTable flush targets). The remainder is the compaction zone.
    pub flush_zone: u64,
    /// Remote CPU cores devoted to near-data compaction (Fig. 12 knob).
    pub compaction_workers: usize,
    /// Dispatcher threads draining the RPC inbox.
    pub dispatchers: usize,
}

impl Default for MemServerConfig {
    fn default() -> Self {
        MemServerConfig {
            region_size: 256 << 20,
            flush_zone: 96 << 20,
            compaction_workers: 4,
            dispatchers: 1,
        }
    }
}

/// Counters exported by a [`MemServer`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Nanoseconds compaction workers spent executing merges.
    pub busy_nanos: AtomicU64,
    /// Compactions completed.
    pub compactions: AtomicU64,
    /// Records read by compactions.
    pub records_in: AtomicU64,
    /// Records written by compactions.
    pub records_out: AtomicU64,
    /// Extents freed via the GC RPC.
    pub freed_extents: AtomicU64,
    /// General-purpose RPCs served.
    pub rpcs: AtomicU64,
    /// Compactions that failed (error status replied).
    pub failures: AtomicU64,
}

impl ServerStats {
    /// Average remote CPU utilization over `wall` given `workers` cores,
    /// measured from a `busy_nanos` delta.
    pub fn utilization(busy_delta_nanos: u64, workers: usize, wall: Duration) -> f64 {
        if wall.is_zero() || workers == 0 {
            return 0.0;
        }
        busy_delta_nanos as f64 / (workers as f64 * wall.as_nanos() as f64)
    }
}

struct CompactJob {
    src: NodeId,
    reply: BufDesc,
    unique_id: u32,
    args: BufDesc,
}

/// A running memory node.
pub struct MemServer {
    fabric: Arc<Fabric>,
    node: Arc<Node>,
    region: Arc<MemoryRegion>,
    cfg: MemServerConfig,
    allocator: Arc<RegionAllocator>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl MemServer {
    /// Create a node on `fabric`, register its region, and start dispatcher
    /// and worker threads.
    pub fn start(fabric: &Arc<Fabric>, cfg: MemServerConfig) -> MemServer {
        assert!(cfg.flush_zone <= cfg.region_size as u64, "flush zone exceeds region");
        let node = fabric.add_node();
        let region = node.register_region(cfg.region_size);
        let allocator = Arc::new(RegionAllocator::new(
            cfg.flush_zone,
            cfg.region_size as u64 - cfg.flush_zone,
        ));
        let stats = Arc::new(ServerStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = unbounded::<CompactJob>();

        let mut threads = Vec::new();
        for _ in 0..cfg.dispatchers.max(1) {
            let ctx = DispatchCtx {
                fabric: Arc::clone(fabric),
                node: Arc::clone(&node),
                region: Arc::clone(&region),
                allocator: Arc::clone(&allocator),
                stats: Arc::clone(&stats),
                stop: Arc::clone(&stop),
                compact_tx: tx.clone(),
            };
            threads.push(std::thread::spawn(move || dispatcher_loop(ctx)));
        }
        drop(tx);
        for _ in 0..cfg.compaction_workers.max(1) {
            let ctx = WorkerCtx {
                fabric: Arc::clone(fabric),
                node_id: node.id(),
                region: Arc::clone(&region),
                allocator: Arc::clone(&allocator),
                stats: Arc::clone(&stats),
                rx: rx.clone(),
            };
            threads.push(std::thread::spawn(move || worker_loop(ctx)));
        }
        drop(rx);

        MemServer { fabric: Arc::clone(fabric), node, region, cfg, allocator, stats, stop, threads }
    }

    /// This server's node id (RPC target for clients).
    pub fn node_id(&self) -> NodeId {
        self.node.id()
    }

    /// The server's registered region (clients address SSTables within it).
    pub fn region(&self) -> &Arc<MemoryRegion> {
        &self.region
    }

    /// Length of the compute-controlled flush zone.
    pub fn flush_zone(&self) -> u64 {
        self.cfg.flush_zone
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &MemServerConfig {
        &self.cfg
    }

    /// Server-side counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// Bytes in use in the compaction zone.
    pub fn compaction_zone_in_use(&self) -> u64 {
        self.allocator.in_use()
    }

    /// The fabric this server is attached to.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Stop all threads and wait for them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for MemServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

struct DispatchCtx {
    fabric: Arc<Fabric>,
    node: Arc<Node>,
    region: Arc<MemoryRegion>,
    allocator: Arc<RegionAllocator>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    compact_tx: Sender<CompactJob>,
}

/// Write `[len u32][payload]` into the requester's reply buffer, then bump
/// the completion flag (the last word of the buffer) with a remote atomic.
///
/// The payload write is awaited *before* the flag is raised so a poller can
/// never observe the flag without the payload (in the simulator, payload
/// bytes land at post time but the flag is only bumped after the payload's
/// completion deadline has passed — mirroring real RDMA's in-order delivery
/// within a queue pair).
fn reply_general(
    qp: &mut QueuePair,
    reply: &BufDesc,
    region_of: &Arc<Node>,
    payload: &[u8],
) -> Result<()> {
    let target = region_of.region(rdma_sim::MrId(reply.mr))?;
    let base = target.addr(reply.offset);
    // rkey comes from the descriptor, not the region lookup: enforce it.
    let base = rdma_sim::RemoteAddr { rkey: reply.rkey, ..base };
    if payload.len() + 4 + 8 > reply.len as usize {
        return Err(MemNodeError::BadMessage(format!(
            "reply of {} bytes exceeds reply buffer of {}",
            payload.len(),
            reply.len
        )));
    }
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(payload);
    qp.post_write(&framed, base, 1)?;
    // Await the payload before raising the flag.
    qp.poll_one_blocking(Duration::from_secs(10))?;
    let flag_addr = base.add(u64::from(reply.len) - 8);
    qp.fetch_add(flag_addr, 1)?;
    Ok(())
}

fn dispatcher_loop(ctx: DispatchCtx) {
    let mut qps: HashMap<NodeId, QueuePair> = HashMap::new();
    while !ctx.stop.load(Ordering::Acquire) {
        let msg = match ctx.node.recv(Duration::from_millis(20)) {
            Ok(m) => m,
            Err(_) => continue,
        };
        ctx.stats.rpcs.fetch_add(1, Ordering::Relaxed);
        let req = match Request::decode(&msg.payload) {
            Ok(r) => r,
            Err(_) => continue, // malformed: drop (client times out)
        };
        let src = msg.src;
        let result: Result<()> = (|| {
            let requester = ctx.fabric.node(src)?;
            match req {
                Request::Ping { reply, payload } => {
                    let qp = qp_for(&ctx.fabric, ctx.node.id(), src, &mut qps)?;
                    reply_general(qp, &reply, &requester, &payload)
                }
                Request::FreeBatch { reply, extents } => {
                    for (off, len) in &extents {
                        ctx.allocator.free(*off, *len);
                        ctx.stats.freed_extents.fetch_add(1, Ordering::Relaxed);
                    }
                    let qp = qp_for(&ctx.fabric, ctx.node.id(), src, &mut qps)?;
                    reply_general(qp, &reply, &requester, &[0u8])
                }
                Request::ReadFile { reply, offset, len } => {
                    // tmpfs-style read: copy out of the region into the
                    // reply (the extra memory copy the paper blames on the
                    // Nova-LSM read path).
                    let mut data = vec![0u8; len as usize];
                    ctx.region.local_read(offset, &mut data)?;
                    let qp = qp_for(&ctx.fabric, ctx.node.id(), src, &mut qps)?;
                    reply_general(qp, &reply, &requester, &data)
                }
                Request::WriteFile { reply, offset, data } => {
                    ctx.region.local_write(offset, &data)?;
                    let qp = qp_for(&ctx.fabric, ctx.node.id(), src, &mut qps)?;
                    reply_general(qp, &reply, &requester, &[0u8])
                }
                Request::Compact { reply, unique_id, args } => {
                    // Long-running: hand to the core-budgeted worker pool.
                    let _ = ctx.compact_tx.send(CompactJob { src, reply, unique_id, args });
                    Ok(())
                }
            }
        })();
        if let Err(e) = result {
            eprintln!("memnode: rpc dispatch failed: {e}");
            ctx.stats.failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn qp_for<'a>(
    fabric: &Arc<Fabric>,
    local: NodeId,
    remote: NodeId,
    qps: &'a mut HashMap<NodeId, QueuePair>,
) -> Result<&'a mut QueuePair> {
    if let std::collections::hash_map::Entry::Vacant(e) = qps.entry(remote) {
        e.insert(fabric.create_qp(local, remote)?);
    }
    Ok(qps.get_mut(&remote).expect("just inserted"))
}

struct WorkerCtx {
    fabric: Arc<Fabric>,
    node_id: NodeId,
    region: Arc<MemoryRegion>,
    allocator: Arc<RegionAllocator>,
    stats: Arc<ServerStats>,
    rx: Receiver<CompactJob>,
}

fn worker_loop(ctx: WorkerCtx) {
    let mut qps: HashMap<NodeId, QueuePair> = HashMap::new();
    // Workers exit when the channel closes (all dispatchers stopped).
    while let Ok(job) = ctx.rx.recv() {
        let outcome: Result<Vec<u8>> = (|| {
            let qp = qp_for(&ctx.fabric, ctx.node_id, job.src, &mut qps)?;
            // Pull the (large) argument from the requester with an RDMA
            // read instead of inlining it in the request (Sec. X-D2).
            let requester = ctx.fabric.node(job.src)?;
            let arg_region = requester.region(rdma_sim::MrId(job.args.mr))?;
            let mut arg_buf = vec![0u8; job.args.len as usize];
            let addr = rdma_sim::RemoteAddr { rkey: job.args.rkey, ..arg_region.addr(job.args.offset) };
            qp.read_sync(addr, &mut arg_buf)?;
            let args = CompactArgs::decode(&arg_buf)?;
            let t0 = Instant::now();
            let reply = execute_compaction(&ctx.region, &ctx.allocator, &args);
            ctx.stats.busy_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let reply = reply?;
            ctx.stats.compactions.fetch_add(1, Ordering::Relaxed);
            ctx.stats.records_in.fetch_add(reply.records_in, Ordering::Relaxed);
            ctx.stats.records_out.fetch_add(reply.records_out, Ordering::Relaxed);
            Ok(reply.encode())
        })();
        let (status, payload) = match outcome {
            Ok(p) => (0u8, p),
            Err(e) => {
                ctx.stats.failures.fetch_add(1, Ordering::Relaxed);
                (1u8, e.to_string().into_bytes())
            }
        };
        // Reply: [len][status][payload] one-sided, then WRITE-with-IMMEDIATE
        // carrying the unique id to wake the sleeping requester.
        let reply_result = (|| -> Result<()> {
            let qp = qp_for(&ctx.fabric, ctx.node_id, job.src, &mut qps)?;
            let requester = ctx.fabric.node(job.src)?;
            let target = requester.region(rdma_sim::MrId(job.reply.mr))?;
            let base = rdma_sim::RemoteAddr { rkey: job.reply.rkey, ..target.addr(job.reply.offset) };
            let mut framed = Vec::with_capacity(5 + payload.len());
            framed.extend_from_slice(&(payload.len() as u32 + 1).to_le_bytes());
            framed.push(status);
            framed.extend_from_slice(&payload);
            if framed.len() + 8 > job.reply.len as usize {
                return Err(MemNodeError::BadMessage("compaction reply too large".into()));
            }
            qp.post_write(&framed, base, 1)?;
            qp.poll_one_blocking(Duration::from_secs(10))?;
            // The immediate wakes the requester; the written word is unused.
            let flag_addr = base.add(u64::from(job.reply.len) - 8);
            qp.post_write_imm(&1u64.to_le_bytes(), flag_addr, job.unique_id, 2)?;
            qp.poll_one_blocking(Duration::from_secs(10))?;
            Ok(())
        })();
        if let Err(e) = reply_result {
            // A lost reply would leave the requester sleeping until its
            // timeout; make the cause loud.
            eprintln!("memnode: failed to deliver compaction reply: {e}");
            ctx.stats.failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}
