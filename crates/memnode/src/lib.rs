//! # dlsm-memnode — the memory-node runtime
//!
//! Everything that *runs on the memory node* in dLSM's architecture (paper
//! Sec. V, X-D), plus the compute-side client half of the RPC protocol:
//!
//! * [`alloc`] — a free-list sub-allocator over one registered region. The
//!   region is split into two disjoint zones: a **flush zone** whose
//!   allocation is controlled by the compute node (MemTable flushes) and a
//!   **compaction zone** controlled by the memory node itself, so near-data
//!   compaction can allocate outputs without a network round trip
//!   (Sec. V-A).
//! * [`wire`] — hand-rolled little-endian request/reply formats.
//! * [`server`] — the dispatcher + worker threads: general-purpose RPCs
//!   (ping, read, write, free-batch) are answered inline with the reply
//!   **bypassing the dispatcher** via a one-sided RDMA write into the
//!   requester's polling buffer (Sec. X-D1); compaction requests go to a
//!   core-budgeted worker pool (the Fig. 12 knob) and reply with
//!   WRITE-with-IMMEDIATE to wake the sleeping requester (Sec. X-D2).
//! * [`compactor`] — executes a compaction entirely against local DRAM:
//!   merge inputs with the shared [`dlsm_sstable::merge::CompactionIter`],
//!   build outputs in the compaction zone, return their metadata.
//! * [`client`] — the compute-node side: `RpcClient` (thread-local queue
//!   pair + registered reply/argument buffers, boolean-flag polling) and
//!   `ImmWaiter` (the thread notifier that routes immediate events to
//!   sleeping compaction requesters by unique id).

pub mod alloc;
pub mod client;
pub mod compactor;
pub mod server;
pub mod sink;
pub mod wire;

pub use alloc::RegionAllocator;
pub use client::{ClientNetStats, ImmWaiter, RetryPolicy, RpcClient};
pub use compactor::execute_compaction;
pub use server::{CachedReply, DedupDecision, DedupMap, MemServer, MemServerConfig, ServerStats};
pub use sink::RegionSink;
pub use wire::{CompactArgs, CompactReply, InputTable, OutputTable, ReplyFrame, TableFormat};

/// Errors from the memory-node runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemNodeError {
    /// RDMA-level failure.
    Rdma(String),
    /// Table format failure.
    Sst(String),
    /// Malformed RPC bytes.
    BadMessage(String),
    /// Allocation failure in the requested zone.
    OutOfMemory {
        /// Bytes that could not be allocated.
        requested: u64,
    },
    /// The remote side reported an error status.
    RemoteError(String),
    /// Timed out waiting for a reply.
    Timeout,
}

impl std::fmt::Display for MemNodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemNodeError::Rdma(m) => write!(f, "rdma: {m}"),
            MemNodeError::Sst(m) => write!(f, "sstable: {m}"),
            MemNodeError::BadMessage(m) => write!(f, "bad rpc message: {m}"),
            MemNodeError::OutOfMemory { requested } => {
                write!(f, "memory node out of memory ({requested} bytes requested)")
            }
            MemNodeError::RemoteError(m) => write!(f, "remote error: {m}"),
            MemNodeError::Timeout => write!(f, "rpc timeout"),
        }
    }
}

impl std::error::Error for MemNodeError {}

impl From<rdma_sim::RdmaError> for MemNodeError {
    fn from(e: rdma_sim::RdmaError) -> Self {
        MemNodeError::Rdma(e.to_string())
    }
}

impl From<dlsm_sstable::SstError> for MemNodeError {
    fn from(e: dlsm_sstable::SstError) -> Self {
        MemNodeError::Sst(e.to_string())
    }
}

/// Result alias for memory-node operations.
pub type Result<T> = std::result::Result<T, MemNodeError>;
