//! A table sink writing directly into a registered region's bytes.
//!
//! Used by near-data compaction: output tables are serialized straight into
//! the memory node's own DRAM (its compaction zone), with no network traffic
//! and no staging buffer.

use std::sync::Arc;

use dlsm_sstable::byte_addr::TableSink;
use dlsm_sstable::SstError;
use rdma_sim::MemoryRegion;

/// Appends into `region[base .. base + cap)`.
pub struct RegionSink {
    region: Arc<MemoryRegion>,
    base: u64,
    pos: u64,
    cap: u64,
}

impl RegionSink {
    /// Write into the extent `[base, base + cap)` of `region`.
    pub fn new(region: Arc<MemoryRegion>, base: u64, cap: u64) -> RegionSink {
        RegionSink { region, base, pos: 0, cap }
    }

    /// Bytes written so far.
    pub fn written(&self) -> u64 {
        self.pos
    }

    /// The extent's base offset in the region.
    pub fn base(&self) -> u64 {
        self.base
    }
}

impl TableSink for RegionSink {
    fn append(&mut self, data: &[u8]) -> dlsm_sstable::Result<()> {
        if self.pos + data.len() as u64 > self.cap {
            return Err(SstError::SinkFull);
        }
        self.region
            .local_write(self.base + self.pos, data)
            .map_err(|e| SstError::Source(e.to_string()))?;
        self.pos += data.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::{Fabric, NetworkProfile};

    #[test]
    fn appends_land_in_region() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let node = fabric.add_node();
        let region = node.register_region(256);
        let mut sink = RegionSink::new(Arc::clone(&region), 32, 64);
        sink.append(b"hello ").unwrap();
        sink.append(b"world").unwrap();
        assert_eq!(sink.written(), 11);
        let mut buf = [0u8; 11];
        region.local_read(32, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn overflow_is_sink_full() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let node = fabric.add_node();
        let region = node.register_region(256);
        let mut sink = RegionSink::new(region, 0, 8);
        sink.append(b"12345678").unwrap();
        assert_eq!(sink.append(b"9"), Err(SstError::SinkFull));
    }
}
