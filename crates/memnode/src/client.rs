//! Compute-node side of the RPC protocol.
//!
//! [`RpcClient`] is thread-local (one queue pair and one registered
//! reply/argument buffer per thread, per the dLSM RDMA-manager design,
//! Sec. X-B). General-purpose calls poll a flag word at the end of the reply
//! buffer (Sec. X-D1). Compaction calls sleep on a condition variable and
//! are woken by [`ImmWaiter`] — the "thread notifier" that routes
//! WRITE-with-IMMEDIATE events to requesters by unique id (Sec. X-D2).
//!
//! Every call is made survivable over a lossy fabric by a [`RetryPolicy`]:
//! a timed-out attempt is re-issued under the **same request id** after
//! exponential backoff, so the server's dedup window guarantees
//! at-most-once execution even for non-idempotent ops (`free_batch`,
//! `compact`). After repeated timeouts the client also **reconnects** (a
//! fresh queue pair), covering a memory node that crashed and restarted.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rdma_sim::{Fabric, MemoryRegion, Node, NodeId, QueuePair};

use crate::wire::{BufDesc, CompactArgs, CompactReply, ReplyFrame, Request};
use crate::{MemNodeError, Result};

/// Process-wide request-id source. Ids must be unique per *compute node*
/// (the server's dedup window is keyed by `(node, req_id)`) and several
/// `RpcClient`s share one node, so a single counter serves them all.
static NEXT_REQ_ID: AtomicU64 = AtomicU64::new(1);

/// How a client retries timed-out calls.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Consecutive timeouts before recreating the queue pair (reconnect),
    /// covering a crashed-and-restarted memory node. 0 = never reconnect.
    pub reconnect_after: u32,
    /// Cap on how long any single attempt may wait, regardless of the
    /// caller's overall timeout. `None` lets each attempt use the full call
    /// timeout. Chaos/fault-injection configs set this low so a blackholed
    /// attempt (e.g. during a crash window) fails fast and the retry loop —
    /// not a long per-call timeout — rides out the outage.
    pub attempt_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(250),
            reconnect_after: 2,
            attempt_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the pre-retry protocol behavior).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    fn backoff_for(&self, retry: u32) -> Duration {
        let exp = self.backoff.saturating_mul(1u32 << retry.min(16));
        exp.min(self.max_backoff)
    }

    fn per_attempt(&self, timeout: Duration) -> Duration {
        match self.attempt_timeout {
            Some(cap) => timeout.min(cap),
            None => timeout,
        }
    }
}

/// Shared (atomic) network-health counters a set of [`RpcClient`]s can
/// report into — e.g. every client one `Db` opens across its flush, GC,
/// compaction, and read threads. The per-client `retries()`/`reconnects()`
/// accessors only cover one client's lifetime; this aggregate is what the
/// chaos harness checks against the server's dedup/replay counters.
#[derive(Debug, Default)]
pub struct ClientNetStats {
    /// Attempts re-issued after a timeout, across all attached clients.
    pub retries: AtomicU64,
    /// Queue-pair recreations, across all attached clients.
    pub reconnects: AtomicU64,
}

impl ClientNetStats {
    /// Current `(retries, reconnects)`.
    pub fn totals(&self) -> (u64, u64) {
        // ORDERING: relaxed — retry/reconnect counters read for reporting.
        (self.retries.load(Ordering::Relaxed), self.reconnects.load(Ordering::Relaxed))
    }
}

/// Thread-local RPC endpoint talking to one memory node.
pub struct RpcClient {
    fabric: Arc<Fabric>,
    local_node: Arc<Node>,
    remote: NodeId,
    qp: QueuePair,
    /// Registered local buffer: `[reply | args]`.
    local: Arc<MemoryRegion>,
    reply_len: u32,
    arg_off: u64,
    arg_len: u32,
    policy: RetryPolicy,
    retries: u64,
    reconnects: u64,
    /// Optional aggregate sink shared with sibling clients.
    net: Option<Arc<ClientNetStats>>,
    /// Traffic of queue pairs retired by [`RpcClient::reconnect`], so
    /// [`RpcClient::traffic`] spans the client's whole lifetime.
    traffic_carried: rdma_sim::StatsSnapshot,
}

impl RpcClient {
    /// Create a client on `local_node` targeting `remote`. `buf_size` bytes
    /// are registered for the reply buffer and as many again for the
    /// argument buffer.
    pub fn new(
        fabric: &Arc<Fabric>,
        local_node: &Arc<Node>,
        remote: NodeId,
        buf_size: usize,
    ) -> Result<RpcClient> {
        let buf_size = buf_size.next_multiple_of(8).max(64);
        let local = local_node.register_region(buf_size * 2);
        let qp = fabric.create_qp(local_node.id(), remote)?;
        Ok(RpcClient {
            fabric: Arc::clone(fabric),
            local_node: Arc::clone(local_node),
            remote,
            qp,
            local,
            reply_len: buf_size as u32,
            arg_off: buf_size as u64,
            arg_len: buf_size as u32,
            policy: RetryPolicy::default(),
            retries: 0,
            reconnects: 0,
            net: None,
            traffic_carried: rdma_sim::StatsSnapshot::default(),
        })
    }

    /// Replace the retry policy (builder style).
    pub fn with_policy(mut self, policy: RetryPolicy) -> RpcClient {
        self.policy = policy;
        self
    }

    /// The active retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Report retries/reconnects into a shared aggregate as well as the
    /// per-client counters (builder style).
    pub fn with_net_stats(mut self, net: Arc<ClientNetStats>) -> RpcClient {
        self.net = Some(net);
        self
    }

    /// Everything this client ever posted, per verb — including traffic on
    /// queue pairs retired by reconnects.
    pub fn traffic(&self) -> rdma_sim::StatsSnapshot {
        let mut t = self.traffic_carried;
        t.merge(&self.qp.traffic());
        t
    }

    fn note_retry(&mut self) {
        self.retries += 1;
        dlsm_trace::instant(dlsm_trace::Category::Rpc, "rpc_retry", 0);
        if let Some(net) = &self.net {
            // ORDERING: relaxed — retry counter; reporting only.
            net.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Attempts re-issued after a timeout, over this client's lifetime.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Queue-pair recreations after repeated timeouts.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Create another client to the same memory node with the same buffer
    /// sizes and policy (each thread/task gets its own queue pair and
    /// buffers).
    pub fn reopen(&self) -> Result<RpcClient> {
        let mut c =
            RpcClient::new(&self.fabric, &self.local_node, self.remote, self.reply_len as usize)?
                .with_policy(self.policy);
        c.net = self.net.clone();
        Ok(c)
    }

    /// Recreate the queue pair to the memory node. The registered local
    /// buffer (and thus the reply descriptor) is unchanged.
    pub fn reconnect(&mut self) -> Result<()> {
        let fresh = self.fabric.create_qp(self.local_node.id(), self.remote)?;
        let old = std::mem::replace(&mut self.qp, fresh);
        self.traffic_carried.merge(&old.traffic());
        self.reconnects += 1;
        dlsm_timeline::post(dlsm_timeline::EngineEvent::MemnodeReconnect {
            node_id: self.remote.0 as u64,
        });
        if let Some(net) = &self.net {
            // ORDERING: relaxed — reconnect counter; reporting only.
            net.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// The memory node this client talks to.
    pub fn remote_node(&self) -> NodeId {
        self.remote
    }

    /// Descriptor of this client's reply buffer (attached to every request).
    pub fn reply_desc(&self) -> BufDesc {
        BufDesc {
            mr: self.local.mr().0,
            offset: 0,
            rkey: self.local.rkey(),
            len: self.reply_len,
        }
    }

    fn flag_off(&self) -> u64 {
        u64::from(self.reply_len) - 8
    }

    fn fresh_req_id() -> u64 {
        // ORDERING: relaxed — request-id generation needs uniqueness only.
        NEXT_REQ_ID.fetch_add(1, Ordering::Relaxed)
    }

    /// Issue `request` with bounded retry: each timed-out attempt is
    /// re-issued under the same request id after exponential backoff, and
    /// the queue pair is recreated after `reconnect_after` consecutive
    /// timeouts. `timeout` bounds each attempt.
    fn call(&mut self, request: &Request, timeout: Duration) -> Result<Vec<u8>> {
        let _sp = dlsm_trace::span_arg(dlsm_trace::Category::Rpc, "rpc_call", request.op() as u64);
        let req_id = Self::fresh_req_id();
        // Context is captured once, at encode time: retries re-send the
        // same bytes, so the server-side child hangs off this one span no
        // matter which attempt it serves (dedup-friendly).
        let encoded = request.encode_with_ctx(req_id, dlsm_trace::current_ctx());
        let timeout = self.policy.per_attempt(timeout);
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                self.note_retry();
                if self.policy.reconnect_after != 0 && attempt >= self.policy.reconnect_after {
                    let _ = self.reconnect();
                }
                // HOTPATH: retry backoff only runs after an attempt already
                // timed out — latency is dominated by the loss, not the sleep.
                std::thread::sleep(self.policy.backoff_for(attempt - 1));
            }
            match self.attempt(&encoded, req_id, timeout) {
                Err(MemNodeError::Timeout) => continue,
                other => return other,
            }
        }
        Err(MemNodeError::Timeout)
    }

    /// One attempt: post the SEND, await its completion, poll the flag until
    /// the reply frame carrying `req_id` lands.
    fn attempt(&mut self, encoded: &[u8], req_id: u64, timeout: Duration) -> Result<Vec<u8>> {
        // Reset the flag before the responder can race us.
        self.local.atomic_u64(self.flag_off())?.store(0, Ordering::Release);
        self.qp.post_send(encoded.to_vec(), 7)?;
        // A lost SEND completion is indistinguishable from a lost request;
        // treat either as a timeout so the retry path takes over.
        if self.qp.poll_one_blocking(timeout.min(Duration::from_secs(10))).is_err() {
            return Err(MemNodeError::Timeout);
        }
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            if self.local.atomic_load(self.flag_off())? != 0 {
                match self.read_reply(req_id)? {
                    Some(payload) => return Ok(payload),
                    None => {
                        // Stale frame from an earlier call: rearm the flag
                        // and keep waiting for the real reply.
                        self.local.atomic_u64(self.flag_off())?.store(0, Ordering::Release);
                    }
                }
            }
            if Instant::now() >= deadline {
                return Err(MemNodeError::Timeout);
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                // HOTPATH: two-sided RPC completion is flag-polled like a real
                // RNIC doorbell; event-driven wakeups are ROADMAP item 3.
                std::thread::yield_now();
            } else {
                // HOTPATH: same doorbell poll (see above).
                std::hint::spin_loop();
            }
        }
    }

    /// Read the reply frame; `None` when it carries a stale request id.
    fn read_reply(&self, expect: u64) -> Result<Option<Vec<u8>>> {
        let mut head = [0u8; ReplyFrame::HEADER];
        self.local.local_read(0, &mut head)?;
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
        let req_id = u64::from_le_bytes([
            head[4], head[5], head[6], head[7], head[8], head[9], head[10], head[11],
        ]);
        if len + ReplyFrame::HEADER + 8 > self.reply_len as usize {
            return Err(MemNodeError::BadMessage(format!("reply length {len} out of range")));
        }
        if req_id != expect {
            return Ok(None);
        }
        let mut payload = vec![0u8; len];
        self.local.local_read(ReplyFrame::HEADER as u64, &mut payload)?;
        Ok(Some(payload))
    }

    /// Liveness/latency probe: echoes `payload`.
    pub fn ping(&mut self, payload: &[u8], timeout: Duration) -> Result<Vec<u8>> {
        self.call(&Request::Ping { reply: self.reply_desc(), payload: payload.to_vec() }, timeout)
    }

    /// Batched GC of extents in the memory node's compaction zone
    /// (Sec. V-B: frees are grouped locally and shipped together).
    pub fn free_batch(&mut self, extents: &[(u64, u64)], timeout: Duration) -> Result<()> {
        let reply = self.call(
            &Request::FreeBatch { reply: self.reply_desc(), extents: extents.to_vec() },
            timeout,
        )?;
        if reply.first() != Some(&0) {
            return Err(MemNodeError::RemoteError("free batch failed".into()));
        }
        Ok(())
    }

    /// Largest payload a single [`RpcClient::read_file`] can return.
    pub fn max_read_len(&self) -> usize {
        self.reply_len as usize - ReplyFrame::HEADER - 8
    }

    /// Two-sided "file" read from the memory node's region (the Nova-LSM
    /// tmpfs-style data path: request → server copy → reply).
    pub fn read_file(&mut self, offset: u64, len: u32, timeout: Duration) -> Result<Vec<u8>> {
        if len as usize > self.max_read_len() {
            return Err(MemNodeError::BadMessage("read larger than reply buffer".into()));
        }
        self.call(&Request::ReadFile { reply: self.reply_desc(), offset, len }, timeout)
    }

    /// Two-sided "file" write into the memory node's region.
    pub fn write_file(&mut self, offset: u64, data: &[u8], timeout: Duration) -> Result<()> {
        let reply = self.call(
            &Request::WriteFile { reply: self.reply_desc(), offset, data: data.to_vec() },
            timeout,
        )?;
        if reply.first() != Some(&0) {
            return Err(MemNodeError::RemoteError("write failed".into()));
        }
        Ok(())
    }

    /// Ask the memory node to cancel (or reclaim the outputs of) the
    /// compaction issued under `target` request id. Safe to send whether the
    /// compaction already finished, is still running, or never arrived: the
    /// server frees finished outputs, tombstones in-flight work, and leaves
    /// a tombstone for a request that shows up later.
    pub fn cancel_compact(&mut self, target: u64, timeout: Duration) -> Result<()> {
        let reply =
            self.call(&Request::CancelCompact { reply: self.reply_desc(), target }, timeout)?;
        if reply.first() != Some(&0) {
            return Err(MemNodeError::RemoteError("cancel failed".into()));
        }
        Ok(())
    }

    /// Near-data compaction: serialize `args` into the registered argument
    /// buffer, send the small request, **sleep** until the memory node's
    /// WRITE-with-IMMEDIATE wakes this thread via `waiter`, then decode the
    /// reply.
    ///
    /// A timed-out attempt is re-issued under the same request id (the
    /// server dedups, so the compaction runs at most once). If all attempts
    /// time out, a best-effort [`RpcClient::cancel_compact`] tells the
    /// server to reclaim any outputs the orphaned compaction produces, so
    /// no memory-node extent leaks.
    pub fn compact(
        &mut self,
        args: &CompactArgs,
        waiter: &ImmWaiter,
        timeout: Duration,
    ) -> Result<CompactReply> {
        let encoded = args.encode();
        if encoded.len() > self.arg_len as usize {
            return Err(MemNodeError::BadMessage(format!(
                "compaction args of {} bytes exceed the {}-byte argument buffer",
                encoded.len(),
                self.arg_len
            )));
        }
        self.local.local_write(self.arg_off, &encoded)?;
        let _sp = dlsm_trace::span(dlsm_trace::Category::Rpc, "rpc_compact");
        let (unique_id, cell) = waiter.register();
        let req_id = Self::fresh_req_id();
        let req = Request::Compact {
            reply: self.reply_desc(),
            unique_id,
            args: BufDesc {
                mr: self.local.mr().0,
                offset: self.arg_off,
                rkey: self.local.rkey(),
                len: encoded.len() as u32,
            },
        };
        let wire = req.encode_with_ctx(req_id, dlsm_trace::current_ctx());
        let attempt_timeout = self.policy.per_attempt(timeout);
        let result = (|| {
            for attempt in 0..self.policy.max_attempts.max(1) {
                if attempt > 0 {
                    self.note_retry();
                    if self.policy.reconnect_after != 0 && attempt >= self.policy.reconnect_after {
                        let _ = self.reconnect();
                    }
                    // HOTPATH: retry backoff only runs after an attempt already
                // timed out — latency is dominated by the loss, not the sleep.
                std::thread::sleep(self.policy.backoff_for(attempt - 1));
                }
                match self.compact_attempt(&wire, req_id, &cell, attempt_timeout) {
                    Err(MemNodeError::Timeout) => continue,
                    other => return other,
                }
            }
            Err(MemNodeError::Timeout)
        })();
        waiter.unregister(unique_id);
        if matches!(result, Err(MemNodeError::Timeout)) {
            // The compaction may still complete server-side; reclaim it.
            let _ = self.cancel_compact(req_id, timeout.min(Duration::from_secs(5)));
        }
        result
    }

    fn compact_attempt(
        &mut self,
        wire: &[u8],
        req_id: u64,
        cell: &Arc<WaitCell>,
        timeout: Duration,
    ) -> Result<CompactReply> {
        cell.reset();
        self.qp.post_send(wire.to_vec(), 8)?;
        if self.qp.poll_one_blocking(timeout.min(Duration::from_secs(10))).is_err() {
            return Err(MemNodeError::Timeout);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() || !cell.wait(remaining) {
                return Err(MemNodeError::Timeout);
            }
            match self.read_reply(req_id)? {
                Some(payload) => {
                    let (&status, body) = payload
                        .split_first()
                        .ok_or_else(|| MemNodeError::BadMessage("empty compaction reply".into()))?;
                    if status != 0 {
                        return Err(MemNodeError::RemoteError(
                            String::from_utf8_lossy(body).into_owned(),
                        ));
                    }
                    return CompactReply::decode(body);
                }
                // Stale wake-up (frame from an earlier request); rearm.
                None => cell.reset(),
            }
        }
    }
}

struct WaitCell {
    done: Mutex<bool>,
    cv: Condvar,
}

impl WaitCell {
    fn wait(&self, timeout: Duration) -> bool {
        let mut done = self.done.lock();
        if *done {
            return true;
        }
        self.cv.wait_for(&mut done, timeout);
        *done
    }

    fn signal(&self) {
        let mut done = self.done.lock();
        *done = true;
        self.cv.notify_all();
    }

    /// Rearm after a stale wake-up so the next [`WaitCell::wait`] blocks.
    fn reset(&self) {
        *self.done.lock() = false;
    }
}

/// The compute-node thread notifier: consumes immediate events from the
/// node's completion channel and wakes the requester registered under the
/// event's unique id (paper Sec. X-D2, "sleep & wake up through RDMA write
/// with immediate").
pub struct ImmWaiter {
    pending: Arc<Mutex<HashMap<u32, Arc<WaitCell>>>>,
    next_id: AtomicU32,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ImmWaiter {
    /// Start the notifier thread for `node`.
    ///
    /// There must be at most one `ImmWaiter` per node: it consumes *all*
    /// immediate events arriving at the node.
    pub fn start(node: Arc<Node>) -> ImmWaiter {
        let pending: Arc<Mutex<HashMap<u32, Arc<WaitCell>>>> = Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let pending = Arc::clone(&pending);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match node.recv_imm(Duration::from_millis(20)) {
                        Ok(ev) => {
                            let cell = pending.lock().get(&ev.imm).cloned();
                            if let Some(cell) = cell {
                                cell.signal();
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })
        };
        ImmWaiter { pending, next_id: AtomicU32::new(1), stop, thread: Some(thread) }
    }

    fn register(&self) -> (u32, Arc<WaitCell>) {
        // ORDERING: relaxed — compaction unique-id generation; uniqueness only.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(WaitCell { done: Mutex::new(false), cv: Condvar::new() });
        self.pending.lock().insert(id, Arc::clone(&cell));
        (id, cell)
    }

    fn unregister(&self, id: u32) {
        self.pending.lock().remove(&id);
    }
}

impl Drop for ImmWaiter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{MemServer, MemServerConfig};
    use crate::wire::{InputTable, TableFormat};
    use dlsm_sstable::byte_addr::{ByteAddrBuilder, ByteAddrReader, TableGet, TableMeta};
    use dlsm_sstable::key::{InternalKey, ValueType, MAX_SEQ};
    use dlsm_sstable::source::RegionSource;
    use rdma_sim::NetworkProfile;

    fn cluster() -> (Arc<Fabric>, Arc<Node>, MemServer) {
        let fabric = Fabric::new(NetworkProfile::instant());
        let compute = fabric.add_node();
        let server = MemServer::start(
            &fabric,
            MemServerConfig {
                region_size: 32 << 20,
                flush_zone: 8 << 20,
                compaction_workers: 2,
                dispatchers: 1,
            },
        );
        (fabric, compute, server)
    }

    #[test]
    fn ping_roundtrip() {
        let (fabric, compute, server) = cluster();
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 4096).unwrap();
        let reply = client.ping(b"are-you-there", Duration::from_secs(5)).unwrap();
        assert_eq!(reply, b"are-you-there");
        assert!(server.stats().rpcs.load(Ordering::Relaxed) >= 1);
        server.shutdown();
    }

    #[test]
    fn read_write_file() {
        let (fabric, compute, server) = cluster();
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 1 << 16).unwrap();
        client.write_file(1024, b"tmpfs-bytes", Duration::from_secs(5)).unwrap();
        let back = client.read_file(1024, 11, Duration::from_secs(5)).unwrap();
        assert_eq!(back, b"tmpfs-bytes");
        server.shutdown();
    }

    #[test]
    fn oversized_read_rejected_client_side() {
        let (fabric, compute, server) = cluster();
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 256).unwrap();
        assert!(client.read_file(0, 1024, Duration::from_secs(1)).is_err());
        server.shutdown();
    }

    #[test]
    fn compaction_over_rpc_end_to_end() {
        let (fabric, compute, server) = cluster();
        let waiter = ImmWaiter::start(Arc::clone(&compute));
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 1 << 16).unwrap();

        // Stage two overlapping tables in the flush zone via one-sided
        // writes, exactly as a flush would.
        let region = server.region();
        let mut qp = fabric.create_qp(compute.id(), server.node_id()).unwrap();
        let mut stage = |off: u64, entries: &[(&str, u64, ValueType, &str)]| -> InputTable {
            let mut b = ByteAddrBuilder::new(Vec::new(), 10);
            for (k, s, t, v) in entries {
                b.add(InternalKey::new(k.as_bytes(), *s, *t).as_bytes(), v.as_bytes()).unwrap();
            }
            let (data, _) = b.finish();
            qp.write_sync(&data, region.addr(off)).unwrap();
            InputTable { offset: off, len: data.len() as u64 }
        };
        let t1 = stage(0, &[("alpha", 20, ValueType::Value, "new"), ("beta", 21, ValueType::Deletion, "")]);
        let t2 = stage(
            4096,
            &[("alpha", 5, ValueType::Value, "old"), ("beta", 6, ValueType::Value, "dead"), ("gamma", 7, ValueType::Value, "keep")],
        );

        let args = CompactArgs {
            format: TableFormat::ByteAddr,
            smallest_snapshot: MAX_SEQ,
            drop_deletions: true,
            max_output_bytes: 64 << 20,
            bits_per_key: 10,
            range_lo: vec![],
            range_hi: vec![],
            inputs: vec![t1, t2],
        };
        let reply = client.compact(&args, &waiter, Duration::from_secs(10)).unwrap();
        assert_eq!(reply.records_in, 5);
        assert_eq!(reply.records_out, 2);
        assert_eq!(reply.outputs.len(), 1);

        // The output must live in the compaction zone and decode correctly.
        let out = &reply.outputs[0];
        assert!(out.offset >= server.flush_zone());
        let (meta, _) = TableMeta::decode(&out.meta).unwrap();
        let reader = ByteAddrReader::new(
            Arc::new(meta),
            RegionSource::new(Arc::clone(region), out.offset, out.len),
        );
        assert_eq!(reader.get(b"alpha", MAX_SEQ).unwrap(), TableGet::Found(b"new".to_vec()));
        assert_eq!(reader.get(b"beta", MAX_SEQ).unwrap(), TableGet::NotFound);
        assert_eq!(reader.get(b"gamma", MAX_SEQ).unwrap(), TableGet::Found(b"keep".to_vec()));

        // GC the output via the batched free RPC.
        let used_before = server.compaction_zone_in_use();
        client.free_batch(&[(out.offset, out.len.next_multiple_of(8))], Duration::from_secs(5)).unwrap();
        assert!(server.compaction_zone_in_use() < used_before);
        server.shutdown();
    }

    #[test]
    fn concurrent_compactions_use_worker_pool() {
        let (fabric, compute, server) = cluster();
        let waiter = Arc::new(ImmWaiter::start(Arc::clone(&compute)));
        let region = server.region();

        // Stage several disjoint single-entry tables.
        let mut qp = fabric.create_qp(compute.id(), server.node_id()).unwrap();
        let mut tables = Vec::new();
        for i in 0..6u64 {
            let mut b = ByteAddrBuilder::new(Vec::new(), 10);
            b.add(
                InternalKey::new(format!("k{i}").as_bytes(), 1, ValueType::Value).as_bytes(),
                b"v",
            )
            .unwrap();
            let (data, _) = b.finish();
            let off = i * 4096;
            qp.write_sync(&data, region.addr(off)).unwrap();
            tables.push(InputTable { offset: off, len: data.len() as u64 });
        }

        let mut handles = Vec::new();
        for t in tables {
            let fabric = Arc::clone(&fabric);
            let compute = Arc::clone(&compute);
            let waiter = Arc::clone(&waiter);
            let target = server.node_id();
            handles.push(std::thread::spawn(move || {
                let mut client = RpcClient::new(&fabric, &compute, target, 1 << 16).unwrap();
                let args = CompactArgs {
                    format: TableFormat::ByteAddr,
                    smallest_snapshot: MAX_SEQ,
                    drop_deletions: true,
                    max_output_bytes: 1 << 20,
                    bits_per_key: 10,
                    range_lo: vec![],
                    range_hi: vec![],
                    inputs: vec![t],
                };
                client.compact(&args, &waiter, Duration::from_secs(10)).unwrap()
            }));
        }
        for h in handles {
            let reply = h.join().unwrap();
            assert_eq!(reply.records_out, 1);
        }
        assert_eq!(server.stats().compactions.load(Ordering::Relaxed), 6);
        server.shutdown();
    }

    #[test]
    fn compaction_error_is_reported() {
        let (fabric, compute, server) = cluster();
        let waiter = ImmWaiter::start(Arc::clone(&compute));
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 1 << 16).unwrap();
        // Input "table" of garbage bytes: the merge must fail and the error
        // must come back over the reply path rather than hanging.
        let args = CompactArgs {
            format: TableFormat::Block(4096),
            smallest_snapshot: MAX_SEQ,
            drop_deletions: false,
            max_output_bytes: 1 << 20,
            bits_per_key: 10,
            range_lo: vec![],
            range_hi: vec![],
            inputs: vec![InputTable { offset: 0, len: 128 }],
        };
        let err = client.compact(&args, &waiter, Duration::from_secs(10)).unwrap_err();
        assert!(matches!(err, MemNodeError::RemoteError(_)), "got {err:?}");
        server.shutdown();
    }

    #[test]
    fn rpc_survives_lossy_fabric() {
        use rdma_sim::{ChaosPlan, Verb};
        let (fabric, compute, server) = cluster();
        let seed = 0xD15A57E4u64;
        let plan =
            ChaosPlan::new(seed).drop(Verb::Send, 0.15).drop(Verb::Write, 0.10).drop(Verb::FetchAdd, 0.10);
        fabric.set_fault_hook(Some(Arc::new(plan)));
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 4096)
            .unwrap()
            .with_policy(RetryPolicy {
                max_attempts: 25,
                backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(8),
                reconnect_after: 5,
                attempt_timeout: None,
            });
        for i in 0..30u32 {
            let msg = i.to_le_bytes();
            let reply = client
                .ping(&msg, Duration::from_millis(250))
                .unwrap_or_else(|e| panic!("ping {i} failed under seed {seed:#x}: {e}"));
            assert_eq!(reply, msg, "wrong echo under seed {seed:#x}");
        }
        fabric.set_fault_hook(None);
        assert!(client.retries() > 0, "a 15% send-drop rate over 30 pings must cause retries");
        server.shutdown();
    }

    #[test]
    fn delayed_request_is_deduped_not_reexecuted() {
        use rdma_sim::{FaultHook, OpContext, Verb};
        use std::sync::atomic::AtomicU64;

        // Delay only the first SEND long enough that the client retries;
        // the original still arrives later as a duplicate.
        struct DelayFirstSend {
            remaining: AtomicU64,
        }
        impl FaultHook for DelayFirstSend {
            fn delay(&self, ctx: &OpContext) -> Duration {
                let first = ctx.verb == Verb::Send
                    && self
                        .remaining
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                        .is_ok();
                if first {
                    Duration::from_millis(200)
                } else {
                    Duration::ZERO
                }
            }
        }

        let (fabric, compute, server) = cluster();
        fabric.set_fault_hook(Some(Arc::new(DelayFirstSend { remaining: AtomicU64::new(1) })));
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 4096)
            .unwrap()
            .with_policy(RetryPolicy {
                max_attempts: 10,
                backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(16),
                reconnect_after: 0,
                attempt_timeout: None,
            });
        let reply = client.ping(b"dedup-me", Duration::from_millis(50)).unwrap();
        assert_eq!(reply, b"dedup-me");
        assert!(client.retries() >= 1, "the delayed first attempt must have timed out");
        fabric.set_fault_hook(None);
        // The late duplicate(s) must be answered from the dedup window, not
        // executed again.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().replays.load(Ordering::Relaxed)
            + server.stats().dup_dropped.load(Ordering::Relaxed)
            == 0
        {
            assert!(Instant::now() < deadline, "duplicate was never detected");
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
    }

    #[test]
    fn client_survives_memnode_crash_and_restart() {
        let (fabric, compute, mut server) = cluster();
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 4096)
            .unwrap()
            .with_policy(RetryPolicy {
                max_attempts: 40,
                backoff: Duration::from_millis(4),
                max_backoff: Duration::from_millis(25),
                reconnect_after: 3,
                attempt_timeout: None,
            });
        assert_eq!(client.ping(b"before", Duration::from_secs(5)).unwrap(), b"before");

        server.crash();
        assert!(server.is_crashed());
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            server.restart();
            server
        });
        // Pings issued while the node is down must ride the retry loop
        // (including a reconnect) until the node is back.
        let reply = client.ping(b"after-crash", Duration::from_millis(60)).unwrap();
        assert_eq!(reply, b"after-crash");
        let server = handle.join().unwrap();
        assert_eq!(server.stats().restarts.load(Ordering::Relaxed), 1);
        assert!(client.retries() >= 1, "pinging a crashed node must require retries");
        server.shutdown();
    }
}
