//! Compute-node side of the RPC protocol.
//!
//! [`RpcClient`] is thread-local (one queue pair and one registered
//! reply/argument buffer per thread, per the dLSM RDMA-manager design,
//! Sec. X-B). General-purpose calls poll a flag word at the end of the reply
//! buffer (Sec. X-D1). Compaction calls sleep on a condition variable and
//! are woken by [`ImmWaiter`] — the "thread notifier" that routes
//! WRITE-with-IMMEDIATE events to requesters by unique id (Sec. X-D2).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rdma_sim::{Fabric, MemoryRegion, Node, NodeId, QueuePair};

use crate::wire::{BufDesc, CompactArgs, CompactReply, Request};
use crate::{MemNodeError, Result};

/// Thread-local RPC endpoint talking to one memory node.
pub struct RpcClient {
    fabric: Arc<Fabric>,
    local_node: Arc<Node>,
    remote: NodeId,
    qp: QueuePair,
    /// Registered local buffer: `[reply | args]`.
    local: Arc<MemoryRegion>,
    reply_len: u32,
    arg_off: u64,
    arg_len: u32,
}

impl RpcClient {
    /// Create a client on `local_node` targeting `remote`. `buf_size` bytes
    /// are registered for the reply buffer and as many again for the
    /// argument buffer.
    pub fn new(
        fabric: &Arc<Fabric>,
        local_node: &Arc<Node>,
        remote: NodeId,
        buf_size: usize,
    ) -> Result<RpcClient> {
        let buf_size = buf_size.next_multiple_of(8).max(64);
        let local = local_node.register_region(buf_size * 2);
        let qp = fabric.create_qp(local_node.id(), remote)?;
        Ok(RpcClient {
            fabric: Arc::clone(fabric),
            local_node: Arc::clone(local_node),
            remote,
            qp,
            local,
            reply_len: buf_size as u32,
            arg_off: buf_size as u64,
            arg_len: buf_size as u32,
        })
    }

    /// Create another client to the same memory node with the same buffer
    /// sizes (each thread/task gets its own queue pair and buffers).
    pub fn reopen(&self) -> Result<RpcClient> {
        RpcClient::new(&self.fabric, &self.local_node, self.remote, self.reply_len as usize)
    }

    /// The memory node this client talks to.
    pub fn remote_node(&self) -> NodeId {
        self.remote
    }

    /// Descriptor of this client's reply buffer (attached to every request).
    pub fn reply_desc(&self) -> BufDesc {
        BufDesc {
            mr: self.local.mr().0,
            offset: 0,
            rkey: self.local.rkey(),
            len: self.reply_len,
        }
    }

    fn flag_off(&self) -> u64 {
        u64::from(self.reply_len) - 8
    }

    /// Issue `request` and poll the flag until the reply lands.
    fn call(&mut self, request: &Request, timeout: Duration) -> Result<Vec<u8>> {
        // Reset the flag before the responder can race us.
        self.local.atomic_u64(self.flag_off())?.store(0, Ordering::Release);
        self.qp.post_send(request.encode(), 7)?;
        self.qp.poll_one_blocking(Duration::from_secs(10))?;
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            if self.local.atomic_load(self.flag_off())? != 0 {
                break;
            }
            if Instant::now() >= deadline {
                return Err(MemNodeError::Timeout);
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        self.read_reply()
    }

    fn read_reply(&self) -> Result<Vec<u8>> {
        let mut len_b = [0u8; 4];
        self.local.local_read(0, &mut len_b)?;
        let len = u32::from_le_bytes(len_b) as usize;
        if len + 4 + 8 > self.reply_len as usize {
            return Err(MemNodeError::BadMessage(format!("reply length {len} out of range")));
        }
        let mut payload = vec![0u8; len];
        self.local.local_read(4, &mut payload)?;
        Ok(payload)
    }

    /// Liveness/latency probe: echoes `payload`.
    pub fn ping(&mut self, payload: &[u8], timeout: Duration) -> Result<Vec<u8>> {
        self.call(&Request::Ping { reply: self.reply_desc(), payload: payload.to_vec() }, timeout)
    }

    /// Batched GC of extents in the memory node's compaction zone
    /// (Sec. V-B: frees are grouped locally and shipped together).
    pub fn free_batch(&mut self, extents: &[(u64, u64)], timeout: Duration) -> Result<()> {
        let reply = self.call(
            &Request::FreeBatch { reply: self.reply_desc(), extents: extents.to_vec() },
            timeout,
        )?;
        if reply.first() != Some(&0) {
            return Err(MemNodeError::RemoteError("free batch failed".into()));
        }
        Ok(())
    }

    /// Largest payload a single [`RpcClient::read_file`] can return.
    pub fn max_read_len(&self) -> usize {
        self.reply_len as usize - 12
    }

    /// Two-sided "file" read from the memory node's region (the Nova-LSM
    /// tmpfs-style data path: request → server copy → reply).
    pub fn read_file(&mut self, offset: u64, len: u32, timeout: Duration) -> Result<Vec<u8>> {
        if u64::from(len) + 12 > u64::from(self.reply_len) {
            return Err(MemNodeError::BadMessage("read larger than reply buffer".into()));
        }
        self.call(&Request::ReadFile { reply: self.reply_desc(), offset, len }, timeout)
    }

    /// Two-sided "file" write into the memory node's region.
    pub fn write_file(&mut self, offset: u64, data: &[u8], timeout: Duration) -> Result<()> {
        let reply = self.call(
            &Request::WriteFile { reply: self.reply_desc(), offset, data: data.to_vec() },
            timeout,
        )?;
        if reply.first() != Some(&0) {
            return Err(MemNodeError::RemoteError("write failed".into()));
        }
        Ok(())
    }

    /// Near-data compaction: serialize `args` into the registered argument
    /// buffer, send the small request, **sleep** until the memory node's
    /// WRITE-with-IMMEDIATE wakes this thread via `waiter`, then decode the
    /// reply.
    pub fn compact(
        &mut self,
        args: &CompactArgs,
        waiter: &ImmWaiter,
        timeout: Duration,
    ) -> Result<CompactReply> {
        let encoded = args.encode();
        if encoded.len() > self.arg_len as usize {
            return Err(MemNodeError::BadMessage(format!(
                "compaction args of {} bytes exceed the {}-byte argument buffer",
                encoded.len(),
                self.arg_len
            )));
        }
        self.local.local_write(self.arg_off, &encoded)?;
        let (unique_id, cell) = waiter.register();
        let req = Request::Compact {
            reply: self.reply_desc(),
            unique_id,
            args: BufDesc {
                mr: self.local.mr().0,
                offset: self.arg_off,
                rkey: self.local.rkey(),
                len: encoded.len() as u32,
            },
        };
        self.qp.post_send(req.encode(), 8)?;
        self.qp.poll_one_blocking(Duration::from_secs(10))?;
        let woke = cell.wait(timeout);
        waiter.unregister(unique_id);
        if !woke {
            return Err(MemNodeError::Timeout);
        }
        let payload = self.read_reply()?;
        let (&status, body) = payload
            .split_first()
            .ok_or_else(|| MemNodeError::BadMessage("empty compaction reply".into()))?;
        if status != 0 {
            return Err(MemNodeError::RemoteError(String::from_utf8_lossy(body).into_owned()));
        }
        CompactReply::decode(body)
    }
}

struct WaitCell {
    done: Mutex<bool>,
    cv: Condvar,
}

impl WaitCell {
    fn wait(&self, timeout: Duration) -> bool {
        let mut done = self.done.lock();
        if *done {
            return true;
        }
        self.cv.wait_for(&mut done, timeout);
        *done
    }

    fn signal(&self) {
        let mut done = self.done.lock();
        *done = true;
        self.cv.notify_all();
    }
}

/// The compute-node thread notifier: consumes immediate events from the
/// node's completion channel and wakes the requester registered under the
/// event's unique id (paper Sec. X-D2, "sleep & wake up through RDMA write
/// with immediate").
pub struct ImmWaiter {
    pending: Arc<Mutex<HashMap<u32, Arc<WaitCell>>>>,
    next_id: AtomicU32,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ImmWaiter {
    /// Start the notifier thread for `node`.
    ///
    /// There must be at most one `ImmWaiter` per node: it consumes *all*
    /// immediate events arriving at the node.
    pub fn start(node: Arc<Node>) -> ImmWaiter {
        let pending: Arc<Mutex<HashMap<u32, Arc<WaitCell>>>> = Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let pending = Arc::clone(&pending);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match node.recv_imm(Duration::from_millis(20)) {
                        Ok(ev) => {
                            let cell = pending.lock().get(&ev.imm).cloned();
                            if let Some(cell) = cell {
                                cell.signal();
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })
        };
        ImmWaiter { pending, next_id: AtomicU32::new(1), stop, thread: Some(thread) }
    }

    fn register(&self) -> (u32, Arc<WaitCell>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(WaitCell { done: Mutex::new(false), cv: Condvar::new() });
        self.pending.lock().insert(id, Arc::clone(&cell));
        (id, cell)
    }

    fn unregister(&self, id: u32) {
        self.pending.lock().remove(&id);
    }
}

impl Drop for ImmWaiter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{MemServer, MemServerConfig};
    use crate::wire::{InputTable, TableFormat};
    use dlsm_sstable::byte_addr::{ByteAddrBuilder, ByteAddrReader, TableGet, TableMeta};
    use dlsm_sstable::key::{InternalKey, ValueType, MAX_SEQ};
    use dlsm_sstable::source::RegionSource;
    use rdma_sim::NetworkProfile;

    fn cluster() -> (Arc<Fabric>, Arc<Node>, MemServer) {
        let fabric = Fabric::new(NetworkProfile::instant());
        let compute = fabric.add_node();
        let server = MemServer::start(
            &fabric,
            MemServerConfig {
                region_size: 32 << 20,
                flush_zone: 8 << 20,
                compaction_workers: 2,
                dispatchers: 1,
            },
        );
        (fabric, compute, server)
    }

    #[test]
    fn ping_roundtrip() {
        let (fabric, compute, server) = cluster();
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 4096).unwrap();
        let reply = client.ping(b"are-you-there", Duration::from_secs(5)).unwrap();
        assert_eq!(reply, b"are-you-there");
        assert!(server.stats().rpcs.load(Ordering::Relaxed) >= 1);
        server.shutdown();
    }

    #[test]
    fn read_write_file() {
        let (fabric, compute, server) = cluster();
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 1 << 16).unwrap();
        client.write_file(1024, b"tmpfs-bytes", Duration::from_secs(5)).unwrap();
        let back = client.read_file(1024, 11, Duration::from_secs(5)).unwrap();
        assert_eq!(back, b"tmpfs-bytes");
        server.shutdown();
    }

    #[test]
    fn oversized_read_rejected_client_side() {
        let (fabric, compute, server) = cluster();
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 256).unwrap();
        assert!(client.read_file(0, 1024, Duration::from_secs(1)).is_err());
        server.shutdown();
    }

    #[test]
    fn compaction_over_rpc_end_to_end() {
        let (fabric, compute, server) = cluster();
        let waiter = ImmWaiter::start(Arc::clone(&compute));
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 1 << 16).unwrap();

        // Stage two overlapping tables in the flush zone via one-sided
        // writes, exactly as a flush would.
        let region = server.region();
        let mut qp = fabric.create_qp(compute.id(), server.node_id()).unwrap();
        let mut stage = |off: u64, entries: &[(&str, u64, ValueType, &str)]| -> InputTable {
            let mut b = ByteAddrBuilder::new(Vec::new(), 10);
            for (k, s, t, v) in entries {
                b.add(InternalKey::new(k.as_bytes(), *s, *t).as_bytes(), v.as_bytes()).unwrap();
            }
            let (data, _) = b.finish();
            qp.write_sync(&data, region.addr(off)).unwrap();
            InputTable { offset: off, len: data.len() as u64 }
        };
        let t1 = stage(0, &[("alpha", 20, ValueType::Value, "new"), ("beta", 21, ValueType::Deletion, "")]);
        let t2 = stage(
            4096,
            &[("alpha", 5, ValueType::Value, "old"), ("beta", 6, ValueType::Value, "dead"), ("gamma", 7, ValueType::Value, "keep")],
        );

        let args = CompactArgs {
            format: TableFormat::ByteAddr,
            smallest_snapshot: MAX_SEQ,
            drop_deletions: true,
            max_output_bytes: 64 << 20,
            bits_per_key: 10,
            range_lo: vec![],
            range_hi: vec![],
            inputs: vec![t1, t2],
        };
        let reply = client.compact(&args, &waiter, Duration::from_secs(10)).unwrap();
        assert_eq!(reply.records_in, 5);
        assert_eq!(reply.records_out, 2);
        assert_eq!(reply.outputs.len(), 1);

        // The output must live in the compaction zone and decode correctly.
        let out = &reply.outputs[0];
        assert!(out.offset >= server.flush_zone());
        let (meta, _) = TableMeta::decode(&out.meta).unwrap();
        let reader = ByteAddrReader::new(
            Arc::new(meta),
            RegionSource::new(Arc::clone(region), out.offset, out.len),
        );
        assert_eq!(reader.get(b"alpha", MAX_SEQ).unwrap(), TableGet::Found(b"new".to_vec()));
        assert_eq!(reader.get(b"beta", MAX_SEQ).unwrap(), TableGet::NotFound);
        assert_eq!(reader.get(b"gamma", MAX_SEQ).unwrap(), TableGet::Found(b"keep".to_vec()));

        // GC the output via the batched free RPC.
        let used_before = server.compaction_zone_in_use();
        client.free_batch(&[(out.offset, out.len.next_multiple_of(8))], Duration::from_secs(5)).unwrap();
        assert!(server.compaction_zone_in_use() < used_before);
        server.shutdown();
    }

    #[test]
    fn concurrent_compactions_use_worker_pool() {
        let (fabric, compute, server) = cluster();
        let waiter = Arc::new(ImmWaiter::start(Arc::clone(&compute)));
        let region = server.region();

        // Stage several disjoint single-entry tables.
        let mut qp = fabric.create_qp(compute.id(), server.node_id()).unwrap();
        let mut tables = Vec::new();
        for i in 0..6u64 {
            let mut b = ByteAddrBuilder::new(Vec::new(), 10);
            b.add(
                InternalKey::new(format!("k{i}").as_bytes(), 1, ValueType::Value).as_bytes(),
                b"v",
            )
            .unwrap();
            let (data, _) = b.finish();
            let off = i * 4096;
            qp.write_sync(&data, region.addr(off)).unwrap();
            tables.push(InputTable { offset: off, len: data.len() as u64 });
        }

        let mut handles = Vec::new();
        for t in tables {
            let fabric = Arc::clone(&fabric);
            let compute = Arc::clone(&compute);
            let waiter = Arc::clone(&waiter);
            let target = server.node_id();
            handles.push(std::thread::spawn(move || {
                let mut client = RpcClient::new(&fabric, &compute, target, 1 << 16).unwrap();
                let args = CompactArgs {
                    format: TableFormat::ByteAddr,
                    smallest_snapshot: MAX_SEQ,
                    drop_deletions: true,
                    max_output_bytes: 1 << 20,
                    bits_per_key: 10,
                    range_lo: vec![],
                    range_hi: vec![],
                    inputs: vec![t],
                };
                client.compact(&args, &waiter, Duration::from_secs(10)).unwrap()
            }));
        }
        for h in handles {
            let reply = h.join().unwrap();
            assert_eq!(reply.records_out, 1);
        }
        assert_eq!(server.stats().compactions.load(Ordering::Relaxed), 6);
        server.shutdown();
    }

    #[test]
    fn compaction_error_is_reported() {
        let (fabric, compute, server) = cluster();
        let waiter = ImmWaiter::start(Arc::clone(&compute));
        let mut client = RpcClient::new(&fabric, &compute, server.node_id(), 1 << 16).unwrap();
        // Input "table" of garbage bytes: the merge must fail and the error
        // must come back over the reply path rather than hanging.
        let args = CompactArgs {
            format: TableFormat::Block(4096),
            smallest_snapshot: MAX_SEQ,
            drop_deletions: false,
            max_output_bytes: 1 << 20,
            bits_per_key: 10,
            range_lo: vec![],
            range_hi: vec![],
            inputs: vec![InputTable { offset: 0, len: 128 }],
        };
        let err = client.compact(&args, &waiter, Duration::from_secs(10)).unwrap_err();
        assert!(matches!(err, MemNodeError::RemoteError(_)), "got {err:?}");
        server.shutdown();
    }
}
