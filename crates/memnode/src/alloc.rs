//! Free-list sub-allocation within a registered region.
//!
//! Large regions are registered with the NIC once (paper Sec. X-B: frequent
//! small registrations are expensive) and then sub-allocated in user space.
//! Both the compute node (flush zone) and the memory node (compaction zone)
//! run one of these allocators over their half of the region; each side
//! frees only what it allocated (paper Sec. V-B), with remote frees batched
//! through the `FreeBatch` RPC.

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// First-fit free-list allocator over `[base, base + len)`, 8-byte aligned,
/// with coalescing on free.
pub struct RegionAllocator {
    base: u64,
    len: u64,
    inner: Mutex<Inner>,
}

struct Inner {
    /// start -> length of each free extent (disjoint, non-adjacent).
    free: BTreeMap<u64, u64>,
    in_use: u64,
}

impl RegionAllocator {
    /// Manage the extent `[base, base + len)`.
    pub fn new(base: u64, len: u64) -> RegionAllocator {
        let mut free = BTreeMap::new();
        if len > 0 {
            free.insert(base, len);
        }
        RegionAllocator { base, len, inner: Mutex::new(Inner { free, in_use: 0 }) }
    }

    /// Start of the managed extent.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> u64 {
        self.len
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.inner.lock().in_use
    }

    /// Allocate `size` bytes (rounded up to 8); returns the offset.
    pub fn alloc(&self, size: u64) -> Option<u64> {
        if size == 0 {
            return None;
        }
        let size = size.next_multiple_of(8);
        let mut inner = self.inner.lock();
        // First fit.
        let mut found = None;
        for (&start, &flen) in inner.free.iter() {
            if flen >= size {
                found = Some((start, flen));
                break;
            }
        }
        let (start, flen) = found?;
        inner.free.remove(&start);
        if flen > size {
            inner.free.insert(start + size, flen - size);
        }
        inner.in_use += size;
        Some(start)
    }

    /// Free the extent previously returned by [`RegionAllocator::alloc`]
    /// with the same `size` (pre-rounding is applied identically).
    ///
    /// # Panics
    /// Panics (in debug builds) on frees that overlap existing free space —
    /// a double free.
    pub fn free(&self, offset: u64, size: u64) {
        if size == 0 {
            return;
        }
        let size = size.next_multiple_of(8);
        let mut inner = self.inner.lock();
        debug_assert!(offset >= self.base && offset + size <= self.base + self.len);
        inner.in_use = inner.in_use.saturating_sub(size);
        let mut start = offset;
        let mut len = size;
        // Coalesce with the predecessor.
        if let Some((&pstart, &plen)) = inner.free.range(..offset).next_back() {
            debug_assert!(pstart + plen <= offset, "double free / overlap at {offset}");
            if pstart + plen == offset {
                inner.free.remove(&pstart);
                start = pstart;
                len += plen;
            }
        }
        // Coalesce with the successor.
        if let Some((&nstart, &nlen)) = inner.free.range(offset..).next() {
            debug_assert!(offset + size <= nstart, "double free / overlap at {offset}");
            if offset + size == nstart {
                inner.free.remove(&nstart);
                len += nlen;
            }
        }
        inner.free.insert(start, len);
    }

    /// Number of free extents (fragmentation metric).
    pub fn fragments(&self) -> usize {
        self.inner.lock().free.len()
    }
}

impl std::fmt::Debug for RegionAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionAllocator")
            .field("base", &self.base)
            .field("capacity", &self.len)
            .field("in_use", &self.in_use())
            .field("fragments", &self.fragments())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let a = RegionAllocator::new(0, 1024);
        let x = a.alloc(100).unwrap();
        let y = a.alloc(100).unwrap();
        assert_ne!(x, y);
        assert_eq!(a.in_use(), 104 + 104); // rounded to 8
        a.free(x, 100);
        a.free(y, 100);
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.fragments(), 1, "extents must coalesce back to one");
    }

    #[test]
    fn allocations_are_disjoint() {
        let a = RegionAllocator::new(0, 1 << 16);
        let mut got: Vec<(u64, u64)> = Vec::new();
        for i in 1..100u64 {
            let size = (i * 7) % 200 + 1;
            let off = a.alloc(size).unwrap();
            for &(o, s) in &got {
                assert!(off + size <= o || o + s <= off, "overlap");
            }
            got.push((off, size.next_multiple_of(8)));
        }
    }

    #[test]
    fn exhausted_region_returns_none() {
        let a = RegionAllocator::new(0, 64);
        assert!(a.alloc(64).is_some());
        assert!(a.alloc(8).is_none());
    }

    #[test]
    fn free_enables_reuse() {
        let a = RegionAllocator::new(0, 128);
        let x = a.alloc(128).unwrap();
        assert!(a.alloc(8).is_none());
        a.free(x, 128);
        assert!(a.alloc(128).is_some());
    }

    #[test]
    fn coalescing_defeats_fragmentation() {
        let a = RegionAllocator::new(0, 1024);
        let offs: Vec<u64> = (0..8).map(|_| a.alloc(128).unwrap()).collect();
        // Free in an interleaved order.
        for &o in offs.iter().step_by(2) {
            a.free(o, 128);
        }
        for &o in offs.iter().skip(1).step_by(2) {
            a.free(o, 128);
        }
        assert_eq!(a.fragments(), 1);
        assert!(a.alloc(1024).is_some());
    }

    #[test]
    fn nonzero_base_respected() {
        let a = RegionAllocator::new(4096, 512);
        let off = a.alloc(64).unwrap();
        assert!(off >= 4096 && off + 64 <= 4096 + 512);
        a.free(off, 64);
    }

    #[test]
    fn zero_size_rejected() {
        let a = RegionAllocator::new(0, 64);
        assert!(a.alloc(0).is_none());
    }

    #[test]
    fn concurrent_alloc_free() {
        use std::sync::Arc;
        let a = Arc::new(RegionAllocator::new(0, 1 << 20));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let size = i % 512 + 8;
                    if let Some(off) = a.alloc(size) {
                        a.free(off, size);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.fragments(), 1);
    }
}
