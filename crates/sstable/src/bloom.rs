//! Bloom filter (LevelDB-style: one base hash + double hashing).
//!
//! Built over user keys at table-build time; the filter lives on the compute
//! node so a negative probe skips a remote read entirely (paper Sec. II-C,
//! VI). The default is the paper's 10 bits per key.

/// Default bits per key used throughout the paper's evaluation.
pub const DEFAULT_BITS_PER_KEY: usize = 10;

/// 32-bit FNV-1a-flavoured hash with a seed, matching LevelDB's approach of
/// deriving all probe positions from one hash via rotation.
#[inline]
fn bloom_hash(data: &[u8]) -> u32 {
    // Murmur-inspired simple hash (LevelDB's `Hash`).
    const SEED: u32 = 0xBC9F_1D34;
    const M: u32 = 0xC6A4_A793;
    let mut h = SEED ^ (data.len() as u32).wrapping_mul(M);
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        // PANIC-SAFE: chunks_exact(4) yields exactly 4-byte slices.
        let w = u32::from_le_bytes(c.try_into().expect("4 bytes"));
        h = h.wrapping_add(w).wrapping_mul(M);
        h ^= h >> 16;
    }
    for &b in chunks.remainder() {
        h = h.wrapping_add(u32::from(b)).wrapping_mul(M);
        h ^= h >> 24;
    }
    h
}

/// An immutable bloom filter over a set of keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    k: u8,
}

impl BloomFilter {
    /// Build a filter for `keys` with `bits_per_key` bits of budget per key.
    pub fn build<'a>(keys: impl ExactSizeIterator<Item = &'a [u8]>, bits_per_key: usize) -> BloomFilter {
        let n = keys.len().max(1);
        // k = bits_per_key * ln(2), clamped like LevelDB.
        let k = ((bits_per_key as f64 * 0.69) as usize).clamp(1, 30) as u8;
        let nbits = (n * bits_per_key).max(64);
        let nbytes = nbits.div_ceil(8);
        let nbits = nbytes * 8;
        let mut bits = vec![0u8; nbytes];
        for key in keys {
            let mut h = bloom_hash(key);
            let delta = h.rotate_right(17);
            for _ in 0..k {
                let pos = (h as usize) % nbits;
                bits[pos / 8] |= 1 << (pos % 8);
                h = h.wrapping_add(delta);
            }
        }
        BloomFilter { bits, k }
    }

    /// True if `key` may be in the set (never a false negative).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.bits.is_empty() {
            return true;
        }
        let nbits = self.bits.len() * 8;
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17);
        for _ in 0..self.k {
            let pos = (h as usize) % nbits;
            if self.bits[pos / 8] & (1 << (pos % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }

    /// Serialize: filter bits followed by the probe count.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.bits.clone();
        out.push(self.k);
        out
    }

    /// Deserialize a filter produced by [`BloomFilter::encode`].
    pub fn decode(data: &[u8]) -> Option<BloomFilter> {
        let (&k, bits) = data.split_last()?;
        if k == 0 || k > 30 {
            return None;
        }
        Some(BloomFilter { bits: bits.to_vec(), k })
    }

    /// Size of the encoded filter in bytes.
    pub fn encoded_len(&self) -> usize {
        self.bits.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i:08}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(10_000);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), DEFAULT_BITS_PER_KEY);
        for k in &ks {
            assert!(f.may_contain(k), "false negative for {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let ks = keys(10_000);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), DEFAULT_BITS_PER_KEY);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            let probe = format!("absent-{i:08}");
            if f.may_contain(probe.as_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        // 10 bits/key should give ~1%; allow generous slack.
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn empty_filter_is_valid() {
        let f = BloomFilter::build(std::iter::empty::<&[u8]>(), 10);
        // An empty table's filter can say anything; it must just not crash.
        let _ = f.may_contain(b"whatever");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ks = keys(500);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        let enc = f.encode();
        assert_eq!(enc.len(), f.encoded_len());
        let g = BloomFilter::decode(&enc).unwrap();
        assert_eq!(f, g);
        for k in &ks {
            assert!(g.may_contain(k));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(&[]).is_none());
        assert!(BloomFilter::decode(&[0]).is_none()); // k = 0
        assert!(BloomFilter::decode(&[0xFF, 200]).is_none()); // k too large
    }

    #[test]
    fn more_bits_fewer_false_positives() {
        let ks = keys(5_000);
        let f4 = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 4);
        let f16 = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 16);
        let count_fp = |f: &BloomFilter| {
            (0..5_000).filter(|i| f.may_contain(format!("no-{i}").as_bytes())).count()
        };
        assert!(count_fp(&f16) < count_fp(&f4));
    }
}
