//! Positional iterators and the k-way merging iterator.

use std::cmp::Ordering;

use crate::key::compare_internal;
use crate::Result;

/// LevelDB-style positional iterator over `(internal_key, value)` records in
/// internal-key order.
///
/// After construction an iterator is *invalid*; position it with
/// [`ForwardIter::seek`] or [`ForwardIter::seek_to_first`]. `key`/`value`
/// may only be called while `valid()`.
#[allow(clippy::should_implement_trait)] // positional `next`, LevelDB-style
pub trait ForwardIter {
    /// Whether the iterator points at a record.
    fn valid(&self) -> bool;

    /// Internal key at the current position.
    fn key(&self) -> &[u8];

    /// Value at the current position.
    fn value(&self) -> &[u8];

    /// Advance to the next record (may become invalid).
    fn next(&mut self) -> Result<()>;

    /// Position at the first record with key ≥ `ikey`.
    fn seek(&mut self, ikey: &[u8]) -> Result<()>;

    /// Position at the first record.
    fn seek_to_first(&mut self) -> Result<()>;
}

impl<T: ForwardIter + ?Sized> ForwardIter for Box<T> {
    fn valid(&self) -> bool {
        (**self).valid()
    }
    fn key(&self) -> &[u8] {
        (**self).key()
    }
    fn value(&self) -> &[u8] {
        (**self).value()
    }
    fn next(&mut self) -> Result<()> {
        (**self).next()
    }
    fn seek(&mut self, ikey: &[u8]) -> Result<()> {
        (**self).seek(ikey)
    }
    fn seek_to_first(&mut self) -> Result<()> {
        (**self).seek_to_first()
    }
}

/// An iterator over an in-memory `Vec` of records (tests, small merges).
#[derive(Debug, Clone, Default)]
pub struct VecIter {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
}

impl VecIter {
    /// Wrap `entries`, which must already be sorted by internal key.
    pub fn new(entries: Vec<(Vec<u8>, Vec<u8>)>) -> VecIter {
        debug_assert!(entries.windows(2).all(|w| compare_internal(&w[0].0, &w[1].0) == Ordering::Less));
        VecIter { entries, pos: usize::MAX }
    }
}

impl ForwardIter for VecIter {
    fn valid(&self) -> bool {
        self.pos < self.entries.len()
    }
    fn key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }
    fn value(&self) -> &[u8] {
        &self.entries[self.pos].1
    }
    fn next(&mut self) -> Result<()> {
        debug_assert!(self.valid());
        self.pos += 1;
        Ok(())
    }
    fn seek(&mut self, ikey: &[u8]) -> Result<()> {
        self.pos = self.entries.partition_point(|(k, _)| compare_internal(k, ikey) == Ordering::Less);
        Ok(())
    }
    fn seek_to_first(&mut self) -> Result<()> {
        self.pos = 0;
        Ok(())
    }
}

/// K-way merge of child iterators into one internal-key-ordered stream.
///
/// The level count of an LSM-tree is small (≤ 8 here), so the merge picks
/// the minimum child by linear scan; ties (which cannot happen between
/// well-formed LSM inputs, as sequence numbers are unique) resolve to the
/// earliest child, which in LSM usage is the *newest* data.
pub struct MergingIter<I: ForwardIter> {
    children: Vec<I>,
    current: Option<usize>,
}

impl<I: ForwardIter> MergingIter<I> {
    /// Merge `children`. The result starts invalid.
    pub fn new(children: Vec<I>) -> MergingIter<I> {
        MergingIter { children, current: None }
    }

    /// Number of child iterators.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    fn find_smallest(&mut self) {
        let mut best: Option<usize> = None;
        for (i, c) in self.children.iter().enumerate() {
            if !c.valid() {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    if compare_internal(c.key(), self.children[b].key()) == Ordering::Less {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        self.current = best;
    }
}

impl<I: ForwardIter> ForwardIter for MergingIter<I> {
    fn valid(&self) -> bool {
        self.current.is_some()
    }

    // ForwardIter's contract (like LevelDB's Iterator) is that key(),
    // value(), and next() are only called while valid() — i.e. current is
    // Some. Callers in the scan/compaction paths all check valid() first.
    fn key(&self) -> &[u8] {
        // PANIC-SAFE: valid()-before-use contract, as above.
        self.children[self.current.expect("valid")].key()
    }

    fn value(&self) -> &[u8] {
        // PANIC-SAFE: valid()-before-use contract, as above.
        self.children[self.current.expect("valid")].value()
    }

    fn next(&mut self) -> Result<()> {
        // PANIC-SAFE: valid()-before-use contract, as above.
        let cur = self.current.expect("valid");
        self.children[cur].next()?;
        self.find_smallest();
        Ok(())
    }

    fn seek(&mut self, ikey: &[u8]) -> Result<()> {
        for c in &mut self.children {
            c.seek(ikey)?;
        }
        self.find_smallest();
        Ok(())
    }

    fn seek_to_first(&mut self) -> Result<()> {
        for c in &mut self.children {
            c.seek_to_first()?;
        }
        self.find_smallest();
        Ok(())
    }
}

/// Restrict an iterator to user keys in `[lo, hi)` (empty bound = open).
///
/// Compactions are split into disjoint user-key sub-ranges executed in
/// parallel (dLSM's sub-compaction); the clamp guarantees every version of a
/// user key goes to exactly one sub-task.
pub struct ClampIter<I: ForwardIter> {
    inner: I,
    lo: Vec<u8>,
    hi: Vec<u8>,
}

impl<I: ForwardIter> ClampIter<I> {
    /// Clamp `inner` to user keys in `[lo, hi)`; empty bounds are open.
    pub fn new(inner: I, lo: Vec<u8>, hi: Vec<u8>) -> ClampIter<I> {
        ClampIter { inner, lo, hi }
    }

    fn in_range(&self) -> bool {
        if !self.inner.valid() {
            return false;
        }
        if self.hi.is_empty() {
            return true;
        }
        crate::key::user_key(self.inner.key()) < self.hi.as_slice()
    }
}

impl<I: ForwardIter> ForwardIter for ClampIter<I> {
    fn valid(&self) -> bool {
        self.in_range()
    }
    fn key(&self) -> &[u8] {
        self.inner.key()
    }
    fn value(&self) -> &[u8] {
        self.inner.value()
    }
    fn next(&mut self) -> Result<()> {
        self.inner.next()
    }
    fn seek(&mut self, ikey: &[u8]) -> Result<()> {
        self.inner.seek(ikey)
    }
    fn seek_to_first(&mut self) -> Result<()> {
        if self.lo.is_empty() {
            self.inner.seek_to_first()
        } else {
            let target = crate::key::InternalKey::for_lookup(&self.lo, crate::key::MAX_SEQ);
            self.inner.seek(target.as_bytes())
        }
    }
}

/// Drain an iterator into owned `(key, value)` pairs — test/debug helper.
pub fn collect_all<I: ForwardIter>(iter: &mut I) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut out = Vec::new();
    iter.seek_to_first()?;
    while iter.valid() {
        out.push((iter.key().to_vec(), iter.value().to_vec()));
        iter.next()?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{InternalKey, ValueType};

    fn ik(user: &str, seq: u64) -> Vec<u8> {
        InternalKey::new(user.as_bytes(), seq, ValueType::Value).into_bytes()
    }

    fn vec_iter(entries: &[(&str, u64, &str)]) -> VecIter {
        VecIter::new(
            entries
                .iter()
                .map(|(k, s, v)| (ik(k, *s), v.as_bytes().to_vec()))
                .collect(),
        )
    }

    #[test]
    fn merge_interleaves_sorted_children() {
        let a = vec_iter(&[("a", 1, "x"), ("c", 1, "x"), ("e", 1, "x")]);
        let b = vec_iter(&[("b", 1, "y"), ("d", 1, "y")]);
        let mut m = MergingIter::new(vec![a, b]);
        let keys: Vec<Vec<u8>> = collect_all(&mut m)
            .unwrap()
            .into_iter()
            .map(|(k, _)| crate::key::user_key(&k).to_vec())
            .collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec(), b"e".to_vec()]);
    }

    #[test]
    fn merge_orders_same_user_key_newest_first() {
        let newer = vec_iter(&[("k", 9, "new")]);
        let older = vec_iter(&[("k", 3, "old")]);
        let mut m = MergingIter::new(vec![older, newer]);
        let all = collect_all(&mut m).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, b"new");
        assert_eq!(all[1].1, b"old");
    }

    #[test]
    fn merge_seek() {
        let a = vec_iter(&[("a", 1, "1"), ("d", 1, "2")]);
        let b = vec_iter(&[("b", 1, "3"), ("e", 1, "4")]);
        let mut m = MergingIter::new(vec![a, b]);
        m.seek(&ik("c", (1 << 56) - 1)).unwrap();
        assert!(m.valid());
        assert_eq!(crate::key::user_key(m.key()), b"d");
        m.next().unwrap();
        assert_eq!(crate::key::user_key(m.key()), b"e");
        m.next().unwrap();
        assert!(!m.valid());
    }

    #[test]
    fn merge_of_empty_children_is_invalid() {
        let mut m = MergingIter::new(vec![VecIter::default(), VecIter::default()]);
        m.seek_to_first().unwrap();
        assert!(!m.valid());
    }

    #[test]
    fn clamp_restricts_user_key_range() {
        let i = vec_iter(&[("a", 1, "1"), ("b", 2, "2"), ("c", 3, "3"), ("d", 4, "4")]);
        let mut c = ClampIter::new(i, b"b".to_vec(), b"d".to_vec());
        let got: Vec<Vec<u8>> = collect_all(&mut c)
            .unwrap()
            .into_iter()
            .map(|(k, _)| crate::key::user_key(&k).to_vec())
            .collect();
        assert_eq!(got, vec![b"b".to_vec(), b"c".to_vec()]);
        // Open bounds pass everything through.
        let i = vec_iter(&[("a", 1, "1"), ("b", 2, "2")]);
        let mut c = ClampIter::new(i, Vec::new(), Vec::new());
        assert_eq!(collect_all(&mut c).unwrap().len(), 2);
    }

    #[test]
    fn boxed_iterator_works() {
        let boxed: Box<dyn ForwardIter> = Box::new(vec_iter(&[("x", 1, "v")]));
        let mut m = MergingIter::new(vec![boxed]);
        let all = collect_all(&mut m).unwrap();
        assert_eq!(all.len(), 1);
    }
}
