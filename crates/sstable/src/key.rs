//! Internal keys.
//!
//! Every entry in a MemTable or SSTable is keyed by an **internal key**:
//! the user key followed by an 8-byte little-endian trailer packing a 56-bit
//! sequence number and an 8-bit value type. Internal keys order by user key
//! ascending, then sequence number *descending* (newest first), then type
//! descending — so a snapshot read seeks to `(key, snapshot_seq, Value)` and
//! the first entry at or after it is the newest version visible to the
//! snapshot.

use std::cmp::Ordering;

use dlsm_skiplist::Comparator;

/// Sequence numbers are 56-bit (the trailer reserves 8 bits for the type).
pub type SeqNo = u64;

/// Largest representable sequence number.
pub const MAX_SEQ: SeqNo = (1 << 56) - 1;

/// Length of the internal-key trailer.
pub const TRAILER_LEN: usize = 8;

/// What an entry represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// A deletion tombstone.
    Deletion = 0,
    /// A live value.
    Value = 1,
}

impl ValueType {
    fn from_u8(b: u8) -> Option<ValueType> {
        match b {
            0 => Some(ValueType::Deletion),
            1 => Some(ValueType::Value),
            _ => None,
        }
    }
}

#[inline]
fn pack_trailer(seq: SeqNo, vt: ValueType) -> u64 {
    // Clamp rather than assert: callers may pass u64::MAX to mean "newest".
    (seq.min(MAX_SEQ) << 8) | vt as u64
}

/// An owned internal key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InternalKey(Vec<u8>);

impl InternalKey {
    /// Build from parts.
    pub fn new(user_key: &[u8], seq: SeqNo, vt: ValueType) -> InternalKey {
        let mut buf = Vec::with_capacity(user_key.len() + TRAILER_LEN);
        buf.extend_from_slice(user_key);
        buf.extend_from_slice(&pack_trailer(seq, vt).to_le_bytes());
        InternalKey(buf)
    }

    /// A key that sorts at (or before) every entry for `user_key` visible to
    /// snapshot `seq` — the seek target for reads.
    pub fn for_lookup(user_key: &[u8], seq: SeqNo) -> InternalKey {
        InternalKey::new(user_key, seq, ValueType::Value)
    }

    /// Adopt an already-encoded internal key.
    pub fn from_encoded(bytes: Vec<u8>) -> InternalKey {
        debug_assert!(bytes.len() >= TRAILER_LEN);
        InternalKey(bytes)
    }

    /// The encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// The user-key portion.
    pub fn user_key(&self) -> &[u8] {
        user_key(&self.0)
    }

    /// The sequence number.
    pub fn seq(&self) -> SeqNo {
        split(&self.0).map(|(_, s, _)| s).unwrap_or(0)
    }

    /// The value type.
    pub fn value_type(&self) -> ValueType {
        split(&self.0).map(|(_, _, t)| t).unwrap_or(ValueType::Value)
    }

    /// Consume into the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }
}

/// The user-key portion of an encoded internal key.
#[inline]
pub fn user_key(ikey: &[u8]) -> &[u8] {
    debug_assert!(ikey.len() >= TRAILER_LEN, "internal key too short");
    &ikey[..ikey.len() - TRAILER_LEN]
}

/// Split an encoded internal key into `(user_key, seq, type)`.
#[inline]
pub fn split(ikey: &[u8]) -> Option<(&[u8], SeqNo, ValueType)> {
    if ikey.len() < TRAILER_LEN {
        return None;
    }
    let (user, trailer) = ikey.split_at(ikey.len() - TRAILER_LEN);
    // PANIC-SAFE: split_at with the length check above yields exactly
    // TRAILER_LEN (8) trailer bytes.
    let t = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let vt = ValueType::from_u8((t & 0xFF) as u8)?;
    Some((user, t >> 8, vt))
}

/// Compare two encoded internal keys: user key ascending, then trailer
/// (sequence, type) descending.
#[inline]
pub fn compare_internal(a: &[u8], b: &[u8]) -> Ordering {
    debug_assert!(a.len() >= TRAILER_LEN && b.len() >= TRAILER_LEN);
    let (ua, ta) = a.split_at(a.len() - TRAILER_LEN);
    let (ub, tb) = b.split_at(b.len() - TRAILER_LEN);
    match ua.cmp(ub) {
        Ordering::Equal => {
            // PANIC-SAFE: both trailers are TRAILER_LEN (8) bytes — internal
            // keys shorter than the trailer never reach comparison.
            let na = u64::from_le_bytes(ta.try_into().expect("trailer"));
            let nb = u64::from_le_bytes(tb.try_into().expect("trailer"));
            nb.cmp(&na) // descending: newest (largest seq) first
        }
        other => other,
    }
}

/// [`Comparator`] over encoded internal keys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternalKeyComparator;

impl Comparator for InternalKeyComparator {
    #[inline]
    fn cmp(&self, a: &[u8], b: &[u8]) -> Ordering {
        compare_internal(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_parts() {
        let k = InternalKey::new(b"user", 12345, ValueType::Value);
        assert_eq!(k.user_key(), b"user");
        assert_eq!(k.seq(), 12345);
        assert_eq!(k.value_type(), ValueType::Value);
        let (u, s, t) = split(k.as_bytes()).unwrap();
        assert_eq!((u, s, t), (&b"user"[..], 12345, ValueType::Value));
    }

    #[test]
    fn ordering_user_key_ascending() {
        let a = InternalKey::new(b"aaa", 5, ValueType::Value);
        let b = InternalKey::new(b"bbb", 1, ValueType::Value);
        assert_eq!(compare_internal(a.as_bytes(), b.as_bytes()), Ordering::Less);
    }

    #[test]
    fn ordering_seq_descending_within_key() {
        let newer = InternalKey::new(b"k", 10, ValueType::Value);
        let older = InternalKey::new(b"k", 5, ValueType::Value);
        assert_eq!(compare_internal(newer.as_bytes(), older.as_bytes()), Ordering::Less);
    }

    #[test]
    fn lookup_key_sees_newest_visible_version() {
        // Entries for "k" at seqs 3, 7, 12; snapshot at 10 must find 7 first.
        let lookup = InternalKey::for_lookup(b"k", 10);
        let e12 = InternalKey::new(b"k", 12, ValueType::Value);
        let e7 = InternalKey::new(b"k", 7, ValueType::Value);
        let e3 = InternalKey::new(b"k", 3, ValueType::Deletion);
        // e12 sorts before the lookup (invisible); e7 and e3 at/after it.
        assert_eq!(compare_internal(e12.as_bytes(), lookup.as_bytes()), Ordering::Less);
        assert_eq!(compare_internal(lookup.as_bytes(), e7.as_bytes()), Ordering::Less);
        assert_eq!(compare_internal(e7.as_bytes(), e3.as_bytes()), Ordering::Less);
    }

    #[test]
    fn deletion_sorts_after_value_at_same_seq() {
        // Type descending: Value (1) before Deletion (0) at equal seq.
        let v = InternalKey::new(b"k", 9, ValueType::Value);
        let d = InternalKey::new(b"k", 9, ValueType::Deletion);
        assert_eq!(compare_internal(v.as_bytes(), d.as_bytes()), Ordering::Less);
    }

    #[test]
    fn split_rejects_short_keys() {
        assert!(split(b"short").is_none());
        assert!(split(&[]).is_none());
    }

    #[test]
    fn split_rejects_bad_type() {
        let mut k = InternalKey::new(b"k", 1, ValueType::Value).into_bytes();
        let n = k.len();
        k[n - 8] = 7; // invalid type byte
        assert!(split(&k).is_none());
    }

    #[test]
    fn max_seq_roundtrips() {
        let k = InternalKey::new(b"k", MAX_SEQ, ValueType::Deletion);
        assert_eq!(k.seq(), MAX_SEQ);
        assert_eq!(k.value_type(), ValueType::Deletion);
    }
}
