//! Data sources: where SSTable bytes live.
//!
//! A table reader is generic over [`DataSource`] so the *same* reader code
//! serves three situations with very different costs:
//!
//! * the compute node reading remote memory through a queue pair (each
//!   `read` is an RDMA read paying the network cost) — dLSM wires this up
//!   with its thread-local queue pairs;
//! * the memory node reading its own DRAM during near-data compaction
//!   ([`RegionSource`], zero network cost);
//! * plain in-memory buffers in tests ([`SliceSource`]).

use std::sync::Arc;

use rdma_sim::MemoryRegion;

use crate::{Result, SstError};

/// Random-access byte source backing one SSTable.
///
/// `read` must fill `dst` entirely from `offset`. Implementations may be
/// called from the thread that owns them only (`&self`, but no `Sync`
/// requirement — dLSM readers are thread-local).
pub trait DataSource {
    /// Fill `dst` with the bytes at `offset..offset + dst.len()`.
    fn read(&self, offset: u64, dst: &mut [u8]) -> Result<()>;

    /// Total length of the table in bytes.
    fn len(&self) -> u64;

    /// True if the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A table fully resident in a local byte slice.
#[derive(Debug, Clone)]
pub struct SliceSource<T: AsRef<[u8]>>(pub T);

impl<T: AsRef<[u8]>> DataSource for SliceSource<T> {
    fn read(&self, offset: u64, dst: &mut [u8]) -> Result<()> {
        let data = self.0.as_ref();
        let start = offset as usize;
        let end = start + dst.len();
        let src = data
            .get(start..end)
            .ok_or_else(|| SstError::Source(format!("slice read [{start}, {end}) beyond {}", data.len())))?;
        dst.copy_from_slice(src);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.0.as_ref().len() as u64
    }
}

/// A table stored in a registered memory region **owned by the reading
/// node** — local DRAM access, zero network cost. This is what a memory
/// node's compaction workers use to scan input SSTables in place.
#[derive(Debug, Clone)]
pub struct RegionSource {
    region: Arc<MemoryRegion>,
    base: u64,
    len: u64,
}

impl RegionSource {
    /// View `len` bytes of `region` starting at `base` as a table.
    pub fn new(region: Arc<MemoryRegion>, base: u64, len: u64) -> RegionSource {
        RegionSource { region, base, len }
    }
}

impl DataSource for RegionSource {
    fn read(&self, offset: u64, dst: &mut [u8]) -> Result<()> {
        if offset + dst.len() as u64 > self.len {
            return Err(SstError::Source(format!(
                "region read [{offset}, +{}) beyond table length {}",
                dst.len(),
                self.len
            )));
        }
        self.region
            .local_read(self.base + offset, dst)
            .map_err(|e| SstError::Source(e.to_string()))
    }

    fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::{Fabric, NetworkProfile};

    #[test]
    fn slice_source_reads() {
        let s = SliceSource(b"0123456789".to_vec());
        let mut buf = [0u8; 4];
        s.read(3, &mut buf).unwrap();
        assert_eq!(&buf, b"3456");
        assert_eq!(s.len(), 10);
        assert!(s.read(8, &mut buf).is_err());
    }

    #[test]
    fn region_source_reads_within_window() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let node = fabric.add_node();
        let region = node.register_region(256);
        region.local_write(64, b"table-bytes").unwrap();
        let src = RegionSource::new(region, 64, 11);
        let mut buf = [0u8; 5];
        src.read(6, &mut buf).unwrap();
        assert_eq!(&buf, b"bytes");
        // Reads beyond the table window fail even though the region is big.
        assert!(src.read(7, &mut buf).is_err());
    }
}
