//! Data sources: where SSTable bytes live.
//!
//! A table reader is generic over [`DataSource`] so the *same* reader code
//! serves three situations with very different costs:
//!
//! * the compute node reading remote memory through a queue pair (each
//!   `read` is an RDMA read paying the network cost) — dLSM wires this up
//!   with its thread-local queue pairs;
//! * the memory node reading its own DRAM during near-data compaction
//!   ([`RegionSource`], zero network cost);
//! * plain in-memory buffers in tests ([`SliceSource`]).

use std::sync::Arc;

use rdma_sim::MemoryRegion;

use crate::{Result, SstError};

/// Random-access byte source backing one SSTable.
///
/// `read` must fill `dst` entirely from `offset`. Implementations may be
/// called from the thread that owns them only (`&self`, but no `Sync`
/// requirement — dLSM readers are thread-local).
pub trait DataSource {
    /// Fill `dst` with the bytes at `offset..offset + dst.len()`.
    fn read(&self, offset: u64, dst: &mut [u8]) -> Result<()>;

    /// Total length of the table in bytes.
    fn len(&self) -> u64;

    /// True if the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A table fully resident in a local byte slice.
#[derive(Debug, Clone)]
pub struct SliceSource<T: AsRef<[u8]>>(pub T);

impl<T: AsRef<[u8]>> DataSource for SliceSource<T> {
    fn read(&self, offset: u64, dst: &mut [u8]) -> Result<()> {
        let data = self.0.as_ref();
        let start = offset as usize;
        let end = start + dst.len();
        let src = data
            .get(start..end)
            .ok_or_else(|| SstError::Source(format!("slice read [{start}, {end}) beyond {}", data.len())))?;
        dst.copy_from_slice(src);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.0.as_ref().len() as u64
    }
}

/// A table stored in a registered memory region **owned by the reading
/// node** — local DRAM access, zero network cost. This is what a memory
/// node's compaction workers use to scan input SSTables in place.
#[derive(Debug, Clone)]
pub struct RegionSource {
    region: Arc<MemoryRegion>,
    base: u64,
    len: u64,
}

impl RegionSource {
    /// View `len` bytes of `region` starting at `base` as a table.
    pub fn new(region: Arc<MemoryRegion>, base: u64, len: u64) -> RegionSource {
        RegionSource { region, base, len }
    }
}

impl DataSource for RegionSource {
    fn read(&self, offset: u64, dst: &mut [u8]) -> Result<()> {
        if offset + dst.len() as u64 > self.len {
            return Err(SstError::Source(format!(
                "region read [{offset}, +{}) beyond table length {}",
                dst.len(),
                self.len
            )));
        }
        self.region
            .local_read(self.base + offset, dst)
            .map_err(|e| SstError::Source(e.to_string()))
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// Largest read a [`CachedSource`] will offer for admission — keeps scans
/// and whole-extent fetches from flooding the cache with oversized objects.
const MAX_CACHED_READ: usize = 256 << 10;

/// A [`DataSource`] with a cache-first read path: every read consults a
/// [`crate::block::BlockFetcher`] keyed by offset before touching the inner
/// source, and offers misses back for admission. dLSM wraps the remote
/// source of a byte-addressable table in this, so each cached *record*
/// costs zero fabric reads (the block-format reader plugs the same fetcher
/// in at block granularity instead).
pub struct CachedSource<S: DataSource> {
    inner: S,
    fetcher: Arc<dyn crate::block::BlockFetcher>,
}

impl<S: DataSource> CachedSource<S> {
    /// Wrap `inner` with the cache policy `fetcher`.
    pub fn new(inner: S, fetcher: Arc<dyn crate::block::BlockFetcher>) -> CachedSource<S> {
        CachedSource { inner, fetcher }
    }
}

impl<S: DataSource> DataSource for CachedSource<S> {
    fn read(&self, offset: u64, dst: &mut [u8]) -> Result<()> {
        if let Some(cached) = self.fetcher.fetch(offset) {
            if cached.len() == dst.len() {
                dst.copy_from_slice(&cached);
                return Ok(());
            }
        }
        self.inner.read(offset, dst)?;
        if dst.len() <= MAX_CACHED_READ {
            self.fetcher.admit(offset, &Arc::new(dst.to_vec()));
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::{Fabric, NetworkProfile};

    #[test]
    fn slice_source_reads() {
        let s = SliceSource(b"0123456789".to_vec());
        let mut buf = [0u8; 4];
        s.read(3, &mut buf).unwrap();
        assert_eq!(&buf, b"3456");
        assert_eq!(s.len(), 10);
        assert!(s.read(8, &mut buf).is_err());
    }

    #[test]
    fn cached_source_serves_hits_and_admits_misses() {
        use crate::block::BlockFetcher;
        use std::sync::Mutex;

        #[derive(Default)]
        struct MapFetcher {
            map: Mutex<std::collections::HashMap<u64, Arc<Vec<u8>>>>,
        }
        impl crate::block::BlockFetcher for MapFetcher {
            fn fetch(&self, offset: u64) -> Option<Arc<Vec<u8>>> {
                self.map.lock().unwrap().get(&offset).cloned()
            }
            fn admit(&self, offset: u64, data: &Arc<Vec<u8>>) {
                self.map.lock().unwrap().insert(offset, Arc::clone(data));
            }
        }

        let fetcher = Arc::new(MapFetcher::default());
        let src = CachedSource::new(SliceSource(b"0123456789".to_vec()), fetcher.clone());
        let mut buf = [0u8; 4];
        src.read(3, &mut buf).unwrap();
        assert_eq!(&buf, b"3456");
        // The miss was admitted; a hit no longer needs the inner source.
        assert_eq!(fetcher.fetch(3).unwrap().as_slice(), b"3456");
        // A cached object of the wrong length is ignored, not mis-served.
        let mut five = [0u8; 5];
        src.read(3, &mut five).unwrap();
        assert_eq!(&five, b"34567");
        assert_eq!(src.len(), 10);
    }

    #[test]
    fn region_source_reads_within_window() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let node = fabric.add_node();
        let region = node.register_region(256);
        region.local_write(64, b"table-bytes").unwrap();
        let src = RegionSource::new(region, 64, 11);
        let mut buf = [0u8; 5];
        src.read(6, &mut buf).unwrap();
        assert_eq!(&buf, b"bytes");
        // Reads beyond the table window fail even though the region is big.
        assert!(src.read(7, &mut buf).is_err());
    }
}
