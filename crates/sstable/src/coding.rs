//! Little-endian fixed and varint byte coding.
//!
//! All wire/table formats in this workspace are hand-rolled little-endian —
//! an RDMA-resident format would never pay a general-purpose serializer on
//! the hot path.

use crate::{Result, SstError};

/// Append a fixed 32-bit LE integer.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a fixed 64-bit LE integer.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Read a fixed 32-bit LE integer at `off`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> Result<u32> {
    let b: [u8; 4] = buf
        .get(off..off + 4)
        .ok_or_else(|| SstError::Corrupt(format!("u32 at {off} out of range")))?
        // PANIC-SAFE: the checked get() above proves the slice is 4 bytes.
        .try_into()
        .expect("4-byte slice");
    Ok(u32::from_le_bytes(b))
}

/// Read a fixed 64-bit LE integer at `off`.
#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> Result<u64> {
    let b: [u8; 8] = buf
        .get(off..off + 8)
        .ok_or_else(|| SstError::Corrupt(format!("u64 at {off} out of range")))?
        // PANIC-SAFE: the checked get() above proves the slice is 8 bytes.
        .try_into()
        .expect("8-byte slice");
    Ok(u64::from_le_bytes(b))
}

/// Append a LEB128 varint (u64).
#[inline]
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decode a varint at `off`; returns `(value, bytes_consumed)`.
#[inline]
pub fn get_varint(buf: &[u8], off: usize) -> Result<(u64, usize)> {
    let mut shift = 0u32;
    let mut out = 0u64;
    for (i, &b) in buf.get(off..).unwrap_or(&[]).iter().enumerate() {
        if shift > 63 {
            return Err(SstError::Corrupt("varint too long".into()));
        }
        out |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok((out, i + 1));
        }
        shift += 7;
    }
    Err(SstError::Corrupt(format!("truncated varint at {off}")))
}

/// Append a length-prefixed byte slice (u32 length).
#[inline]
pub fn put_len_prefixed(buf: &mut Vec<u8>, data: &[u8]) {
    put_u32(buf, data.len() as u32);
    buf.extend_from_slice(data);
}

/// Read a length-prefixed slice at `off`; returns `(slice, bytes_consumed)`.
#[inline]
pub fn get_len_prefixed(buf: &[u8], off: usize) -> Result<(&[u8], usize)> {
    let len = get_u32(buf, off)? as usize;
    let start = off + 4;
    let data = buf
        .get(start..start + len)
        .ok_or_else(|| SstError::Corrupt(format!("len-prefixed slice at {off} truncated")))?;
    Ok((data, 4 + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_roundtrip() {
        let mut b = Vec::new();
        put_u32(&mut b, 0xDEAD_BEEF);
        put_u64(&mut b, u64::MAX - 3);
        assert_eq!(get_u32(&b, 0).unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u64(&b, 4).unwrap(), u64::MAX - 3);
        assert!(get_u64(&b, 8).is_err());
    }

    #[test]
    fn varint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64, u64::MAX];
        let mut b = Vec::new();
        for &v in &values {
            put_varint(&mut b, v);
        }
        let mut off = 0;
        for &v in &values {
            let (got, n) = get_varint(&b, off).unwrap();
            assert_eq!(got, v);
            off += n;
        }
        assert_eq!(off, b.len());
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut b = Vec::new();
        put_varint(&mut b, u64::MAX);
        assert!(get_varint(&b[..b.len() - 1], 0).is_err());
        assert!(get_varint(&[], 0).is_err());
    }

    #[test]
    fn len_prefixed_roundtrip() {
        let mut b = Vec::new();
        put_len_prefixed(&mut b, b"hello");
        put_len_prefixed(&mut b, b"");
        let (s1, n1) = get_len_prefixed(&b, 0).unwrap();
        assert_eq!(s1, b"hello");
        let (s2, n2) = get_len_prefixed(&b, n1).unwrap();
        assert_eq!(s2, b"");
        assert_eq!(n1 + n2, b.len());
        assert!(get_len_prefixed(&b, 2).is_err());
    }
}
