//! The compaction merge policy.
//!
//! [`CompactionIter`] wraps a (merged) input stream and yields only the
//! records the output tables should contain, applying LevelDB/RocksDB
//! semantics:
//!
//! * For each user key, the **newest** version always survives.
//! * Older versions survive only while some live snapshot (`smallest_snapshot`)
//!   might still need them: a version is dropped once a *previous* (newer)
//!   version of the same user key exists at or below the snapshot horizon.
//! * Deletion tombstones are dropped entirely when compacting into the
//!   bottom level (`drop_deletions`), where nothing older can hide below.
//!
//! Both compute-side compaction and near-data compaction on the memory node
//! run this exact code, so offloading cannot change results.

use crate::iter::ForwardIter;
use crate::key::{self, SeqNo, ValueType, MAX_SEQ};
use crate::Result;

/// "No previous version seen for this user key" marker; strictly greater
/// than any encodable sequence number (and thus any snapshot horizon).
const NO_PREVIOUS: u64 = u64::MAX;

/// Policy knobs for one compaction.
#[derive(Debug, Clone, Copy)]
pub struct MergeConfig {
    /// Versions at or below this sequence number are invisible to every
    /// live snapshot and may collapse to just the newest one.
    pub smallest_snapshot: SeqNo,
    /// True when the output level is the bottom-most touched range: dropped
    /// keys' tombstones can be elided.
    pub drop_deletions: bool,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig { smallest_snapshot: MAX_SEQ, drop_deletions: false }
    }
}

/// Streaming filter over a merged input applying [`MergeConfig`].
pub struct CompactionIter<I: ForwardIter> {
    input: I,
    cfg: MergeConfig,
    current_user_key: Vec<u8>,
    has_current_user_key: bool,
    last_sequence_for_key: SeqNo,
    valid: bool,
    records_seen: u64,
}

impl<I: ForwardIter> CompactionIter<I> {
    /// Wrap `input` (positioned anywhere; call [`ForwardIter::seek_to_first`]
    /// via this wrapper).
    pub fn new(input: I, cfg: MergeConfig) -> CompactionIter<I> {
        CompactionIter {
            input,
            cfg,
            current_user_key: Vec::new(),
            has_current_user_key: false,
            last_sequence_for_key: NO_PREVIOUS,
            valid: false,
            records_seen: 0,
        }
    }

    /// Input records examined so far (survivors and dropped alike).
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// Advance the inner iterator until it rests on a record that survives.
    fn skip_dropped(&mut self) -> Result<()> {
        while self.input.valid() {
            self.records_seen += 1;
            let ikey = self.input.key();
            let Some((ukey, seq, vt)) = key::split(ikey) else {
                // Un-parseable keys are kept verbatim (defensive; cannot
                // happen for tables built by this crate).
                self.valid = true;
                return Ok(());
            };
            let first_occurrence = !self.has_current_user_key || ukey != self.current_user_key.as_slice();
            if first_occurrence {
                self.current_user_key.clear();
                self.current_user_key.extend_from_slice(ukey);
                self.has_current_user_key = true;
                self.last_sequence_for_key = NO_PREVIOUS;
            }
            let drop = if self.last_sequence_for_key <= self.cfg.smallest_snapshot {
                // A newer version of this user key is already visible to the
                // oldest snapshot: this one can never be observed.
                true
            } else {
                vt == ValueType::Deletion
                    && seq <= self.cfg.smallest_snapshot
                    && self.cfg.drop_deletions
            };
            self.last_sequence_for_key = seq;
            if !drop {
                self.valid = true;
                return Ok(());
            }
            self.input.next()?;
        }
        self.valid = false;
        Ok(())
    }

    /// Start the pass.
    pub fn seek_to_first(&mut self) -> Result<()> {
        self.input.seek_to_first()?;
        self.has_current_user_key = false;
        self.last_sequence_for_key = NO_PREVIOUS;
        self.skip_dropped()
    }

    /// Whether a surviving record is current.
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// Current internal key.
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        self.input.key()
    }

    /// Current value.
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid);
        self.input.value()
    }

    /// Advance past the current record to the next survivor.
    #[allow(clippy::should_implement_trait)] // positional `next`, LevelDB-style
    pub fn next(&mut self) -> Result<()> {
        debug_assert!(self.valid);
        self.input.next()?;
        self.skip_dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter::{MergingIter, VecIter};
    use crate::key::InternalKey;

    fn entry(user: &str, seq: u64, vt: ValueType, val: &str) -> (Vec<u8>, Vec<u8>) {
        (InternalKey::new(user.as_bytes(), seq, vt).into_bytes(), val.as_bytes().to_vec())
    }

    fn run(inputs: Vec<Vec<(Vec<u8>, Vec<u8>)>>, cfg: MergeConfig) -> Vec<(String, u64, ValueType, String)> {
        let children: Vec<VecIter> = inputs.into_iter().map(VecIter::new).collect();
        let mut it = CompactionIter::new(MergingIter::new(children), cfg);
        it.seek_to_first().unwrap();
        let mut out = Vec::new();
        while it.valid() {
            let (u, s, t) = key::split(it.key()).unwrap();
            out.push((
                String::from_utf8(u.to_vec()).unwrap(),
                s,
                t,
                String::from_utf8(it.value().to_vec()).unwrap(),
            ));
            it.next().unwrap();
        }
        out
    }

    #[test]
    fn newest_version_wins_when_no_snapshots() {
        let out = run(
            vec![
                vec![entry("k", 9, ValueType::Value, "new")],
                vec![entry("k", 3, ValueType::Value, "old")],
            ],
            MergeConfig { smallest_snapshot: MAX_SEQ, drop_deletions: false },
        );
        // MAX_SEQ snapshot horizon: after seeing seq 9 (≤ horizon), seq 3 drops.
        assert_eq!(out, vec![("k".into(), 9, ValueType::Value, "new".into())]);
    }

    #[test]
    fn snapshot_preserves_old_versions() {
        // A snapshot at seq 5 still needs the version at 3 (9 is invisible
        // to it), so both survive.
        let out = run(
            vec![
                vec![entry("k", 9, ValueType::Value, "new")],
                vec![entry("k", 3, ValueType::Value, "old")],
            ],
            MergeConfig { smallest_snapshot: 5, drop_deletions: false },
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, 9);
        assert_eq!(out[1].1, 3);
    }

    #[test]
    fn versions_below_snapshot_collapse_to_one() {
        // Snapshot at 5: versions 4, 3, 2 — only the newest (4) survives.
        let out = run(
            vec![vec![
                entry("k", 4, ValueType::Value, "v4"),
                entry("k", 3, ValueType::Value, "v3"),
                entry("k", 2, ValueType::Value, "v2"),
            ]],
            MergeConfig { smallest_snapshot: 5, drop_deletions: false },
        );
        assert_eq!(out, vec![("k".into(), 4, ValueType::Value, "v4".into())]);
    }

    #[test]
    fn tombstones_kept_above_bottom_level() {
        let out = run(
            vec![
                vec![entry("k", 9, ValueType::Deletion, "")],
                vec![entry("k", 3, ValueType::Value, "old")],
            ],
            MergeConfig { smallest_snapshot: MAX_SEQ, drop_deletions: false },
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].2, ValueType::Deletion);
    }

    #[test]
    fn tombstones_dropped_at_bottom_level() {
        let out = run(
            vec![
                vec![entry("a", 9, ValueType::Deletion, "")],
                vec![entry("a", 3, ValueType::Value, "dead"), entry("b", 2, ValueType::Value, "live")],
            ],
            MergeConfig { smallest_snapshot: MAX_SEQ, drop_deletions: true },
        );
        assert_eq!(out, vec![("b".into(), 2, ValueType::Value, "live".into())]);
    }

    #[test]
    fn shadowed_tombstone_and_value_both_drop_at_bottom_level() {
        // Oldest snapshot is 5; it sees the tombstone at 4, so the key reads
        // as deleted for every live reader. At the bottom level the
        // tombstone itself can drop (nothing hides below), and v3 is
        // shadowed by it for all visible snapshots — both vanish.
        let out = run(
            vec![vec![
                entry("k", 4, ValueType::Deletion, ""),
                entry("k", 3, ValueType::Value, "v3"),
            ]],
            MergeConfig { smallest_snapshot: 5, drop_deletions: true },
        );
        assert!(out.is_empty(), "got {out:?}");
    }

    #[test]
    fn tombstone_above_snapshot_survives_bottom_level() {
        // The tombstone at 9 is newer than the oldest snapshot (5): readers
        // at 5 must still see v3, and readers at ≥9 must see the deletion,
        // so both records survive even at the bottom level.
        let out = run(
            vec![vec![
                entry("k", 9, ValueType::Deletion, ""),
                entry("k", 3, ValueType::Value, "v3"),
            ]],
            MergeConfig { smallest_snapshot: 5, drop_deletions: true },
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].2, ValueType::Deletion);
        assert_eq!(out[1].3, "v3");
    }

    #[test]
    fn distinct_keys_all_survive() {
        let out = run(
            vec![
                vec![entry("a", 1, ValueType::Value, "1"), entry("c", 1, ValueType::Value, "3")],
                vec![entry("b", 1, ValueType::Value, "2")],
            ],
            MergeConfig::default(),
        );
        let keys: Vec<&str> = out.iter().map(|(k, _, _, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_input() {
        let out = run(vec![vec![], vec![]], MergeConfig::default());
        assert!(out.is_empty());
    }
}
