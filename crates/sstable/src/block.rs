//! The conventional block-based SSTable format (RocksDB-style).
//!
//! Used by the RocksDB-RDMA baselines and the dLSM-Block ablation (paper
//! Sec. XI-A, XI-C7). The remote-memory image is self-contained:
//!
//! ```text
//!   | data block 0 | data block 1 | ... | filter | index | footer |
//!   data block = u32 entry_count, then entries
//!   entry      = varint(klen) varint(vlen) internal_key value
//!   index      = u32 count, then (len-prefixed last_key, u64 off, u32 len)
//!   footer     = u64 index_off, u32 index_len, u64 filter_off,
//!                u32 filter_len, u64 num_entries, u64 magic   (40 bytes)
//! ```
//!
//! The architectural differences from the byte-addressable format are the
//! ones the paper measures:
//!
//! * **Reads** fetch a whole block per point lookup (block-size read
//!   amplification over the network).
//! * **Writes** wrap records into a block buffer before appending it to the
//!   table image — one extra memory copy per byte.
//! * **Open** costs remote reads for the footer, index and filter; readers
//!   cache them afterwards (modelling RocksDB's table cache pinning index
//!   and filter blocks).
//!
//! `block_size == 0` means "one record per block", i.e. the
//! Memory-RocksDB-RDMA baseline whose block size matches a key-value pair.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::bloom::BloomFilter;
use crate::byte_addr::{TableGet, TableSink};
use crate::coding::{get_len_prefixed, get_u32, get_u64, get_varint, put_len_prefixed, put_u32, put_u64, put_varint};
use crate::iter::ForwardIter;
use crate::key::{self, compare_internal, InternalKey, SeqNo, ValueType};
use crate::source::DataSource;
use crate::{Result, SstError};

const MAGIC: u64 = 0xD15A_66B1_0C4B_1E55;
/// Footer length in bytes.
pub const FOOTER_LEN: usize = 40;

/// One index entry: the block's last internal key and its extent.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BlockHandle {
    last_key: Vec<u8>,
    offset: u64,
    len: u32,
}

/// Builder for block-based tables.
pub struct BlockTableBuilder<S: TableSink> {
    sink: S,
    /// Target uncompressed block size; 0 = one entry per block.
    block_size: usize,
    bits_per_key: usize,
    block_buf: Vec<u8>,
    block_count: u32,
    last_key: Vec<u8>,
    index: Vec<BlockHandle>,
    user_keys: Vec<u8>,
    user_key_ends: Vec<u32>,
    offset: u64,
    num_entries: u64,
    scratch: Vec<u8>,
}

impl<S: TableSink> BlockTableBuilder<S> {
    /// Start building into `sink`.
    pub fn new(sink: S, block_size: usize, bits_per_key: usize) -> BlockTableBuilder<S> {
        BlockTableBuilder {
            sink,
            block_size,
            bits_per_key,
            block_buf: Vec::with_capacity(block_size.max(256)),
            block_count: 0,
            last_key: Vec::new(),
            index: Vec::new(),
            user_keys: Vec::new(),
            user_key_ends: Vec::new(),
            offset: 0,
            num_entries: 0,
            scratch: Vec::with_capacity(16),
        }
    }

    /// Append one record; keys must arrive in internal-key order.
    pub fn add(&mut self, ikey: &[u8], value: &[u8]) -> Result<()> {
        debug_assert!(
            self.last_key.is_empty() || compare_internal(&self.last_key, ikey) == Ordering::Less,
            "records must be added in internal-key order"
        );
        self.scratch.clear();
        put_varint(&mut self.scratch, ikey.len() as u64);
        put_varint(&mut self.scratch, value.len() as u64);
        // The "block wrapping" copy the byte-addressable format eliminates:
        // records are staged in the block buffer, then copied again into the
        // table image when the block is cut.
        self.block_buf.extend_from_slice(&self.scratch);
        self.block_buf.extend_from_slice(ikey);
        self.block_buf.extend_from_slice(value);
        self.block_count += 1;
        self.num_entries += 1;
        self.last_key.clear();
        self.last_key.extend_from_slice(ikey);
        self.user_keys.extend_from_slice(key::user_key(ikey));
        self.user_key_ends.push(self.user_keys.len() as u32);
        if self.block_size == 0 || self.block_buf.len() >= self.block_size {
            self.cut_block()?;
        }
        Ok(())
    }

    fn cut_block(&mut self) -> Result<()> {
        if self.block_count == 0 {
            return Ok(());
        }
        let mut header = Vec::with_capacity(4);
        put_u32(&mut header, self.block_count);
        let len = (header.len() + self.block_buf.len()) as u32;
        self.sink.append(&header)?;
        self.sink.append(&self.block_buf)?;
        self.index.push(BlockHandle {
            last_key: self.last_key.clone(),
            offset: self.offset,
            len,
        });
        self.offset += u64::from(len);
        self.block_buf.clear();
        self.block_count = 0;
        Ok(())
    }

    /// Number of records added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Bytes of table image emitted so far (cut blocks only).
    pub fn data_len(&self) -> u64 {
        self.offset
    }

    /// Conservative estimate of the final table length if [`Self::finish`]
    /// were called now — used by compaction to cut an output before its
    /// reserved extent overflows.
    pub fn estimated_finished_len(&self) -> u64 {
        let filter = (self.num_entries as usize * self.bits_per_key) / 8 + 72;
        let index_per_block = self.last_key.len() + 64;
        let index = 4 + (self.index.len() + 1) * index_per_block;
        self.offset
            + (self.block_buf.len() + 4) as u64
            + filter as u64
            + index as u64
            + FOOTER_LEN as u64
    }

    /// Finish the table: cut the last block, append filter, index and
    /// footer. Returns the sink and the total table length.
    pub fn finish(mut self) -> Result<(S, u64)> {
        self.cut_block()?;
        // Filter.
        let filter_off = self.offset;
        let bloom = BloomFilter::build(
            UserKeys { blob: &self.user_keys, ends: &self.user_key_ends, i: 0 },
            self.bits_per_key,
        );
        let filter = bloom.encode();
        self.sink.append(&filter)?;
        self.offset += filter.len() as u64;
        // Index.
        let index_off = self.offset;
        let mut index = Vec::new();
        put_u32(&mut index, self.index.len() as u32);
        for h in &self.index {
            put_len_prefixed(&mut index, &h.last_key);
            put_u64(&mut index, h.offset);
            put_u32(&mut index, h.len);
        }
        self.sink.append(&index)?;
        self.offset += index.len() as u64;
        // Footer.
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        put_u64(&mut footer, index_off);
        put_u32(&mut footer, index.len() as u32);
        put_u64(&mut footer, filter_off);
        put_u32(&mut footer, filter.len() as u32);
        put_u64(&mut footer, self.num_entries);
        put_u64(&mut footer, MAGIC);
        self.sink.append(&footer)?;
        self.offset += footer.len() as u64;
        Ok((self.sink, self.offset))
    }
}

struct UserKeys<'a> {
    blob: &'a [u8],
    ends: &'a [u32],
    i: usize,
}

impl<'a> Iterator for UserKeys<'a> {
    type Item = &'a [u8];
    fn next(&mut self) -> Option<&'a [u8]> {
        if self.i >= self.ends.len() {
            return None;
        }
        let start = if self.i == 0 { 0 } else { self.ends[self.i - 1] as usize };
        let end = self.ends[self.i] as usize;
        self.i += 1;
        Some(&self.blob[start..end])
    }
}

impl<'a> ExactSizeIterator for UserKeys<'a> {
    fn len(&self) -> usize {
        self.ends.len() - self.i
    }
}

/// Cache-first fetch policy for table bytes: point reads consult the
/// fetcher before touching the [`DataSource`] and offer fresh fetches back
/// for admission. Implemented by the compute-side read cache (dlsm-cache);
/// the offsets are table-relative, so one fetcher instance is bound to one
/// table. Scans deliberately bypass the fetcher (scan resistance).
pub trait BlockFetcher: Send + Sync {
    /// The cached bytes at `offset`, if resident.
    fn fetch(&self, offset: u64) -> Option<Arc<Vec<u8>>>;

    /// Offer freshly read bytes at `offset` for admission.
    fn admit(&self, offset: u64, data: &Arc<Vec<u8>>);
}

/// Reader over a block-based table.
///
/// `open` performs three remote reads (footer, index, filter) and caches the
/// results; per-lookup traffic is then one block-sized read — or zero when a
/// [`BlockFetcher`] is attached and holds the block.
pub struct BlockTableReader<S: DataSource> {
    source: S,
    index: Arc<Vec<BlockHandleOwned>>,
    bloom: Arc<BloomFilter>,
    num_entries: u64,
    fetcher: Option<Arc<dyn BlockFetcher>>,
}

#[derive(Debug, Clone)]
struct BlockHandleOwned {
    last_key: Vec<u8>,
    offset: u64,
    len: u32,
}

impl<S: DataSource> BlockTableReader<S> {
    /// Open a table: fetch and cache footer, index and filter.
    pub fn open(source: S) -> Result<BlockTableReader<S>> {
        let total = source.len();
        if total < FOOTER_LEN as u64 {
            return Err(SstError::Corrupt("table shorter than footer".into()));
        }
        let mut footer = [0u8; FOOTER_LEN];
        source.read(total - FOOTER_LEN as u64, &mut footer)?;
        if get_u64(&footer, 32)? != MAGIC {
            return Err(SstError::Corrupt("bad magic".into()));
        }
        let index_off = get_u64(&footer, 0)?;
        let index_len = get_u32(&footer, 8)? as usize;
        let filter_off = get_u64(&footer, 12)?;
        let filter_len = get_u32(&footer, 20)? as usize;
        let num_entries = get_u64(&footer, 24)?;

        let mut filter_bytes = vec![0u8; filter_len];
        source.read(filter_off, &mut filter_bytes)?;
        let bloom = BloomFilter::decode(&filter_bytes)
            .ok_or_else(|| SstError::Corrupt("bad filter block".into()))?;

        let mut index_bytes = vec![0u8; index_len];
        source.read(index_off, &mut index_bytes)?;
        let count = get_u32(&index_bytes, 0)? as usize;
        let mut off = 4;
        // Never trust an on-disk count for pre-allocation.
        let mut index = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let (k, n) = get_len_prefixed(&index_bytes, off)?;
            off += n;
            let boff = get_u64(&index_bytes, off)?;
            let blen = get_u32(&index_bytes, off + 8)?;
            off += 12;
            index.push(BlockHandleOwned { last_key: k.to_vec(), offset: boff, len: blen });
        }
        Ok(BlockTableReader {
            source,
            index: Arc::new(index),
            bloom: Arc::new(bloom),
            num_entries,
            fetcher: None,
        })
    }

    /// Attach a cache-first [`BlockFetcher`] for data-block reads.
    pub fn with_fetcher(mut self, fetcher: Arc<dyn BlockFetcher>) -> BlockTableReader<S> {
        self.fetcher = Some(fetcher);
        self
    }

    /// Number of records in the table.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Number of data blocks.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Smallest possible block index whose last key is ≥ `ikey`.
    fn block_for(&self, ikey: &[u8]) -> usize {
        self.index.partition_point(|h| compare_internal(&h.last_key, ikey) == Ordering::Less)
    }

    /// Point lookup: bloom probe, index search, one whole-block read, linear
    /// scan within the block.
    pub fn get(&self, user_key: &[u8], seq: SeqNo) -> Result<TableGet> {
        if !self.bloom.may_contain(user_key) {
            return Ok(TableGet::NotFound);
        }
        let lookup = InternalKey::for_lookup(user_key, seq);
        let bi = self.block_for(lookup.as_bytes());
        if bi >= self.index.len() {
            return Ok(TableGet::NotFound);
        }
        let h = &self.index[bi];
        // Cache-first: a resident block costs zero fabric reads; a miss is
        // fetched from the source and offered back for admission.
        let block: Arc<Vec<u8>> = match &self.fetcher {
            Some(f) => match f.fetch(h.offset) {
                Some(cached) if cached.len() == h.len as usize => cached,
                _ => {
                    let mut buf = vec![0u8; h.len as usize];
                    self.source.read(h.offset, &mut buf)?;
                    let buf = Arc::new(buf);
                    f.admit(h.offset, &buf);
                    buf
                }
            },
            None => {
                let mut buf = vec![0u8; h.len as usize];
                self.source.read(h.offset, &mut buf)?;
                Arc::new(buf)
            }
        };
        let count = get_u32(&block, 0)?;
        let mut off = 4usize;
        for _ in 0..count {
            let (klen, n1) = get_varint(&block, off)?;
            let (vlen, n2) = get_varint(&block, off + n1)?;
            let kstart = off + n1 + n2;
            let vstart = kstart + klen as usize;
            let vend = vstart + vlen as usize;
            let ikey = block
                .get(kstart..vstart)
                .ok_or_else(|| SstError::Corrupt("entry beyond block".into()))?;
            if compare_internal(ikey, lookup.as_bytes()) != Ordering::Less {
                let (ukey, _, vt) = key::split(ikey)
                    .ok_or_else(|| SstError::Corrupt("bad internal key".into()))?;
                if ukey != user_key {
                    return Ok(TableGet::NotFound);
                }
                return Ok(match vt {
                    ValueType::Deletion => TableGet::Deleted,
                    ValueType::Value => TableGet::Found(
                        block
                            .get(vstart..vend)
                            .ok_or_else(|| SstError::Corrupt("value beyond block".into()))?
                            .to_vec(),
                    ),
                });
            }
            off = vend;
        }
        Ok(TableGet::NotFound)
    }

    /// The cached metadata (index + filter), shareable across readers so a
    /// table is opened (3 remote reads) only once.
    pub fn meta_cache(&self) -> BlockMetaCache {
        BlockMetaCache {
            index: Arc::clone(&self.index),
            bloom: Arc::clone(&self.bloom),
            num_entries: self.num_entries,
        }
    }

    /// Reopen a table from cached metadata without touching the source.
    pub fn from_cache(source: S, cache: BlockMetaCache) -> BlockTableReader<S> {
        BlockTableReader {
            source,
            index: cache.index,
            bloom: cache.bloom,
            num_entries: cache.num_entries,
            fetcher: None,
        }
    }

    /// Iterator with block prefetching: each remote read fetches up to
    /// `prefetch_bytes` of consecutive blocks. The iterator owns a clone of
    /// the source and `Arc`s of the cached metadata.
    pub fn iter(&self, prefetch_bytes: usize) -> BlockTableIter<S>
    where
        S: Clone,
    {
        BlockTableIter {
            index: Arc::clone(&self.index),
            source: self.source.clone(),
            buf: Vec::new(),
            buf_first_block: 0,
            buf_block_count: 0,
            block_idx: usize::MAX,
            cursor: 0,
            entries_left: 0,
            key_range: 0..0,
            val_range: 0..0,
            prefetch: prefetch_bytes.max(1),
        }
    }
}

/// Cached, shareable metadata of one block table: parsed index, bloom
/// filter and entry count (what the compute node keeps in its table cache).
#[derive(Debug, Clone)]
pub struct BlockMetaCache {
    index: Arc<Vec<BlockHandleOwned>>,
    bloom: Arc<BloomFilter>,
    num_entries: u64,
}

impl BlockMetaCache {
    /// Number of records in the table.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Approximate resident size of the cache in compute-node memory.
    pub fn memory_usage(&self) -> usize {
        self.index.iter().map(|h| h.last_key.len() + 24).sum::<usize>() + 64
    }
}

/// Block-prefetching iterator over a block-based table (owns its metadata
/// handles and data source).
pub struct BlockTableIter<S: DataSource> {
    index: Arc<Vec<BlockHandleOwned>>,
    source: S,
    buf: Vec<u8>,
    buf_first_block: usize,
    buf_block_count: usize,
    /// Current block, `usize::MAX` = invalid.
    block_idx: usize,
    /// Cursor into `buf` (absolute within buf).
    cursor: usize,
    entries_left: u32,
    key_range: std::ops::Range<usize>,
    val_range: std::ops::Range<usize>,
    prefetch: usize,
}

impl<S: DataSource> BlockTableIter<S> {
    fn index(&self) -> &[BlockHandleOwned] {
        &self.index
    }

    fn block_for(&self, ikey: &[u8]) -> usize {
        self.index.partition_point(|h| compare_internal(&h.last_key, ikey) == Ordering::Less)
    }

    /// Ensure block `i` is in `buf`; returns its relative offset.
    fn fetch_block(&mut self, i: usize) -> Result<usize> {
        let in_buf = i >= self.buf_first_block && i < self.buf_first_block + self.buf_block_count;
        if !in_buf {
            // Prefetch consecutive blocks up to the window size.
            let start_off = self.index()[i].offset;
            let mut end = i;
            let mut total = 0usize;
            while end < self.index().len() {
                let l = self.index()[end].len as usize;
                if total > 0 && total + l > self.prefetch {
                    break;
                }
                total += l;
                end += 1;
            }
            self.buf.resize(total, 0);
            self.source.read(start_off, &mut self.buf)?;
            self.buf_first_block = i;
            self.buf_block_count = end - i;
        }
        Ok((self.index()[i].offset - self.index()[self.buf_first_block].offset) as usize)
    }

    /// Enter block `i` positioned before its first entry.
    fn enter_block(&mut self, i: usize) -> Result<()> {
        let rel = self.fetch_block(i)?;
        let count = get_u32(&self.buf, rel)?;
        self.block_idx = i;
        self.cursor = rel + 4;
        self.entries_left = count;
        Ok(())
    }

    /// Parse the entry at `cursor`, making it current.
    fn parse_entry(&mut self) -> Result<()> {
        debug_assert!(self.entries_left > 0);
        let (klen, n1) = get_varint(&self.buf, self.cursor)?;
        let (vlen, n2) = get_varint(&self.buf, self.cursor + n1)?;
        let kstart = self.cursor + n1 + n2;
        let vstart = kstart + klen as usize;
        let vend = vstart + vlen as usize;
        if vend > self.buf.len() {
            return Err(SstError::Corrupt("entry beyond prefetch buffer".into()));
        }
        self.key_range = kstart..vstart;
        self.val_range = vstart..vend;
        self.cursor = vend;
        self.entries_left -= 1;
        Ok(())
    }

    fn step(&mut self) -> Result<()> {
        loop {
            if self.entries_left > 0 {
                return self.parse_entry();
            }
            let next_block = if self.block_idx == usize::MAX { 0 } else { self.block_idx + 1 };
            if next_block >= self.index().len() {
                self.block_idx = usize::MAX;
                return Ok(());
            }
            self.enter_block(next_block)?;
        }
    }
}

impl<S: DataSource> ForwardIter for BlockTableIter<S> {
    fn valid(&self) -> bool {
        self.block_idx != usize::MAX
    }

    fn key(&self) -> &[u8] {
        debug_assert!(self.valid());
        &self.buf[self.key_range.clone()]
    }

    fn value(&self) -> &[u8] {
        debug_assert!(self.valid());
        &self.buf[self.val_range.clone()]
    }

    fn next(&mut self) -> Result<()> {
        debug_assert!(self.valid());
        self.step()
    }

    fn seek(&mut self, ikey: &[u8]) -> Result<()> {
        let bi = self.block_for(ikey);
        if bi >= self.index().len() {
            self.block_idx = usize::MAX;
            return Ok(());
        }
        self.enter_block(bi)?;
        self.step()?;
        while self.valid() && compare_internal(self.key(), ikey) == Ordering::Less {
            self.step()?;
        }
        Ok(())
    }

    fn seek_to_first(&mut self) -> Result<()> {
        self.block_idx = usize::MAX;
        self.cursor = 0;
        self.entries_left = 0;
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter::collect_all;
    use crate::source::SliceSource;

    fn build(n: usize, block_size: usize) -> Vec<u8> {
        let mut b = BlockTableBuilder::new(Vec::new(), block_size, 10);
        for i in 0..n {
            let ik = InternalKey::new(format!("key{i:06}").as_bytes(), 50, ValueType::Value);
            b.add(ik.as_bytes(), format!("value-{i}").as_bytes()).unwrap();
        }
        let (data, len) = b.finish().unwrap();
        assert_eq!(data.len() as u64, len);
        data
    }

    #[test]
    fn build_open_get_8k() {
        let data = build(2000, 8192);
        let r = BlockTableReader::open(SliceSource(data)).unwrap();
        assert_eq!(r.num_entries(), 2000);
        assert!(r.block_count() > 1);
        assert_eq!(r.get(b"key000777", 100).unwrap(), TableGet::Found(b"value-777".to_vec()));
        assert_eq!(r.get(b"key002000", 100).unwrap(), TableGet::NotFound);
        assert_eq!(r.get(b"key000777", 10).unwrap(), TableGet::NotFound);
    }

    #[test]
    fn kv_sized_blocks_have_one_entry_each() {
        let data = build(50, 0);
        let r = BlockTableReader::open(SliceSource(data)).unwrap();
        assert_eq!(r.block_count(), 50);
        assert_eq!(r.get(b"key000049", 100).unwrap(), TableGet::Found(b"value-49".to_vec()));
    }

    #[test]
    fn deletion_tombstone() {
        let mut b = BlockTableBuilder::new(Vec::new(), 2048, 10);
        let ik = InternalKey::new(b"dead", 5, ValueType::Deletion);
        b.add(ik.as_bytes(), b"").unwrap();
        let (data, _) = b.finish().unwrap();
        let r = BlockTableReader::open(SliceSource(data)).unwrap();
        assert_eq!(r.get(b"dead", 100).unwrap(), TableGet::Deleted);
    }

    #[test]
    fn iterator_full_scan_matches_input() {
        for block_size in [0usize, 512, 8192] {
            let data = build(300, block_size);
            let r = BlockTableReader::open(SliceSource(data)).unwrap();
            let mut it = r.iter(4096);
            let all = collect_all(&mut it).unwrap();
            assert_eq!(all.len(), 300, "block_size={block_size}");
            for (i, (k, v)) in all.iter().enumerate() {
                assert_eq!(key::user_key(k), format!("key{i:06}").as_bytes());
                assert_eq!(v, format!("value-{i}").as_bytes());
            }
        }
    }

    #[test]
    fn iterator_seek() {
        let data = build(100, 1024);
        let r = BlockTableReader::open(SliceSource(data)).unwrap();
        let mut it = r.iter(1 << 20);
        it.seek(InternalKey::for_lookup(b"key000042", 1000).as_bytes()).unwrap();
        assert!(it.valid());
        assert_eq!(key::user_key(it.key()), b"key000042");
        it.seek(InternalKey::for_lookup(b"zzz", 1000).as_bytes()).unwrap();
        assert!(!it.valid());
        // Seek to a key between entries lands on the next one.
        it.seek(InternalKey::for_lookup(b"key0000425", 1000).as_bytes()).unwrap();
        assert_eq!(key::user_key(it.key()), b"key000043");
    }

    #[test]
    fn open_rejects_garbage() {
        assert!(BlockTableReader::open(SliceSource(vec![0u8; 10])).is_err());
        let mut data = build(10, 1024);
        let n = data.len();
        data[n - 1] ^= 0xFF; // corrupt the magic
        assert!(BlockTableReader::open(SliceSource(data)).is_err());
    }

    #[test]
    fn empty_table_roundtrips() {
        let b = BlockTableBuilder::new(Vec::new(), 4096, 10);
        let (data, _) = b.finish().unwrap();
        let r = BlockTableReader::open(SliceSource(data)).unwrap();
        assert_eq!(r.num_entries(), 0);
        assert_eq!(r.get(b"k", 1).unwrap(), TableGet::NotFound);
        let mut it = r.iter(1024);
        it.seek_to_first().unwrap();
        assert!(!it.valid());
    }
}
