//! # dlsm-sstable — SSTable formats for disaggregated memory
//!
//! Two on-"disk" (remote-memory) table formats, shared by dLSM and the
//! baselines, plus the pieces every LSM needs around them:
//!
//! * [`key`] — internal-key encoding `(user_key, seq, type)` and the
//!   internal-key comparator (user key ascending, sequence descending).
//! * [`bloom`] — LevelDB-style bloom filter (double hashing).
//! * [`byte_addr`] — dLSM's **byte-addressable** format (paper Sec. VI):
//!   no blocks; sorted raw key-value records in remote memory, with the
//!   per-record index `(key, offset, len)` and bloom filter kept on the
//!   compute node, so a point read fetches exactly one record with one RDMA
//!   read and a scan prefetches MB-sized chunks.
//! * [`block`] — the conventional **block-based** format (RocksDB-style)
//!   used by the RocksDB-RDMA baselines and the dLSM-Block ablation: data
//!   blocks of a configured size, an index block, a bloom filter and a
//!   footer, all stored remotely; point reads fetch whole blocks.
//! * [`iter`] — the `ForwardIter` positional-iterator trait and a merging
//!   iterator across tables/levels.
//! * [`merge`] — the compaction merge: newest-version-wins de-duplication
//!   and bottom-level tombstone dropping, shared by compute-side and
//!   near-data compaction so both produce bit-identical outputs.
//! * [`source`] — the [`source::DataSource`] abstraction over *where* table
//!   bytes live: a local slice (memory-node compaction reads its own DRAM
//!   for free) or a remote region behind a queue pair (compute-node reads
//!   pay the network cost).

pub mod block;
pub mod bloom;
pub mod byte_addr;
pub mod coding;
pub mod iter;
pub mod key;
pub mod merge;
pub mod source;

pub use bloom::BloomFilter;
pub use iter::{ClampIter, ForwardIter, MergingIter};
pub use key::{InternalKey, InternalKeyComparator, SeqNo, ValueType, MAX_SEQ};
pub use block::BlockFetcher;
pub use source::{CachedSource, DataSource, SliceSource};

/// Errors surfaced by table building and reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SstError {
    /// Malformed table bytes.
    Corrupt(String),
    /// The data source failed (e.g. an RDMA error).
    Source(String),
    /// The output sink is out of space.
    SinkFull,
}

impl std::fmt::Display for SstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SstError::Corrupt(m) => write!(f, "corrupt sstable: {m}"),
            SstError::Source(m) => write!(f, "data source error: {m}"),
            SstError::SinkFull => write!(f, "output sink full"),
        }
    }
}

impl std::error::Error for SstError {}

/// Result alias for table operations.
pub type Result<T> = std::result::Result<T, SstError>;
