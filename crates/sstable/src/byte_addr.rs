//! The byte-addressable SSTable format (paper Sec. VI, Fig. 4).
//!
//! dLSM drops the notion of "blocks": the remote-memory image of a table is
//! just the sorted key-value records, back to back. Everything needed to
//! *address* them — the per-record index `(key, offset, len)` and the bloom
//! filter — stays on the compute node as [`TableMeta`]:
//!
//! ```text
//!   remote memory:  | rec 0 | rec 1 | ... | rec n-1 |        (data_len bytes)
//!   record        = varint(klen) varint(vlen) internal_key value
//!   compute node  :  TableMeta { index[(key, off, len)], bloom, ... }
//! ```
//!
//! A point read probes the bloom filter, binary-searches the index, and
//! issues **one** RDMA read of exactly one record — no block-sized read
//! amplification. A scan prefetches multi-MB chunks sequentially.
//! Building a table serializes records straight into the output sink with
//! no intermediate block buffer (this is the write-side win of
//! byte-addressability: one memory copy fewer than the block format).

use std::cmp::Ordering;
use std::sync::Arc;

use crate::bloom::BloomFilter;
use crate::coding::{get_len_prefixed, get_u32, get_u64, get_varint, put_len_prefixed, put_u32, put_u64, put_varint};
use crate::iter::ForwardIter;
use crate::key::{self, compare_internal, InternalKey, SeqNo, ValueType};
use crate::source::DataSource;
use crate::{Result, SstError};

/// Where table bytes are appended during building.
///
/// The flush pipeline implements this over a chain of RDMA-registered
/// buffers (posting an async write whenever one fills); compaction
/// implements it over a memory-node region or a plain `Vec<u8>`.
pub trait TableSink {
    /// Append `data` to the table image.
    fn append(&mut self, data: &[u8]) -> Result<()>;
}

impl TableSink for Vec<u8> {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.extend_from_slice(data);
        Ok(())
    }
}

/// Compact index over every record of one table: all internal keys in one
/// blob plus fixed-width per-record slots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordIndex {
    keys: Vec<u8>,
    /// (key_off, key_len, data_off, data_len) per record.
    slots: Vec<(u32, u32, u32, u32)>,
}

impl RecordIndex {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the table has no records.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Internal key of record `i`.
    pub fn key(&self, i: usize) -> &[u8] {
        let (ko, kl, _, _) = self.slots[i];
        &self.keys[ko as usize..(ko + kl) as usize]
    }

    /// `(offset, len)` of record `i` in the remote data image.
    pub fn record(&self, i: usize) -> (u64, usize) {
        let (_, _, off, len) = self.slots[i];
        (u64::from(off), len as usize)
    }

    fn push(&mut self, ikey: &[u8], data_off: u32, data_len: u32) {
        let ko = self.keys.len() as u32;
        self.keys.extend_from_slice(ikey);
        self.slots.push((ko, ikey.len() as u32, data_off, data_len));
    }

    /// Index of the first record with key ≥ `ikey`, or `len()` if none.
    pub fn seek_ge(&self, ikey: &[u8]) -> usize {
        let mut lo = 0;
        let mut hi = self.slots.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if compare_internal(self.key(mid), ikey) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Approximate resident size of the index in compute-node memory.
    pub fn memory_usage(&self) -> usize {
        self.keys.len() + self.slots.len() * 16
    }
}

/// Compute-node-resident metadata for one byte-addressable SSTable.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    /// Per-record index.
    pub index: RecordIndex,
    /// Bloom filter over user keys.
    pub bloom: BloomFilter,
    /// Length of the remote data image in bytes.
    pub data_len: u64,
    /// Number of records.
    pub num_entries: u64,
}

impl TableMeta {
    /// Smallest internal key, if any records exist.
    pub fn smallest(&self) -> Option<&[u8]> {
        (!self.index.is_empty()).then(|| self.index.key(0))
    }

    /// Largest internal key, if any records exist.
    pub fn largest(&self) -> Option<&[u8]> {
        (!self.index.is_empty()).then(|| self.index.key(self.index.len() - 1))
    }

    /// Resolve a point lookup against the compute-resident metadata alone:
    /// either the answer is already known (bloom miss, out of range,
    /// tombstone) or exactly one remote record must be fetched. Separating
    /// the *decision* from the *fetch* lets callers batch many record reads
    /// on one queue pair (multi-get).
    pub fn locate(&self, user_key: &[u8], seq: SeqNo) -> Locate {
        if !self.bloom.may_contain(user_key) {
            return Locate::NotFound;
        }
        let lookup = InternalKey::for_lookup(user_key, seq);
        let i = self.index.seek_ge(lookup.as_bytes());
        if i >= self.index.len() {
            return Locate::NotFound;
        }
        let entry_key = self.index.key(i);
        match key::split(entry_key) {
            Some((ukey, _, _)) if ukey != user_key => Locate::NotFound,
            Some((_, _, ValueType::Deletion)) => Locate::Deleted,
            Some((_, _, ValueType::Value)) => {
                let (offset, len) = self.index.record(i);
                Locate::Record { index: i, offset, len }
            }
            None => Locate::NotFound,
        }
    }

    /// Serialize for transport (e.g. in the near-data-compaction RPC reply).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.index.keys.len() + self.index.slots.len() * 16);
        put_u64(&mut out, self.num_entries);
        put_u64(&mut out, self.data_len);
        put_len_prefixed(&mut out, &self.bloom.encode());
        put_len_prefixed(&mut out, &self.index.keys);
        put_u32(&mut out, self.index.slots.len() as u32);
        for &(ko, kl, off, len) in &self.index.slots {
            put_u32(&mut out, ko);
            put_u32(&mut out, kl);
            put_u32(&mut out, off);
            put_u32(&mut out, len);
        }
        out
    }

    /// Deserialize; returns the meta and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(TableMeta, usize)> {
        let num_entries = get_u64(buf, 0)?;
        let data_len = get_u64(buf, 8)?;
        let mut off = 16;
        let (bloom_bytes, n) = get_len_prefixed(buf, off)?;
        off += n;
        let bloom = BloomFilter::decode(bloom_bytes)
            .ok_or_else(|| SstError::Corrupt("bad bloom filter".into()))?;
        let (keys, n) = get_len_prefixed(buf, off)?;
        off += n;
        let count = get_u32(buf, off)? as usize;
        off += 4;
        // Never trust a wire count for pre-allocation.
        let mut slots = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let ko = get_u32(buf, off)?;
            let kl = get_u32(buf, off + 4)?;
            let doff = get_u32(buf, off + 8)?;
            let dlen = get_u32(buf, off + 12)?;
            if (ko + kl) as usize > keys.len() {
                return Err(SstError::Corrupt("index slot beyond key blob".into()));
            }
            slots.push((ko, kl, doff, dlen));
            off += 16;
        }
        if count as u64 != num_entries {
            return Err(SstError::Corrupt("entry count mismatch".into()));
        }
        Ok((
            TableMeta {
                index: RecordIndex { keys: keys.to_vec(), slots },
                bloom,
                data_len,
                num_entries,
            },
            off,
        ))
    }
}

/// Streaming builder for the byte-addressable format.
///
/// Keys must be added in internal-key order. Records are serialized directly
/// into the sink; the index and bloom filter accumulate locally and come out
/// in [`ByteAddrBuilder::finish`] as the [`TableMeta`].
pub struct ByteAddrBuilder<S: TableSink> {
    sink: S,
    offset: u64,
    index: RecordIndex,
    bits_per_key: usize,
    scratch: Vec<u8>,
}

impl<S: TableSink> ByteAddrBuilder<S> {
    /// Start building into `sink` with the given bloom budget.
    pub fn new(sink: S, bits_per_key: usize) -> ByteAddrBuilder<S> {
        ByteAddrBuilder { sink, offset: 0, index: RecordIndex::default(), bits_per_key, scratch: Vec::with_capacity(16) }
    }

    /// Append one record. `ikey` must sort after every previously-added key.
    pub fn add(&mut self, ikey: &[u8], value: &[u8]) -> Result<()> {
        debug_assert!(
            self.index.is_empty()
                || compare_internal(self.index.key(self.index.len() - 1), ikey) == Ordering::Less,
            "records must be added in internal-key order"
        );
        self.scratch.clear();
        put_varint(&mut self.scratch, ikey.len() as u64);
        put_varint(&mut self.scratch, value.len() as u64);
        let total = self.scratch.len() + ikey.len() + value.len();
        if self.offset + total as u64 > u64::from(u32::MAX) {
            return Err(SstError::SinkFull);
        }
        self.sink.append(&self.scratch)?;
        self.sink.append(ikey)?;
        self.sink.append(value)?;
        self.index.push(ikey, self.offset as u32, total as u32);
        self.offset += total as u64;
        Ok(())
    }

    /// Current size of the data image.
    pub fn data_len(&self) -> u64 {
        self.offset
    }

    /// Number of records added.
    pub fn num_entries(&self) -> usize {
        self.index.len()
    }

    /// Finish: build the bloom filter over user keys and return the sink and
    /// metadata.
    pub fn finish(self) -> (S, TableMeta) {
        let n = self.index.len();
        let bloom = BloomFilter::build(
            UserKeyIter { index: &self.index, i: 0, n },
            self.bits_per_key,
        );
        let meta = TableMeta {
            num_entries: n as u64,
            data_len: self.offset,
            index: self.index,
            bloom,
        };
        (self.sink, meta)
    }
}

struct UserKeyIter<'a> {
    index: &'a RecordIndex,
    i: usize,
    n: usize,
}

impl<'a> Iterator for UserKeyIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.i >= self.n {
            return None;
        }
        let k = key::user_key(self.index.key(self.i));
        self.i += 1;
        Some(k)
    }
}

impl<'a> ExactSizeIterator for UserKeyIter<'a> {
    fn len(&self) -> usize {
        self.n - self.i
    }
}

/// Parse one complete record image: returns `(internal_key, value)`.
pub fn parse_record_bytes(buf: &[u8]) -> Result<(&[u8], &[u8])> {
    let (k, v, _) = parse_record(buf)?;
    Ok((k, v))
}

/// Parse one record at `buf[0..]`: returns `(ikey, value, record_len)`.
fn parse_record(buf: &[u8]) -> Result<(&[u8], &[u8], usize)> {
    let (klen, n1) = get_varint(buf, 0)?;
    let (vlen, n2) = get_varint(buf, n1)?;
    let kstart = n1 + n2;
    let vstart = kstart + klen as usize;
    let end = vstart + vlen as usize;
    if end > buf.len() {
        return Err(SstError::Corrupt("record extends past buffer".into()));
    }
    Ok((&buf[kstart..vstart], &buf[vstart..end], end))
}

/// Reader over a byte-addressable table.
pub struct ByteAddrReader<S: DataSource> {
    meta: Arc<TableMeta>,
    source: S,
}

/// Outcome of [`TableMeta::locate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locate {
    /// The table holds no visible version of the key.
    NotFound,
    /// The newest visible version is a tombstone (no fetch needed).
    Deleted,
    /// The newest visible version is the record at `offset`/`len`.
    Record {
        /// Index-slot position of the record.
        index: usize,
        /// Offset of the record in the data image.
        offset: u64,
        /// Record length in bytes.
        len: usize,
    },
}

/// Result of a point lookup inside one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableGet {
    /// The key's newest visible version is a live value.
    Found(Vec<u8>),
    /// The key's newest visible version is a deletion tombstone.
    Deleted,
    /// The table holds no visible version of the key.
    NotFound,
}

impl<S: DataSource> ByteAddrReader<S> {
    /// Open a table from its compute-node metadata and a data source.
    pub fn new(meta: Arc<TableMeta>, source: S) -> ByteAddrReader<S> {
        ByteAddrReader { meta, source }
    }

    /// The table's metadata.
    pub fn meta(&self) -> &Arc<TableMeta> {
        &self.meta
    }

    /// Point lookup of `user_key` at snapshot `seq`: bloom probe, index
    /// binary search, then **one** read of exactly one record.
    pub fn get(&self, user_key: &[u8], seq: SeqNo) -> Result<TableGet> {
        match self.meta.locate(user_key, seq) {
            Locate::NotFound => Ok(TableGet::NotFound),
            Locate::Deleted => Ok(TableGet::Deleted),
            Locate::Record { index, offset, len } => {
                let mut buf = vec![0u8; len];
                self.source.read(offset, &mut buf)?;
                let (ikey, value, _) = parse_record(&buf)?;
                if ikey != self.meta.index.key(index) {
                    return Err(SstError::Corrupt("record key does not match index".into()));
                }
                Ok(TableGet::Found(value.to_vec()))
            }
        }
    }

    /// Sequential iterator prefetching `prefetch_bytes` per read (the paper
    /// uses multi-MB chunks for range queries, Sec. VI). The iterator owns a
    /// clone of the source and an `Arc` of the metadata, so it outlives the
    /// reader — database scans hold many such iterators at once.
    pub fn iter(&self, prefetch_bytes: usize) -> ByteAddrIter<S>
    where
        S: Clone,
    {
        ByteAddrIter {
            meta: Arc::clone(&self.meta),
            source: self.source.clone(),
            idx: usize::MAX,
            buf: Vec::new(),
            buf_start: 0,
            key_range: 0..0,
            val_range: 0..0,
            prefetch: prefetch_bytes.max(1),
        }
    }
}

/// Chunk-prefetching iterator over a byte-addressable table (owns its
/// metadata handle and data source).
pub struct ByteAddrIter<S: DataSource> {
    meta: Arc<TableMeta>,
    source: S,
    /// Current record index, `usize::MAX` = before first / invalid.
    idx: usize,
    buf: Vec<u8>,
    buf_start: u64,
    key_range: std::ops::Range<usize>,
    val_range: std::ops::Range<usize>,
    prefetch: usize,
}

impl<S: DataSource> ByteAddrIter<S> {
    /// Iterate a table directly from its parts.
    pub fn from_parts(meta: Arc<TableMeta>, source: S, prefetch_bytes: usize) -> ByteAddrIter<S> {
        ByteAddrIter {
            meta,
            source,
            idx: usize::MAX,
            buf: Vec::new(),
            buf_start: 0,
            key_range: 0..0,
            val_range: 0..0,
            prefetch: prefetch_bytes.max(1),
        }
    }

    fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// Load the chunk containing record `i` (and as many following bytes as
    /// the prefetch window allows), then parse record `i`.
    fn load_at(&mut self, i: usize) -> Result<()> {
        let (off, len) = self.meta().index.record(i);
        let in_buf = off >= self.buf_start
            && off + len as u64 <= self.buf_start + self.buf.len() as u64
            && !self.buf.is_empty();
        if !in_buf {
            let want = (self.prefetch.max(len) as u64).min(self.meta.data_len - off) as usize;
            self.buf.resize(want, 0);
            self.source.read(off, &mut self.buf)?;
            self.buf_start = off;
        }
        let rel = (off - self.buf_start) as usize;
        let sub = &self.buf[rel..];
        let (klen, n1) = get_varint(sub, 0)?;
        let (vlen, n2) = get_varint(sub, n1)?;
        let kstart = rel + n1 + n2;
        let vstart = kstart + klen as usize;
        let vend = vstart + vlen as usize;
        if vend > self.buf.len() {
            return Err(SstError::Corrupt("record extends past prefetch buffer".into()));
        }
        self.key_range = kstart..vstart;
        self.val_range = vstart..vend;
        self.idx = i;
        Ok(())
    }

    fn set_invalid(&mut self) {
        self.idx = usize::MAX;
    }
}

impl<S: DataSource> ForwardIter for ByteAddrIter<S> {
    fn valid(&self) -> bool {
        self.idx != usize::MAX && self.idx < self.meta().index.len()
    }

    fn key(&self) -> &[u8] {
        debug_assert!(self.valid());
        &self.buf[self.key_range.clone()]
    }

    fn value(&self) -> &[u8] {
        debug_assert!(self.valid());
        &self.buf[self.val_range.clone()]
    }

    fn next(&mut self) -> Result<()> {
        debug_assert!(self.valid());
        let n = self.idx + 1;
        if n >= self.meta().index.len() {
            self.set_invalid();
            return Ok(());
        }
        self.load_at(n)
    }

    fn seek(&mut self, ikey: &[u8]) -> Result<()> {
        let i = self.meta().index.seek_ge(ikey);
        if i >= self.meta().index.len() {
            self.set_invalid();
            return Ok(());
        }
        self.load_at(i)
    }

    fn seek_to_first(&mut self) -> Result<()> {
        if self.meta().index.is_empty() {
            self.set_invalid();
            return Ok(());
        }
        self.load_at(0)
    }
}

/// Index-free sequential iterator over a byte-addressable table image.
///
/// Records are self-describing (varint lengths), so a reader that has the
/// raw data — the memory node during near-data compaction — can scan a table
/// without the compute-node-resident index. Only forward iteration is
/// supported; `seek` degrades to a linear scan from the start (compaction
/// never seeks).
pub struct RawTableIter<S: DataSource> {
    source: S,
    data_len: u64,
    /// Absolute offset of the byte after the current record.
    next_off: u64,
    buf: Vec<u8>,
    buf_start: u64,
    key_range: std::ops::Range<usize>,
    val_range: std::ops::Range<usize>,
    valid: bool,
    chunk: usize,
}

impl<S: DataSource> RawTableIter<S> {
    /// Iterate the `data_len`-byte table in `source`, reading `chunk` bytes
    /// per fetch.
    pub fn new(source: S, data_len: u64, chunk: usize) -> RawTableIter<S> {
        RawTableIter {
            source,
            data_len,
            next_off: 0,
            buf: Vec::new(),
            buf_start: 0,
            key_range: 0..0,
            val_range: 0..0,
            valid: false,
            chunk: chunk.max(64),
        }
    }

    /// Ensure `buf` holds at least `min_len` bytes starting at `off`.
    fn ensure(&mut self, off: u64, min_len: usize) -> Result<()> {
        let have = off >= self.buf_start
            && off + min_len as u64 <= self.buf_start + self.buf.len() as u64;
        if have {
            return Ok(());
        }
        let want = (self.chunk.max(min_len) as u64).min(self.data_len - off) as usize;
        if (min_len as u64) > self.data_len - off {
            return Err(SstError::Corrupt("record extends past table".into()));
        }
        self.buf.resize(want, 0);
        self.source.read(off, &mut self.buf)?;
        self.buf_start = off;
        Ok(())
    }

    fn parse_at(&mut self, off: u64) -> Result<()> {
        // A record header is at most 10+10 varint bytes; over-fetch a little
        // so the two varints parse from the buffer, then re-ensure for the
        // full record.
        self.ensure(off, (20u64.min(self.data_len - off)) as usize)?;
        let rel = (off - self.buf_start) as usize;
        let (klen, n1) = get_varint(&self.buf, rel)?;
        let (vlen, n2) = get_varint(&self.buf, rel + n1)?;
        let total = n1 + n2 + klen as usize + vlen as usize;
        self.ensure(off, total)?;
        let rel = (off - self.buf_start) as usize;
        let kstart = rel + n1 + n2;
        let vstart = kstart + klen as usize;
        self.key_range = kstart..vstart;
        self.val_range = vstart..vstart + vlen as usize;
        self.next_off = off + total as u64;
        self.valid = true;
        Ok(())
    }
}

impl<S: DataSource> ForwardIter for RawTableIter<S> {
    fn valid(&self) -> bool {
        self.valid
    }

    fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.buf[self.key_range.clone()]
    }

    fn value(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.buf[self.val_range.clone()]
    }

    fn next(&mut self) -> Result<()> {
        debug_assert!(self.valid);
        if self.next_off >= self.data_len {
            self.valid = false;
            return Ok(());
        }
        self.parse_at(self.next_off)
    }

    fn seek(&mut self, ikey: &[u8]) -> Result<()> {
        self.seek_to_first()?;
        while self.valid && compare_internal(self.key(), ikey) == Ordering::Less {
            self.next()?;
        }
        Ok(())
    }

    fn seek_to_first(&mut self) -> Result<()> {
        if self.data_len == 0 {
            self.valid = false;
            return Ok(());
        }
        self.parse_at(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SliceSource;

    fn build_table(n: usize) -> (Vec<u8>, Arc<TableMeta>) {
        let mut b = ByteAddrBuilder::new(Vec::new(), 10);
        for i in 0..n {
            let ik = InternalKey::new(format!("key{i:06}").as_bytes(), 100, ValueType::Value);
            b.add(ik.as_bytes(), format!("value-{i}").as_bytes()).unwrap();
        }
        let (data, meta) = b.finish();
        (data, Arc::new(meta))
    }

    #[test]
    fn build_and_point_get() {
        let (data, meta) = build_table(1000);
        let r = ByteAddrReader::new(meta, SliceSource(data));
        assert_eq!(r.get(b"key000500", 200).unwrap(), TableGet::Found(b"value-500".to_vec()));
        assert_eq!(r.get(b"key999999", 200).unwrap(), TableGet::NotFound);
        // Snapshot below the write seq: invisible.
        assert_eq!(r.get(b"key000500", 50).unwrap(), TableGet::NotFound);
    }

    #[test]
    fn tombstones_surface_as_deleted() {
        let mut b = ByteAddrBuilder::new(Vec::new(), 10);
        let ik = InternalKey::new(b"gone", 9, ValueType::Deletion);
        b.add(ik.as_bytes(), b"").unwrap();
        let (data, meta) = b.finish();
        let r = ByteAddrReader::new(Arc::new(meta), SliceSource(data));
        assert_eq!(r.get(b"gone", 100).unwrap(), TableGet::Deleted);
    }

    #[test]
    fn newest_visible_version_wins() {
        let mut b = ByteAddrBuilder::new(Vec::new(), 10);
        // Internal order: seq desc within a user key.
        for (seq, val) in [(30u64, "v30"), (20, "v20"), (10, "v10")] {
            let ik = InternalKey::new(b"k", seq, ValueType::Value);
            b.add(ik.as_bytes(), val.as_bytes()).unwrap();
        }
        let (data, meta) = b.finish();
        let r = ByteAddrReader::new(Arc::new(meta), SliceSource(data));
        assert_eq!(r.get(b"k", 25).unwrap(), TableGet::Found(b"v20".to_vec()));
        assert_eq!(r.get(b"k", 31).unwrap(), TableGet::Found(b"v30".to_vec()));
        assert_eq!(r.get(b"k", 10).unwrap(), TableGet::Found(b"v10".to_vec()));
        assert_eq!(r.get(b"k", 9).unwrap(), TableGet::NotFound);
    }

    #[test]
    fn iterator_scans_in_order_with_small_prefetch() {
        let (data, meta) = build_table(500);
        let r = ByteAddrReader::new(meta, SliceSource(data));
        // Tiny prefetch forces many chunk reloads; order must still hold.
        let mut it = r.iter(64);
        it.seek_to_first().unwrap();
        let mut count = 0;
        let mut last: Option<Vec<u8>> = None;
        while it.valid() {
            let k = it.key().to_vec();
            if let Some(prev) = &last {
                assert!(compare_internal(prev, &k) == Ordering::Less);
            }
            last = Some(k);
            count += 1;
            it.next().unwrap();
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn iterator_seek_lands_on_lower_bound() {
        let (data, meta) = build_table(100);
        let r = ByteAddrReader::new(meta, SliceSource(data));
        let mut it = r.iter(1 << 20);
        let target = InternalKey::for_lookup(b"key000042", 1000);
        it.seek(target.as_bytes()).unwrap();
        assert!(it.valid());
        assert_eq!(key::user_key(it.key()), b"key000042");
        assert_eq!(it.value(), b"value-42");
        let target = InternalKey::for_lookup(b"zzz", 1000);
        it.seek(target.as_bytes()).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn meta_encode_decode_roundtrip() {
        let (_, meta) = build_table(257);
        let enc = meta.encode();
        let (dec, consumed) = TableMeta::decode(&enc).unwrap();
        assert_eq!(consumed, enc.len());
        assert_eq!(&dec, meta.as_ref());
        assert_eq!(dec.smallest().unwrap(), meta.smallest().unwrap());
        assert_eq!(dec.largest().unwrap(), meta.largest().unwrap());
    }

    #[test]
    fn meta_decode_rejects_corruption() {
        let (_, meta) = build_table(10);
        let mut enc = meta.encode();
        enc.truncate(enc.len() - 3);
        assert!(TableMeta::decode(&enc).is_err());
    }

    #[test]
    fn empty_table() {
        let b = ByteAddrBuilder::new(Vec::new(), 10);
        let (data, meta) = b.finish();
        assert!(data.is_empty());
        assert_eq!(meta.num_entries, 0);
        assert!(meta.smallest().is_none());
        let r = ByteAddrReader::new(Arc::new(meta), SliceSource(data));
        assert_eq!(r.get(b"k", 1).unwrap(), TableGet::NotFound);
        let mut it = r.iter(1024);
        it.seek_to_first().unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn raw_iter_scans_without_index() {
        let (data, meta) = build_table(400);
        let mut it = RawTableIter::new(SliceSource(data), meta.data_len, 128);
        it.seek_to_first().unwrap();
        let mut n = 0;
        while it.valid() {
            assert_eq!(key::user_key(it.key()), format!("key{n:06}").as_bytes());
            assert_eq!(it.value(), format!("value-{n}").as_bytes());
            n += 1;
            it.next().unwrap();
        }
        assert_eq!(n, 400);
    }

    #[test]
    fn raw_iter_seek_linear() {
        let (data, meta) = build_table(50);
        let mut it = RawTableIter::new(SliceSource(data), meta.data_len, 4096);
        it.seek(InternalKey::for_lookup(b"key000030", 1000).as_bytes()).unwrap();
        assert!(it.valid());
        assert_eq!(key::user_key(it.key()), b"key000030");
    }

    #[test]
    fn raw_iter_empty_table() {
        let mut it = RawTableIter::new(SliceSource(Vec::new()), 0, 64);
        it.seek_to_first().unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn raw_iter_rejects_truncated_table() {
        let (mut data, meta) = build_table(5);
        data.truncate(data.len() - 3);
        let mut it = RawTableIter::new(SliceSource(data), meta.data_len, 4096);
        // The truncation bites on some record before the end.
        let mut r = it.seek_to_first();
        while r.is_ok() && it.valid() {
            r = it.next();
        }
        assert!(r.is_err());
    }

    #[test]
    fn locate_separates_decision_from_fetch() {
        let (_, meta) = build_table(100);
        match meta.locate(b"key000042", 1000) {
            Locate::Record { offset, len, .. } => {
                assert!(len > 0);
                assert!(offset + len as u64 <= meta.data_len);
            }
            other => panic!("expected a record, got {other:?}"),
        }
        assert_eq!(meta.locate(b"missing-key", 1000), Locate::NotFound);
        assert_eq!(meta.locate(b"key000042", 1), Locate::NotFound); // below snapshot
        let mut b = ByteAddrBuilder::new(Vec::new(), 10);
        b.add(InternalKey::new(b"gone", 5, ValueType::Deletion).as_bytes(), b"").unwrap();
        let (_, m2) = b.finish();
        assert_eq!(m2.locate(b"gone", 100), Locate::Deleted);
    }

    #[test]
    fn record_index_seek_ge() {
        let (_, meta) = build_table(10);
        let probe = InternalKey::for_lookup(b"key000003", 1_000_000);
        assert_eq!(meta.index.seek_ge(probe.as_bytes()), 3);
        let probe = InternalKey::for_lookup(b"key0000031", 1_000_000);
        assert_eq!(meta.index.seek_ge(probe.as_bytes()), 4);
        let probe = InternalKey::for_lookup(b"zzzz", 0);
        assert_eq!(meta.index.seek_ge(probe.as_bytes()), 10);
    }
}
