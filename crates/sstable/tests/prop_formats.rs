//! Property tests: both SSTable formats must round-trip arbitrary sorted
//! key-value sets, and the compaction merge must match a model.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use dlsm_sstable::block::{BlockTableBuilder, BlockTableReader};
use dlsm_sstable::byte_addr::{ByteAddrBuilder, ByteAddrReader, TableGet, TableMeta};
use dlsm_sstable::iter::{collect_all, MergingIter, VecIter};
use dlsm_sstable::key::{self, InternalKey, ValueType, MAX_SEQ};
use dlsm_sstable::merge::{CompactionIter, MergeConfig};
use dlsm_sstable::source::{DataSource, SliceSource};
use proptest::prelude::*;

/// Sorted unique user keys with values (and a deterministic seq per entry).
fn entries_strategy() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    prop::collection::btree_map(
        prop::collection::vec(any::<u8>(), 1..24),
        prop::collection::vec(any::<u8>(), 0..64),
        1..120,
    )
    .prop_map(|m| m.into_iter().collect())
}

fn ikey(user: &[u8], seq: u64) -> Vec<u8> {
    InternalKey::new(user, seq, ValueType::Value).into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn byte_addr_roundtrip(entries in entries_strategy()) {
        let mut b = ByteAddrBuilder::new(Vec::new(), 10);
        for (i, (k, v)) in entries.iter().enumerate() {
            b.add(&ikey(k, 100 + i as u64), v).unwrap();
        }
        let (data, meta) = b.finish();
        // Metadata round-trips through its wire encoding.
        let (meta2, _) = TableMeta::decode(&meta.encode()).unwrap();
        prop_assert_eq!(&meta2, &meta);
        let reader = ByteAddrReader::new(Arc::new(meta), SliceSource(data));
        for (k, v) in &entries {
            prop_assert_eq!(reader.get(k, MAX_SEQ).unwrap(), TableGet::Found(v.clone()));
        }
        // Full iteration returns everything in order.
        let mut it = reader.iter(97); // deliberately awkward prefetch size
        let all = collect_all(&mut it).unwrap();
        prop_assert_eq!(all.len(), entries.len());
        for ((got_k, got_v), (k, v)) in all.iter().zip(entries.iter()) {
            prop_assert_eq!(key::user_key(got_k), k.as_slice());
            prop_assert_eq!(got_v, v);
        }
    }

    #[test]
    fn block_roundtrip(entries in entries_strategy(), block_size in prop::sample::select(vec![0usize, 64, 512, 4096])) {
        let mut b = BlockTableBuilder::new(Vec::new(), block_size, 10);
        for (i, (k, v)) in entries.iter().enumerate() {
            b.add(&ikey(k, 100 + i as u64), v).unwrap();
        }
        let (data, total) = b.finish().unwrap();
        prop_assert_eq!(data.len() as u64, total);
        let reader = BlockTableReader::open(SliceSource(data)).unwrap();
        prop_assert_eq!(reader.num_entries(), entries.len() as u64);
        for (k, v) in &entries {
            prop_assert_eq!(reader.get(k, MAX_SEQ).unwrap(), TableGet::Found(v.clone()));
        }
        let mut it = reader.iter(777);
        let all = collect_all(&mut it).unwrap();
        prop_assert_eq!(all.len(), entries.len());
    }

    /// The compaction merge over multi-version inputs equals the obvious
    /// model: newest version per user key wins; tombstones hide keys at the
    /// bottom level.
    #[test]
    fn compaction_merge_matches_model(
        ops in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 1..8), any::<bool>(), prop::collection::vec(any::<u8>(), 0..16)),
            1..200,
        )
    ) {
        // Assign increasing seqs to ops; build per-"table" runs of 40 ops.
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let mut tables: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::new();
        let mut current: BTreeMap<Vec<u8>, (u64, ValueType, Vec<u8>)> = BTreeMap::new();
        for (i, (k, is_put, v)) in ops.iter().enumerate() {
            let seq = i as u64 + 1;
            let vt = if *is_put { ValueType::Value } else { ValueType::Deletion };
            model.insert(k.clone(), is_put.then(|| v.clone()));
            current.insert(k.clone(), (seq, vt, v.clone()));
            if current.len() == 40 {
                tables.push(run_from(&current));
                current.clear();
            }
        }
        if !current.is_empty() {
            tables.push(run_from(&current));
        }
        // Newest tables must merge first: reverse (later runs are newer).
        tables.reverse();
        let children: Vec<VecIter> = tables.into_iter().map(VecIter::new).collect();
        let mut it = CompactionIter::new(
            MergingIter::new(children),
            MergeConfig { smallest_snapshot: MAX_SEQ, drop_deletions: true },
        );
        it.seek_to_first().unwrap();
        let mut got: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        while it.valid() {
            let (u, _, t) = key::split(it.key()).unwrap();
            prop_assert_eq!(t, ValueType::Value, "tombstones must be dropped at bottom level");
            prop_assert!(got.insert(u.to_vec(), it.value().to_vec()).is_none(), "duplicate user key");
            it.next().unwrap();
        }
        let want: BTreeMap<Vec<u8>, Vec<u8>> =
            model.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).collect();
        prop_assert_eq!(got, want);
    }
}

/// Wraps a source and counts every fetch, to prove the byte-addressable
/// format's headline property (paper Sec. VI): a point read costs exactly
/// one fetch of exactly the record's bytes — never a block, never a second
/// round trip — and a miss costs zero fetches (the compute-side index is
/// exact, not probabilistic).
struct CountingSource<S> {
    inner: S,
    reads: Rc<Cell<u64>>,
    bytes: Rc<Cell<u64>>,
}

impl<S: DataSource> DataSource for CountingSource<S> {
    fn read(&self, offset: u64, dst: &mut [u8]) -> dlsm_sstable::Result<()> {
        self.reads.set(self.reads.get() + 1);
        self.bytes.set(self.bytes.get() + dst.len() as u64);
        self.inner.read(offset, dst)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

fn varint_len(mut x: u64) -> u64 {
    let mut n = 1;
    while x >= 0x80 {
        x >>= 7;
        n += 1;
    }
    n
}

/// Keys and values across the extremes: 1-byte to max-length (4 KiB) keys,
/// zero-length to multi-KiB values.
fn extreme_entries_strategy() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    prop::collection::btree_map(
        prop::collection::vec(any::<u8>(), 1..300),
        prop::collection::vec(any::<u8>(), 0..600),
        1..40,
    )
    .prop_map(|m| {
        let mut entries: BTreeMap<Vec<u8>, Vec<u8>> = m;
        // Deterministic edge cases alongside the arbitrary ones: a
        // max-length key with a zero-length value, a 1-byte key with a
        // large value, and an empty-value short key.
        entries.insert(vec![0xFF; 4096], Vec::new());
        entries.insert(vec![0x00], vec![0xAB; 4096]);
        entries.insert(b"e".to_vec(), Vec::new());
        entries.into_iter().collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Byte-addressable point reads: every present key round-trips in
    /// exactly one fetch of exactly the record's encoded bytes; every
    /// absent probe costs zero fetches.
    #[test]
    fn byte_addr_point_read_is_one_exact_fetch(entries in extreme_entries_strategy()) {
        let mut b = ByteAddrBuilder::new(Vec::new(), 10);
        for (i, (k, v)) in entries.iter().enumerate() {
            b.add(&ikey(k, 100 + i as u64), v).unwrap();
        }
        let (data, meta) = b.finish();
        let reads = Rc::new(Cell::new(0u64));
        let bytes = Rc::new(Cell::new(0u64));
        let source = CountingSource {
            inner: SliceSource(data),
            reads: Rc::clone(&reads),
            bytes: Rc::clone(&bytes),
        };
        let reader = ByteAddrReader::new(Arc::new(meta), source);
        for (k, v) in &entries {
            let reads_before = reads.get();
            let bytes_before = bytes.get();
            prop_assert_eq!(reader.get(k, MAX_SEQ).unwrap(), TableGet::Found(v.clone()));
            let record = {
                let ikey_len = k.len() as u64 + 8;
                let value_len = v.len() as u64;
                varint_len(ikey_len) + varint_len(value_len) + ikey_len + value_len
            };
            prop_assert_eq!(
                reads.get() - reads_before,
                1,
                "point read of a present key must cost exactly one fetch"
            );
            prop_assert_eq!(
                bytes.get() - bytes_before,
                record,
                "the single fetch must cover exactly the record's bytes"
            );
        }
        // Probes for keys not in the table never touch the source: the
        // per-record index is exact, so a miss is decided compute-side.
        let present: std::collections::BTreeSet<&[u8]> =
            entries.iter().map(|(k, _)| k.as_slice()).collect();
        for (k, _) in &entries {
            let mut absent = k.clone();
            absent.push(0x01); // strictly longer sibling, never inserted
            if present.contains(absent.as_slice()) {
                continue;
            }
            let reads_before = reads.get();
            prop_assert_eq!(reader.get(&absent, MAX_SEQ).unwrap(), TableGet::NotFound);
            prop_assert_eq!(
                reads.get(),
                reads_before,
                "a miss must cost zero fetches"
            );
        }
    }
}

fn run_from(current: &BTreeMap<Vec<u8>, (u64, ValueType, Vec<u8>)>) -> Vec<(Vec<u8>, Vec<u8>)> {
    current
        .iter()
        .map(|(k, (seq, vt, v))| {
            (
                InternalKey::new(k, *seq, *vt).into_bytes(),
                if *vt == ValueType::Value { v.clone() } else { Vec::new() },
            )
        })
        .collect()
}
