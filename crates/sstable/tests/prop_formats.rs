//! Property tests: both SSTable formats must round-trip arbitrary sorted
//! key-value sets, and the compaction merge must match a model.

use std::collections::BTreeMap;
use std::sync::Arc;

use dlsm_sstable::block::{BlockTableBuilder, BlockTableReader};
use dlsm_sstable::byte_addr::{ByteAddrBuilder, ByteAddrReader, TableGet, TableMeta};
use dlsm_sstable::iter::{collect_all, MergingIter, VecIter};
use dlsm_sstable::key::{self, InternalKey, ValueType, MAX_SEQ};
use dlsm_sstable::merge::{CompactionIter, MergeConfig};
use dlsm_sstable::source::SliceSource;
use proptest::prelude::*;

/// Sorted unique user keys with values (and a deterministic seq per entry).
fn entries_strategy() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    prop::collection::btree_map(
        prop::collection::vec(any::<u8>(), 1..24),
        prop::collection::vec(any::<u8>(), 0..64),
        1..120,
    )
    .prop_map(|m| m.into_iter().collect())
}

fn ikey(user: &[u8], seq: u64) -> Vec<u8> {
    InternalKey::new(user, seq, ValueType::Value).into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn byte_addr_roundtrip(entries in entries_strategy()) {
        let mut b = ByteAddrBuilder::new(Vec::new(), 10);
        for (i, (k, v)) in entries.iter().enumerate() {
            b.add(&ikey(k, 100 + i as u64), v).unwrap();
        }
        let (data, meta) = b.finish();
        // Metadata round-trips through its wire encoding.
        let (meta2, _) = TableMeta::decode(&meta.encode()).unwrap();
        prop_assert_eq!(&meta2, &meta);
        let reader = ByteAddrReader::new(Arc::new(meta), SliceSource(data));
        for (k, v) in &entries {
            prop_assert_eq!(reader.get(k, MAX_SEQ).unwrap(), TableGet::Found(v.clone()));
        }
        // Full iteration returns everything in order.
        let mut it = reader.iter(97); // deliberately awkward prefetch size
        let all = collect_all(&mut it).unwrap();
        prop_assert_eq!(all.len(), entries.len());
        for ((got_k, got_v), (k, v)) in all.iter().zip(entries.iter()) {
            prop_assert_eq!(key::user_key(got_k), k.as_slice());
            prop_assert_eq!(got_v, v);
        }
    }

    #[test]
    fn block_roundtrip(entries in entries_strategy(), block_size in prop::sample::select(vec![0usize, 64, 512, 4096])) {
        let mut b = BlockTableBuilder::new(Vec::new(), block_size, 10);
        for (i, (k, v)) in entries.iter().enumerate() {
            b.add(&ikey(k, 100 + i as u64), v).unwrap();
        }
        let (data, total) = b.finish().unwrap();
        prop_assert_eq!(data.len() as u64, total);
        let reader = BlockTableReader::open(SliceSource(data)).unwrap();
        prop_assert_eq!(reader.num_entries(), entries.len() as u64);
        for (k, v) in &entries {
            prop_assert_eq!(reader.get(k, MAX_SEQ).unwrap(), TableGet::Found(v.clone()));
        }
        let mut it = reader.iter(777);
        let all = collect_all(&mut it).unwrap();
        prop_assert_eq!(all.len(), entries.len());
    }

    /// The compaction merge over multi-version inputs equals the obvious
    /// model: newest version per user key wins; tombstones hide keys at the
    /// bottom level.
    #[test]
    fn compaction_merge_matches_model(
        ops in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 1..8), any::<bool>(), prop::collection::vec(any::<u8>(), 0..16)),
            1..200,
        )
    ) {
        // Assign increasing seqs to ops; build per-"table" runs of 40 ops.
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let mut tables: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::new();
        let mut current: BTreeMap<Vec<u8>, (u64, ValueType, Vec<u8>)> = BTreeMap::new();
        for (i, (k, is_put, v)) in ops.iter().enumerate() {
            let seq = i as u64 + 1;
            let vt = if *is_put { ValueType::Value } else { ValueType::Deletion };
            model.insert(k.clone(), is_put.then(|| v.clone()));
            current.insert(k.clone(), (seq, vt, v.clone()));
            if current.len() == 40 {
                tables.push(run_from(&current));
                current.clear();
            }
        }
        if !current.is_empty() {
            tables.push(run_from(&current));
        }
        // Newest tables must merge first: reverse (later runs are newer).
        tables.reverse();
        let children: Vec<VecIter> = tables.into_iter().map(VecIter::new).collect();
        let mut it = CompactionIter::new(
            MergingIter::new(children),
            MergeConfig { smallest_snapshot: MAX_SEQ, drop_deletions: true },
        );
        it.seek_to_first().unwrap();
        let mut got: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        while it.valid() {
            let (u, _, t) = key::split(it.key()).unwrap();
            prop_assert_eq!(t, ValueType::Value, "tombstones must be dropped at bottom level");
            prop_assert!(got.insert(u.to_vec(), it.value().to_vec()).is_none(), "duplicate user key");
            it.next().unwrap();
        }
        let want: BTreeMap<Vec<u8>, Vec<u8>> =
            model.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).collect();
        prop_assert_eq!(got, want);
    }
}

fn run_from(current: &BTreeMap<Vec<u8>, (u64, ValueType, Vec<u8>)>) -> Vec<(Vec<u8>, Vec<u8>)> {
    current
        .iter()
        .map(|(k, (seq, vt, v))| {
            (
                InternalKey::new(k, *seq, *vt).into_bytes(),
                if *vt == ValueType::Value { v.clone() } else { Vec::new() },
            )
        })
        .collect()
}
