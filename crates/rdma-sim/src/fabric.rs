//! The fabric: the set of nodes, the cost model, statistics and faults.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::fault::FaultHook;
use crate::node::{Node, NodeId};
use crate::profile::NetworkProfile;
use crate::stats::FabricStats;
use crate::verbs::RdmaError;

/// A simulated RDMA network connecting any number of nodes.
///
/// ```
/// use rdma_sim::{Fabric, NetworkProfile};
/// let fabric = Fabric::new(NetworkProfile::instant());
/// let compute = fabric.add_node();
/// let memory = fabric.add_node();
/// let region = memory.register_region(4096);
///
/// let mut qp = fabric.create_qp(compute.id(), memory.id()).unwrap();
/// qp.write_sync(b"hello", region.addr(100)).unwrap();
/// let mut buf = [0u8; 5];
/// qp.read_sync(region.addr(100), &mut buf).unwrap();
/// assert_eq!(&buf, b"hello");
/// ```
pub struct Fabric {
    profile: NetworkProfile,
    nodes: RwLock<Vec<Arc<Node>>>,
    stats: FabricStats,
    fault: RwLock<Option<Arc<dyn FaultHook>>>,
}

impl Fabric {
    /// Create an empty fabric with the given cost model.
    pub fn new(profile: NetworkProfile) -> Arc<Fabric> {
        Arc::new(Fabric {
            profile,
            nodes: RwLock::new(Vec::new()),
            stats: FabricStats::default(),
            fault: RwLock::new(None),
        })
    }

    /// The fabric's cost model.
    pub fn profile(&self) -> &NetworkProfile {
        &self.profile
    }

    /// Attach a new node and return its handle.
    pub fn add_node(self: &Arc<Self>) -> Arc<Node> {
        let mut nodes = self.nodes.write();
        let node = Arc::new(Node::new(NodeId(nodes.len() as u32)));
        nodes.push(Arc::clone(&node));
        node
    }

    /// Look up a node by id.
    pub fn node(&self, id: NodeId) -> Result<Arc<Node>, RdmaError> {
        self.nodes
            .read()
            .get(id.0 as usize)
            .cloned()
            .ok_or(RdmaError::UnknownNode { node: id.0 })
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.read().len()
    }

    /// Create a queue pair from `local` to `remote`. Per the dLSM design,
    /// every worker thread creates its own queue pair (Sec. X-B), so this is
    /// expected to be called once per thread per peer.
    pub fn create_qp(
        self: &Arc<Self>,
        local: NodeId,
        remote: NodeId,
    ) -> Result<crate::qp::QueuePair, RdmaError> {
        // Validate both endpoints exist now, not at first post.
        self.node(local)?;
        self.node(remote)?;
        Ok(crate::qp::QueuePair::new(Arc::clone(self), local, remote))
    }

    /// Traffic counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    pub(crate) fn record(&self, verb: crate::verbs::Verb, bytes: usize) {
        self.stats.record(verb, bytes);
    }

    /// Install (or clear) a fault-injection hook.
    pub fn set_fault_hook(&self, hook: Option<Arc<dyn FaultHook>>) {
        *self.fault.write() = hook;
    }

    pub(crate) fn fault(&self) -> Option<Arc<dyn FaultHook>> {
        self.fault.read().clone()
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("nodes", &self.node_count())
            .field("profile", &self.profile)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_get_sequential_ids() {
        let f = Fabric::new(NetworkProfile::instant());
        let a = f.add_node();
        let b = f.add_node();
        assert_eq!(a.id(), NodeId(0));
        assert_eq!(b.id(), NodeId(1));
        assert_eq!(f.node_count(), 2);
        assert!(f.node(NodeId(1)).is_ok());
        assert!(f.node(NodeId(2)).is_err());
    }

    #[test]
    fn qp_creation_validates_endpoints() {
        let f = Fabric::new(NetworkProfile::instant());
        let a = f.add_node();
        assert!(f.create_qp(a.id(), NodeId(5)).is_err());
        let b = f.add_node();
        assert!(f.create_qp(a.id(), b.id()).is_ok());
    }
}
