//! Fabric nodes: memory-region registry, message inbox, immediate events.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::msg::{ImmEvent, Message};
use crate::region::{MemoryRegion, MrId};
use crate::verbs::RdmaError;

/// Identifier of a node on the fabric (compute or memory node alike — the
/// fabric does not distinguish; roles are a property of the software running
/// on them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// One endpoint on the fabric.
pub struct Node {
    id: NodeId,
    regions: RwLock<Vec<Arc<MemoryRegion>>>,
    next_rkey: AtomicU32,
    pub(crate) inbox_tx: Sender<Message>,
    inbox_rx: Receiver<Message>,
    pub(crate) imm_tx: Sender<ImmEvent>,
    imm_rx: Receiver<ImmEvent>,
}

impl Node {
    pub(crate) fn new(id: NodeId) -> Node {
        let (inbox_tx, inbox_rx) = unbounded();
        let (imm_tx, imm_rx) = unbounded();
        Node {
            id,
            regions: RwLock::new(Vec::new()),
            next_rkey: AtomicU32::new(0x5EED_0001),
            inbox_tx,
            inbox_rx,
            imm_tx,
            imm_rx,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Register (pin) `len` bytes of this node's memory, mirroring
    /// `ibv_reg_mr`. Returns the region handle; remote peers address it with
    /// [`MemoryRegion::addr`]'s `(node, mr, offset, rkey)`.
    ///
    /// Registration is deliberately coarse-grained in dLSM: large regions are
    /// registered once up front and sub-allocated in user space (Sec. X-B).
    pub fn register_region(&self, len: usize) -> Arc<MemoryRegion> {
        // ORDERING: relaxed — rkey generation needs uniqueness only.
        let rkey = self.next_rkey.fetch_add(1, Ordering::Relaxed);
        let mut regions = self.regions.write();
        let mr = MrId(regions.len() as u32);
        let region = Arc::new(MemoryRegion::new(self.id, mr, rkey, len));
        regions.push(Arc::clone(&region));
        region
    }

    /// Look up a registered region by id.
    pub fn region(&self, mr: MrId) -> Result<Arc<MemoryRegion>, RdmaError> {
        self.regions
            .read()
            .get(mr.0 as usize)
            .cloned()
            .ok_or(RdmaError::UnknownRegion { node: self.id.0, mr: mr.0 })
    }

    /// Number of regions registered so far.
    pub fn region_count(&self) -> usize {
        self.regions.read().len()
    }

    /// Block until a two-sided message arrives (or `timeout` elapses).
    ///
    /// The timeout bounds the wait for a message to be *posted*; once one is
    /// taken off the queue it is always delivered, after spinning out its
    /// remaining wire time (events are never dropped — a popped completion
    /// on real hardware is never lost either).
    ///
    /// Safe to call from multiple dispatcher threads concurrently; each
    /// message is delivered to exactly one receiver.
    pub fn recv(&self, timeout: Duration) -> Result<Message, RdmaError> {
        let msg = self.inbox_rx.recv_timeout(timeout).map_err(|_| RdmaError::RecvTimeout)?;
        crate::qp::spin_until(msg.ready_at);
        Ok(msg)
    }

    /// Non-blocking receive; returns `None` if no message is *ready* (a
    /// message still in flight is left queued).
    pub fn try_recv(&self) -> Option<Message> {
        match self.inbox_rx.try_recv() {
            Ok(msg) => {
                if msg.ready_at > Instant::now() {
                    // Still on the wire: requeue and report empty. FIFO per
                    // sender is preserved because ready times are monotone
                    // per sender and this is the only consumer path that
                    // requeues.
                    let _ = self.inbox_tx.send(msg);
                    None
                } else {
                    Some(msg)
                }
            }
            Err(_) => None,
        }
    }

    /// Block until an immediate event (from WRITE-with-IMMEDIATE) arrives.
    /// As with [`Node::recv`], a popped event is never dropped.
    pub fn recv_imm(&self, timeout: Duration) -> Result<ImmEvent, RdmaError> {
        let ev = self.imm_rx.recv_timeout(timeout).map_err(|_| RdmaError::RecvTimeout)?;
        crate::qp::spin_until(ev.ready_at);
        Ok(ev)
    }

    /// Messages currently queued (ready or in flight).
    pub fn inbox_len(&self) -> usize {
        self.inbox_rx.len()
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("regions", &self.regions.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup_regions() {
        let n = Node::new(NodeId(3));
        let r0 = n.register_region(64);
        let r1 = n.register_region(128);
        assert_ne!(r0.rkey(), r1.rkey());
        assert_eq!(n.region(MrId(0)).unwrap().len(), 64);
        assert_eq!(n.region(MrId(1)).unwrap().len(), 128);
        assert!(n.region(MrId(2)).is_err());
        assert_eq!(n.region_count(), 2);
    }

    #[test]
    fn recv_times_out_on_empty_inbox() {
        let n = Node::new(NodeId(0));
        let err = n.recv(Duration::from_millis(5)).unwrap_err();
        assert_eq!(err, RdmaError::RecvTimeout);
        assert!(n.try_recv().is_none());
    }

    #[test]
    fn ready_message_is_received() {
        let n = Node::new(NodeId(0));
        n.inbox_tx
            .send(Message { src: NodeId(9), payload: vec![1, 2, 3], ready_at: Instant::now() })
            .unwrap();
        let m = n.recv(Duration::from_secs(1)).unwrap();
        assert_eq!(m.src, NodeId(9));
        assert_eq!(m.payload, vec![1, 2, 3]);
    }

    #[test]
    fn try_recv_defers_in_flight_message() {
        let n = Node::new(NodeId(0));
        let ready_at = Instant::now() + Duration::from_millis(20);
        n.inbox_tx.send(Message { src: NodeId(1), payload: vec![7], ready_at }).unwrap();
        assert!(n.try_recv().is_none(), "in-flight message must not be visible yet");
        crate::qp::spin_until(ready_at);
        assert!(n.try_recv().is_some());
    }
}
