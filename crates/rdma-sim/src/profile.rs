//! Network cost model.
//!
//! Every verb is charged `base_latency + bytes / bandwidth` (plus a tiny
//! doorbell cost paid synchronously at post time). The defaults are
//! calibrated to the hardware used in the dLSM paper's evaluation.

use std::time::Duration;

/// Cost model for one fabric.
///
/// The simulator charges each work request a completion deadline of
/// `post_time + base_latency + payload_bytes / bytes_per_sec`, and charges
/// the posting thread `post_overhead` synchronously (the doorbell write).
///
/// ```
/// use rdma_sim::NetworkProfile;
/// let edr = NetworkProfile::edr_100g();
/// // Latency-dominated small op vs bandwidth-dominated large op: the
/// // per-byte efficiency gap is what motivates LSM-style batched writes.
/// let small = edr.transfer_cost(64);
/// let large = edr.transfer_cost(1 << 20);
/// let small_ns_per_byte = small.as_nanos() as f64 / 64.0;
/// let large_ns_per_byte = large.as_nanos() as f64 / (1u64 << 20) as f64;
/// assert!(small_ns_per_byte / large_ns_per_byte > 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkProfile {
    /// One-way base latency charged to every work request.
    pub base_latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Synchronous CPU cost of posting a work request (doorbell + WQE build).
    pub post_overhead: Duration,
    /// Extra latency charged to two-sided verbs (receiver-side processing).
    pub two_sided_extra: Duration,
}

impl NetworkProfile {
    /// Mellanox EDR ConnectX-4, 100 Gb/s — the NIC in the paper's main
    /// testbed (Sec. XI-B).
    pub fn edr_100g() -> Self {
        NetworkProfile {
            base_latency: Duration::from_nanos(1_600),
            bytes_per_sec: 100.0e9 / 8.0,
            post_overhead: Duration::from_nanos(70),
            two_sided_extra: Duration::from_nanos(900),
        }
    }

    /// Mellanox FDR ConnectX-3, 56 Gb/s — the CloudLab NIC used for the
    /// multi-node experiments (Sec. XI-C8).
    pub fn fdr_56g() -> Self {
        NetworkProfile {
            base_latency: Duration::from_nanos(2_100),
            bytes_per_sec: 56.0e9 / 8.0,
            post_overhead: Duration::from_nanos(90),
            two_sided_extra: Duration::from_nanos(1_100),
        }
    }

    /// A CXL-attached memory profile (the paper's conclusion: "many of the
    /// ideas ... can be applied to other technologies, e.g., CXL"). CXL 2.0
    /// load/store latency is a few hundred nanoseconds with near-DRAM
    /// bandwidth — a much smaller per-operation penalty than RDMA, which
    /// shrinks (but does not eliminate) the batching advantage.
    pub fn cxl() -> Self {
        NetworkProfile {
            base_latency: Duration::from_nanos(350),
            bytes_per_sec: 32.0e9,
            post_overhead: Duration::from_nanos(20),
            two_sided_extra: Duration::from_nanos(400),
        }
    }

    /// Zero-cost profile for unit tests: completions are ready immediately.
    pub fn instant() -> Self {
        NetworkProfile {
            base_latency: Duration::ZERO,
            bytes_per_sec: f64::INFINITY,
            post_overhead: Duration::ZERO,
            two_sided_extra: Duration::ZERO,
        }
    }

    /// Scale all time costs by `factor` (e.g. `0.1` to run benchmarks on a
    /// 10x faster simulated network, `10.0` for a slower one).
    pub fn scaled(self, factor: f64) -> Self {
        let scale = |d: Duration| Duration::from_nanos((d.as_nanos() as f64 * factor) as u64);
        NetworkProfile {
            base_latency: scale(self.base_latency),
            bytes_per_sec: self.bytes_per_sec / factor.max(f64::MIN_POSITIVE),
            post_overhead: scale(self.post_overhead),
            two_sided_extra: scale(self.two_sided_extra),
        }
    }

    /// Total one-sided transfer cost (latency + serialization) for `bytes`.
    pub fn transfer_cost(&self, bytes: usize) -> Duration {
        self.base_latency + self.wire_time(bytes)
    }

    /// Time the payload occupies the wire.
    pub fn wire_time(&self, bytes: usize) -> Duration {
        if self.bytes_per_sec.is_infinite() || bytes == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((bytes as f64 / self.bytes_per_sec * 1e9) as u64)
    }

    /// Effective throughput in bytes/sec when transferring in units of
    /// `bytes` per work request — used to reason about the 64 B vs 1 MB gap.
    pub fn effective_bandwidth(&self, bytes: usize) -> f64 {
        let cost = self.transfer_cost(bytes);
        if cost.is_zero() {
            return f64::INFINITY;
        }
        bytes as f64 / cost.as_secs_f64()
    }
}

impl Default for NetworkProfile {
    fn default() -> Self {
        Self::edr_100g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edr_small_vs_large_gap_is_about_100x() {
        // Paper Sec. I: "100x performance gap between transferring the same
        // amount of data in 64 byte units vs 1MB units".
        let p = NetworkProfile::edr_100g();
        let gap = p.effective_bandwidth(1 << 20) / p.effective_bandwidth(64);
        assert!(gap > 20.0 && gap < 500.0, "gap = {gap}");
    }

    #[test]
    fn instant_profile_is_free() {
        let p = NetworkProfile::instant();
        assert_eq!(p.transfer_cost(1 << 30), Duration::ZERO);
        assert!(p.effective_bandwidth(1).is_infinite());
    }

    #[test]
    fn wire_time_scales_linearly() {
        let p = NetworkProfile::edr_100g();
        let t1 = p.wire_time(1 << 20).as_nanos();
        let t2 = p.wire_time(2 << 20).as_nanos();
        let ratio = t2 as f64 / t1 as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn scaled_profile_scales_latency_and_bandwidth() {
        let p = NetworkProfile::edr_100g().scaled(2.0);
        assert_eq!(p.base_latency, Duration::from_nanos(3_200));
        let base = NetworkProfile::edr_100g();
        let r = p.wire_time(1 << 20).as_nanos() as f64 / base.wire_time(1 << 20).as_nanos() as f64;
        assert!((r - 2.0).abs() < 0.01);
    }

    #[test]
    fn cxl_has_lower_latency_and_smaller_gap_than_edr() {
        let edr = NetworkProfile::edr_100g();
        let cxl = NetworkProfile::cxl();
        assert!(cxl.base_latency < edr.base_latency);
        let gap = |p: &NetworkProfile| p.effective_bandwidth(1 << 20) / p.effective_bandwidth(64);
        assert!(
            gap(&cxl) < gap(&edr),
            "smaller per-op latency must shrink the batching gap"
        );
    }

    #[test]
    fn fdr_is_slower_than_edr() {
        let edr = NetworkProfile::edr_100g();
        let fdr = NetworkProfile::fdr_56g();
        assert!(fdr.transfer_cost(1 << 20) > edr.transfer_cost(1 << 20));
        assert!(fdr.base_latency > edr.base_latency);
    }
}
