//! Two-sided message and immediate-event types.

use std::time::Instant;

use crate::node::NodeId;

/// A two-sided message delivered to a node's inbox via SEND.
///
/// The fabric stamps each message with the simulated time at which it is
/// allowed to become visible; receivers spin until then, so two-sided verbs
/// pay the full network cost at the receiver just like on real hardware.
#[derive(Debug)]
pub struct Message {
    /// Sender node.
    pub src: NodeId,
    /// Message payload (ownership transferred to the receiver).
    pub payload: Vec<u8>,
    pub(crate) ready_at: Instant,
}

/// An immediate event raised at the target node by WRITE-with-IMMEDIATE.
///
/// dLSM's compaction RPC uses the 32-bit immediate as a requester id so the
/// memory node's reply can wake exactly the sleeping requester thread
/// (paper Sec. X-D).
#[derive(Debug, Clone, Copy)]
pub struct ImmEvent {
    /// Node that issued the write.
    pub src: NodeId,
    /// The 32-bit immediate value.
    pub imm: u32,
    /// Payload length of the carrying write.
    pub bytes: usize,
    pub(crate) ready_at: Instant,
}
