//! Work-request verbs, completions and error types.

use std::fmt;
use std::time::Instant;

/// Opaque caller-chosen work-request identifier, echoed in the completion
/// (mirrors `ibv_wr_id`). dLSM uses it to identify which flush buffer a
/// completion refers to.
pub type WrId = u64;

/// The verb an operation was posted with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verb {
    /// One-sided remote read.
    Read,
    /// One-sided remote write.
    Write,
    /// One-sided remote write carrying a 32-bit immediate that raises an
    /// event at the remote node (consumes a receive slot on real hardware).
    WriteImm,
    /// Two-sided send (paired with a remote receive).
    Send,
    /// Remote atomic fetch-and-add on an 8-byte word.
    FetchAdd,
    /// Remote atomic compare-and-swap on an 8-byte word.
    CompareSwap,
}

impl Verb {
    /// All verbs, for iterating stats tables.
    pub const ALL: [Verb; 6] = [
        Verb::Read,
        Verb::Write,
        Verb::WriteImm,
        Verb::Send,
        Verb::FetchAdd,
        Verb::CompareSwap,
    ];

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Verb::Read => "read",
            Verb::Write => "write",
            Verb::WriteImm => "write_imm",
            Verb::Send => "send",
            Verb::FetchAdd => "fetch_add",
            Verb::CompareSwap => "cas",
        }
    }
}

/// A completion-queue entry (mirrors `ibv_wc`).
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The caller's work-request id.
    pub wr_id: WrId,
    /// Which verb completed.
    pub verb: Verb,
    /// Payload size in bytes.
    pub bytes: usize,
    /// For atomics: the value read from remote memory before the operation.
    pub old_value: u64,
    /// Simulated hardware timestamp at which the op completed.
    pub completed_at: Instant,
}

/// Errors surfaced by the simulated fabric.
///
/// These map onto the failure classes a real verbs program must handle:
/// addressing/protection faults, capability (rkey) mismatches, queue
/// exhaustion, and injected transport faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdmaError {
    /// `(node, mr)` does not name a registered memory region.
    UnknownRegion { node: u32, mr: u32 },
    /// The supplied rkey does not match the region's registration.
    BadRkey { node: u32, mr: u32 },
    /// Access outside the registered region (remote protection fault).
    OutOfBounds {
        node: u32,
        mr: u32,
        offset: u64,
        len: usize,
        region_len: usize,
    },
    /// Atomic target not 8-byte aligned.
    Unaligned { offset: u64 },
    /// Send queue is full (too many outstanding work requests).
    SendQueueFull { depth: usize },
    /// Destination node does not exist.
    UnknownNode { node: u32 },
    /// A fault hook dropped this operation.
    Dropped,
    /// A receive was attempted but the inbox is closed or timed out.
    RecvTimeout,
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::UnknownRegion { node, mr } => {
                write!(f, "unknown memory region mr={mr} on node {node}")
            }
            RdmaError::BadRkey { node, mr } => {
                write!(f, "rkey mismatch for mr={mr} on node {node}")
            }
            RdmaError::OutOfBounds { node, mr, offset, len, region_len } => write!(
                f,
                "remote access [{offset}, {offset}+{len}) out of bounds for mr={mr} (len {region_len}) on node {node}"
            ),
            RdmaError::Unaligned { offset } => {
                write!(f, "atomic target offset {offset} is not 8-byte aligned")
            }
            RdmaError::SendQueueFull { depth } => {
                write!(f, "send queue full (depth {depth})")
            }
            RdmaError::UnknownNode { node } => write!(f, "unknown node {node}"),
            RdmaError::Dropped => write!(f, "operation dropped by fault injection"),
            RdmaError::RecvTimeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for RdmaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_names_are_unique() {
        let mut names: Vec<_> = Verb::ALL.iter().map(|v| v.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Verb::ALL.len());
    }

    #[test]
    fn errors_display() {
        let e = RdmaError::OutOfBounds { node: 1, mr: 2, offset: 10, len: 4, region_len: 8 };
        let s = e.to_string();
        assert!(s.contains("out of bounds"));
        assert!(RdmaError::Dropped.to_string().contains("fault"));
    }
}
