//! Queue pairs and completion queues.
//!
//! A [`QueuePair`] is deliberately `!Sync` (it requires `&mut self`): the
//! dLSM design gives every worker thread its own queue pair and registered
//! buffers so completion notifications are never mixed between threads
//! (paper Sec. X-B). Completions are delivered in FIFO order per queue pair,
//! which the flush-buffer recycling scheme (Sec. X-C) depends on.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fabric::Fabric;
use crate::fault::{FaultAction, OpContext};
use crate::msg::{ImmEvent, Message};
use crate::node::NodeId;
use crate::region::RemoteAddr;
use crate::verbs::{Completion, RdmaError, Verb, WrId};

/// Spin (or sleep, for long waits) until the wall clock reaches `t`.
///
/// Long waits sleep most of the interval to avoid starving other simulated
/// threads of cores; the final stretch is spun for precision.
pub fn spin_until(t: Instant) {
    const SPIN_WINDOW: Duration = Duration::from_micros(60);
    let mut spins = 0u32;
    loop {
        let now = Instant::now();
        if now >= t {
            return;
        }
        let remaining = t - now;
        // This *is* the simulated NIC — modelled fabric latency is realised
        // by waiting out the deadline. Not an engine stall; ROADMAP item 3
        // concerns the engine's own waits, not the simulator clock.
        if remaining > SPIN_WINDOW {
            // HOTPATH: simulated-NIC clock wait (see above).
            std::thread::sleep(remaining - SPIN_WINDOW);
        } else {
            spins += 1;
            if spins.is_multiple_of(64) {
                // HOTPATH: same clock wait; yielding keeps core-starved
                // hosts from stalling the completing thread.
                std::thread::yield_now();
            } else {
                // HOTPATH: same clock wait (see above).
                std::hint::spin_loop();
            }
        }
    }
}

/// A completion queue: pending completions ordered by deadline (FIFO, since
/// deadlines are made monotone per queue pair).
#[derive(Default)]
pub struct CompletionQueue {
    pending: VecDeque<Completion>,
}

impl CompletionQueue {
    /// Completions not yet polled (ready or in flight).
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no completions are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    fn push(&mut self, c: Completion) {
        self.pending.push_back(c);
    }

    /// Pop up to `max` completions whose deadline has passed.
    fn poll_ready(&mut self, max: usize, out: &mut Vec<Completion>) {
        let now = Instant::now();
        while out.len() < max {
            match self.pending.front() {
                Some(c) if c.completed_at <= now => {
                    // PANIC-SAFE: front() just returned Some under &mut self.
                    out.push(self.pending.pop_front().expect("front exists"));
                }
                _ => break,
            }
        }
    }

    /// Deadline of the oldest pending completion, if any.
    fn head_deadline(&self) -> Option<Instant> {
        self.pending.front().map(|c| c.completed_at)
    }
}

/// Outcome of charging one work request against the cost model + fault hook.
enum ChargeOutcome {
    /// Deliver normally; completion ready at the instant.
    Deliver(Instant),
    /// Payload side effects land, but the completion (and any delivery)
    /// is lost.
    LostAck,
    /// The operation vanishes entirely: no side effects, no completion.
    Lost,
}

impl ChargeOutcome {
    /// The completion deadline, when one will arrive.
    fn ready(&self) -> Option<Instant> {
        match self {
            ChargeOutcome::Deliver(t) => Some(*t),
            _ => None,
        }
    }

    /// True unless the operation was blackholed (payload effects apply).
    fn payload_lands(&self) -> bool {
        !matches!(self, ChargeOutcome::Lost)
    }
}

/// A reliable-connected queue pair between two nodes.
pub struct QueuePair {
    fabric: Arc<Fabric>,
    local: NodeId,
    remote: NodeId,
    cq: CompletionQueue,
    /// Monotone per-QP completion horizon, enforcing FIFO completions.
    last_ready: Instant,
    /// Send-queue depth limit (outstanding, un-polled work requests).
    max_outstanding: usize,
    /// Per-QP traffic: every verb posted on this queue pair, counted at
    /// the same point as the fabric-global stats. Plain counters — a
    /// queue pair is single-threaded by design.
    traffic: crate::stats::StatsSnapshot,
}

impl QueuePair {
    pub(crate) fn new(fabric: Arc<Fabric>, local: NodeId, remote: NodeId) -> QueuePair {
        QueuePair {
            fabric,
            local,
            remote,
            cq: CompletionQueue::default(),
            last_ready: Instant::now(),
            max_outstanding: 256,
            traffic: crate::stats::StatsSnapshot::default(),
        }
    }

    /// Everything ever posted on this queue pair, per verb. Delta two
    /// copies to attribute the exact RDMA cost of one operation (e.g. "a
    /// point `get` issued one READ of 64 bytes").
    pub fn traffic(&self) -> crate::stats::StatsSnapshot {
        self.traffic
    }

    /// Local endpoint.
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// Remote endpoint.
    pub fn remote(&self) -> NodeId {
        self.remote
    }

    /// The fabric this queue pair belongs to.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Change the send-queue depth limit.
    pub fn set_max_outstanding(&mut self, depth: usize) {
        self.max_outstanding = depth.max(1);
    }

    /// Outstanding (posted, not yet polled) work requests.
    pub fn outstanding(&self) -> usize {
        self.cq.len()
    }

    /// Charge the cost model and consult the fault hook for one posted work
    /// request targeting `dst`. `Deliver` carries the completion deadline;
    /// `LostAck` means payload effects must still be applied but no
    /// completion will arrive; `Lost` means the operation vanishes entirely.
    fn charge(&mut self, verb: Verb, bytes: usize, dst: NodeId) -> Result<ChargeOutcome, RdmaError> {
        if self.cq.len() >= self.max_outstanding {
            return Err(RdmaError::SendQueueFull { depth: self.max_outstanding });
        }
        let profile = *self.fabric.profile();
        // The posting thread pays the doorbell cost synchronously.
        if !profile.post_overhead.is_zero() {
            spin_until(Instant::now() + profile.post_overhead);
        }
        self.fabric.record(verb, bytes);
        self.traffic.accumulate(verb, bytes);
        let mut latency = profile.transfer_cost(bytes);
        if verb == Verb::Send {
            latency += profile.two_sided_extra;
        }
        if let Some(hook) = self.fabric.fault() {
            let ctx = OpContext { verb, bytes, src: self.local, dst };
            latency += hook.delay(&ctx);
            match hook.action(&ctx) {
                FaultAction::Deliver => {}
                FaultAction::DropCompletion => return Ok(ChargeOutcome::LostAck),
                FaultAction::Blackhole => return Ok(ChargeOutcome::Lost),
            }
        }
        let ready = (Instant::now() + latency).max(self.last_ready);
        self.last_ready = ready;
        Ok(ChargeOutcome::Deliver(ready))
    }

    fn complete(&mut self, wr_id: WrId, verb: Verb, bytes: usize, old: u64, ready: Instant) {
        self.cq.push(Completion {
            wr_id,
            verb,
            bytes,
            old_value: old,
            completed_at: ready,
        });
    }

    /// Post a one-sided READ: copy `dst.len()` bytes from `src` on the remote
    /// node into the local buffer. The data may only be examined after the
    /// completion for `wr_id` has been polled.
    pub fn post_read(
        &mut self,
        src: RemoteAddr,
        dst: &mut [u8],
        wr_id: WrId,
    ) -> Result<(), RdmaError> {
        let region = self.fabric.node(src.node)?.region(src.mr)?;
        region.check_rkey(src.rkey)?;
        let outcome = self.charge(Verb::Read, dst.len(), src.node)?;
        if outcome.payload_lands() {
            region.local_read(src.offset, dst)?;
        }
        if let Some(ready) = outcome.ready() {
            self.complete(wr_id, Verb::Read, dst.len(), 0, ready);
        }
        Ok(())
    }

    /// Post a one-sided WRITE of `src` to `dst` on the remote node. The local
    /// buffer may only be reused after the completion has been polled.
    pub fn post_write(
        &mut self,
        src: &[u8],
        dst: RemoteAddr,
        wr_id: WrId,
    ) -> Result<(), RdmaError> {
        dlsm_trace::instant(dlsm_trace::Category::Rdma, "rdma_post_write", src.len() as u64);
        let region = self.fabric.node(dst.node)?.region(dst.mr)?;
        region.check_rkey(dst.rkey)?;
        let outcome = self.charge(Verb::Write, src.len(), dst.node)?;
        if outcome.payload_lands() {
            region.local_write(dst.offset, src)?;
        }
        if let Some(ready) = outcome.ready() {
            self.complete(wr_id, Verb::Write, src.len(), 0, ready);
        }
        Ok(())
    }

    /// Post a WRITE-with-IMMEDIATE: like [`Self::post_write`], but also
    /// raises an [`ImmEvent`] carrying `imm` at the remote node once the
    /// write completes.
    pub fn post_write_imm(
        &mut self,
        src: &[u8],
        dst: RemoteAddr,
        imm: u32,
        wr_id: WrId,
    ) -> Result<(), RdmaError> {
        dlsm_trace::instant(dlsm_trace::Category::Rdma, "rdma_write_imm", src.len() as u64);
        let node = self.fabric.node(dst.node)?;
        let region = node.region(dst.mr)?;
        region.check_rkey(dst.rkey)?;
        let outcome = self.charge(Verb::WriteImm, src.len(), dst.node)?;
        if outcome.payload_lands() {
            region.local_write(dst.offset, src)?;
        }
        if let Some(ready) = outcome.ready() {
            let _ = node.imm_tx.send(ImmEvent {
                src: self.local,
                imm,
                bytes: src.len(),
                ready_at: ready,
            });
            self.complete(wr_id, Verb::WriteImm, src.len(), 0, ready);
        }
        Ok(())
    }

    /// Post a two-sided SEND delivering `payload` to the remote node's inbox.
    pub fn post_send(&mut self, payload: Vec<u8>, wr_id: WrId) -> Result<(), RdmaError> {
        dlsm_trace::instant(dlsm_trace::Category::Rdma, "rdma_send", payload.len() as u64);
        let node = self.fabric.node(self.remote)?;
        let bytes = payload.len();
        let outcome = self.charge(Verb::Send, bytes, self.remote)?;
        if let Some(ready) = outcome.ready() {
            let _ = node.inbox_tx.send(Message { src: self.local, payload, ready_at: ready });
            self.complete(wr_id, Verb::Send, bytes, 0, ready);
        }
        Ok(())
    }

    /// Remote atomic fetch-and-add on the 8-byte word at `addr`; blocks until
    /// the completion and returns the previous value.
    pub fn fetch_add(&mut self, addr: RemoteAddr, delta: u64) -> Result<u64, RdmaError> {
        let _sp = dlsm_trace::span_arg(dlsm_trace::Category::Rdma, "rdma_fetch_add", 8);
        let region = self.fabric.node(addr.node)?.region(addr.mr)?;
        region.check_rkey(addr.rkey)?;
        let outcome = self.charge(Verb::FetchAdd, 8, addr.node)?;
        if !outcome.payload_lands() {
            return Err(RdmaError::Dropped);
        }
        let old = region.atomic_u64(addr.offset)?.fetch_add(delta, Ordering::AcqRel);
        match outcome.ready() {
            Some(ready) => {
                self.complete(0, Verb::FetchAdd, 8, old, ready);
                let c = self.poll_one_blocking(Duration::from_secs(5))?;
                debug_assert_eq!(c.verb, Verb::FetchAdd);
                Ok(c.old_value)
            }
            None => Err(RdmaError::Dropped),
        }
    }

    /// Remote atomic compare-and-swap; blocks until the completion and
    /// returns the previous value (compare with `expect` to see if it won).
    pub fn compare_swap(
        &mut self,
        addr: RemoteAddr,
        expect: u64,
        new: u64,
    ) -> Result<u64, RdmaError> {
        let _sp = dlsm_trace::span_arg(dlsm_trace::Category::Rdma, "rdma_cas", 8);
        let region = self.fabric.node(addr.node)?.region(addr.mr)?;
        region.check_rkey(addr.rkey)?;
        let outcome = self.charge(Verb::CompareSwap, 8, addr.node)?;
        if !outcome.payload_lands() {
            return Err(RdmaError::Dropped);
        }
        let old = match region.atomic_u64(addr.offset)?.compare_exchange(
            expect,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(prev) => prev,
            Err(prev) => prev,
        };
        match outcome.ready() {
            Some(ready) => {
                self.complete(0, Verb::CompareSwap, 8, old, ready);
                let c = self.poll_one_blocking(Duration::from_secs(5))?;
                debug_assert_eq!(c.verb, Verb::CompareSwap);
                Ok(c.old_value)
            }
            None => Err(RdmaError::Dropped),
        }
    }

    /// Poll up to `max` ready completions without blocking.
    pub fn poll(&mut self, max: usize) -> Vec<Completion> {
        let mut out = Vec::new();
        self.cq.poll_ready(max, &mut out);
        out
    }

    /// Poll exactly one completion, blocking until one is ready or `timeout`
    /// elapses.
    pub fn poll_one_blocking(&mut self, timeout: Duration) -> Result<Completion, RdmaError> {
        let deadline = Instant::now() + timeout;
        loop {
            let mut out = Vec::with_capacity(1);
            self.cq.poll_ready(1, &mut out);
            if let Some(c) = out.pop() {
                return Ok(c);
            }
            match self.cq.head_deadline() {
                Some(t) if t <= deadline => spin_until(t),
                _ => {
                    if Instant::now() >= deadline {
                        return Err(RdmaError::RecvTimeout);
                    }
                    // HOTPATH: CQ spin-poll mirrors real ibv_poll_cq usage;
                    // event-driven completion channels are ROADMAP item 3.
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Drain all outstanding completions, blocking until each is ready.
    pub fn drain(&mut self) -> Result<Vec<Completion>, RdmaError> {
        let mut out = Vec::with_capacity(self.cq.len());
        while !self.cq.is_empty() {
            out.push(self.poll_one_blocking(Duration::from_secs(5))?);
        }
        Ok(out)
    }

    /// Synchronous READ convenience: post + wait for the completion.
    pub fn read_sync(&mut self, src: RemoteAddr, dst: &mut [u8]) -> Result<(), RdmaError> {
        let _sp = dlsm_trace::span_arg(dlsm_trace::Category::Rdma, "rdma_read", dst.len() as u64);
        self.post_read(src, dst, u64::MAX)?;
        loop {
            let c = self.poll_one_blocking(Duration::from_secs(5))?;
            if c.wr_id == u64::MAX && c.verb == Verb::Read {
                return Ok(());
            }
        }
    }

    /// Synchronous WRITE convenience: post + wait for the completion.
    pub fn write_sync(&mut self, src: &[u8], dst: RemoteAddr) -> Result<(), RdmaError> {
        let _sp = dlsm_trace::span_arg(dlsm_trace::Category::Rdma, "rdma_write", src.len() as u64);
        self.post_write(src, dst, u64::MAX)?;
        loop {
            let c = self.poll_one_blocking(Duration::from_secs(5))?;
            if c.wr_id == u64::MAX && c.verb == Verb::Write {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::NetworkProfile;

    fn setup() -> (Arc<Fabric>, QueuePair, Arc<crate::region::MemoryRegion>) {
        let fabric = Fabric::new(NetworkProfile::instant());
        let compute = fabric.add_node();
        let memory = fabric.add_node();
        let region = memory.register_region(1 << 16);
        let qp = fabric.create_qp(compute.id(), memory.id()).unwrap();
        (fabric, qp, region)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (_f, mut qp, region) = setup();
        qp.write_sync(b"disaggregated", region.addr(512)).unwrap();
        let mut buf = [0u8; 13];
        qp.read_sync(region.addr(512), &mut buf).unwrap();
        assert_eq!(&buf, b"disaggregated");
    }

    #[test]
    fn bad_rkey_rejected() {
        let (_f, mut qp, region) = setup();
        let mut addr = region.addr(0);
        addr.rkey ^= 1;
        assert!(matches!(qp.write_sync(b"x", addr), Err(RdmaError::BadRkey { .. })));
    }

    #[test]
    fn out_of_bounds_remote_write_rejected() {
        let (_f, mut qp, region) = setup();
        let addr = region.addr((1 << 16) - 2);
        assert!(matches!(
            qp.post_write(b"toolong", addr, 1),
            Err(RdmaError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn completions_are_fifo_per_qp() {
        let fabric = Fabric::new(NetworkProfile::edr_100g().scaled(0.01));
        let c = fabric.add_node();
        let m = fabric.add_node();
        let region = m.register_region(1 << 20);
        let mut qp = fabric.create_qp(c.id(), m.id()).unwrap();
        // A large write posted first must complete before a tiny later write.
        qp.post_write(&vec![1u8; 1 << 19], region.addr(0), 1).unwrap();
        qp.post_write(&[2u8], region.addr(1 << 19), 2).unwrap();
        let cs = qp.drain().unwrap();
        assert_eq!(cs.iter().map(|c| c.wr_id).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn async_write_completion_respects_latency() {
        let fabric = Fabric::new(NetworkProfile {
            base_latency: Duration::from_millis(5),
            bytes_per_sec: f64::INFINITY,
            post_overhead: Duration::ZERO,
            two_sided_extra: Duration::ZERO,
        });
        let c = fabric.add_node();
        let m = fabric.add_node();
        let region = m.register_region(64);
        let mut qp = fabric.create_qp(c.id(), m.id()).unwrap();
        let t0 = Instant::now();
        qp.post_write(b"abc", region.addr(0), 7).unwrap();
        // Posting must be (nearly) free...
        assert!(t0.elapsed() < Duration::from_millis(2), "post must not block");
        assert!(qp.poll(8).is_empty(), "completion must not be ready immediately");
        // ...and the completion only arrives after the base latency.
        let comp = qp.poll_one_blocking(Duration::from_secs(1)).unwrap();
        assert_eq!(comp.wr_id, 7);
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn fetch_add_returns_old_value() {
        let (_f, mut qp, region) = setup();
        assert_eq!(qp.fetch_add(region.addr(0), 5).unwrap(), 0);
        assert_eq!(qp.fetch_add(region.addr(0), 3).unwrap(), 5);
        assert_eq!(region.atomic_load(0).unwrap(), 8);
    }

    #[test]
    fn compare_swap_semantics() {
        let (_f, mut qp, region) = setup();
        // Winning CAS returns the expected value.
        assert_eq!(qp.compare_swap(region.addr(8), 0, 42).unwrap(), 0);
        // Losing CAS returns the current value and does not modify it.
        assert_eq!(qp.compare_swap(region.addr(8), 0, 99).unwrap(), 42);
        assert_eq!(region.atomic_load(8).unwrap(), 42);
    }

    #[test]
    fn send_recv_delivers_payload() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let c = fabric.add_node();
        let m = fabric.add_node();
        let mut qp = fabric.create_qp(c.id(), m.id()).unwrap();
        qp.post_send(b"rpc-request".to_vec(), 1).unwrap();
        let msg = m.recv(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.payload, b"rpc-request");
        assert_eq!(msg.src, c.id());
    }

    #[test]
    fn write_imm_raises_event() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let c = fabric.add_node();
        let m = fabric.add_node();
        let region = m.register_region(64);
        let mut qp = fabric.create_qp(c.id(), m.id()).unwrap();
        qp.post_write_imm(b"reply", region.addr(0), 0xBEEF, 3).unwrap();
        let ev = m.recv_imm(Duration::from_secs(1)).unwrap();
        assert_eq!(ev.imm, 0xBEEF);
        assert_eq!(ev.bytes, 5);
        let mut buf = [0u8; 5];
        region.local_read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"reply");
    }

    #[test]
    fn send_queue_depth_enforced() {
        let (_f, mut qp, region) = setup();
        qp.set_max_outstanding(2);
        qp.post_write(b"a", region.addr(0), 1).unwrap();
        qp.post_write(b"b", region.addr(1), 2).unwrap();
        assert!(matches!(
            qp.post_write(b"c", region.addr(2), 3),
            Err(RdmaError::SendQueueFull { .. })
        ));
        qp.drain().unwrap();
        assert!(qp.post_write(b"c", region.addr(2), 3).is_ok());
    }

    #[test]
    fn dropped_write_never_completes() {
        use crate::fault::FaultPlan;
        let fabric = Fabric::new(NetworkProfile::instant());
        let c = fabric.add_node();
        let m = fabric.add_node();
        let region = m.register_region(64);
        fabric.set_fault_hook(Some(Arc::new(FaultPlan::drop_every_nth(Verb::Write, 1))));
        let mut qp = fabric.create_qp(c.id(), m.id()).unwrap();
        qp.post_write(b"x", region.addr(0), 9).unwrap();
        assert!(qp.poll_one_blocking(Duration::from_millis(10)).is_err());
        fabric.set_fault_hook(None);
        qp.write_sync(b"y", region.addr(0)).unwrap();
    }

    #[test]
    fn per_qp_traffic_attribution() {
        let (f, mut qp, region) = setup();
        // A second QP on the same fabric: its traffic must not bleed into
        // the first QP's counter (while the global stats see both).
        let other_node = f.add_node();
        let mut other = f.create_qp(other_node.id(), qp.remote()).unwrap();
        other.write_sync(&[0u8; 999], region.addr(0)).unwrap();

        let before = qp.traffic();
        qp.write_sync(&[0u8; 100], region.addr(0)).unwrap();
        let mut buf = [0u8; 40];
        qp.read_sync(region.addr(0), &mut buf).unwrap();
        let d = qp.traffic().delta(&before);
        assert_eq!(d.ops(Verb::Read), 1);
        assert_eq!(d.bytes(Verb::Read), 40);
        assert_eq!(d.ops(Verb::Write), 1);
        assert_eq!(d.bytes(Verb::Write), 100);
        assert_eq!(d.total_ops(), 2);
        assert_eq!(other.traffic().ops(Verb::Write), 1);
        assert!(f.stats().ops(Verb::Write) >= 2);
    }

    #[test]
    fn stats_count_traffic() {
        let (f, mut qp, region) = setup();
        let before = f.stats().snapshot();
        qp.write_sync(&[0u8; 100], region.addr(0)).unwrap();
        let mut buf = [0u8; 40];
        qp.read_sync(region.addr(0), &mut buf).unwrap();
        let d = f.stats().snapshot().delta(&before);
        assert_eq!(d.ops(Verb::Write), 1);
        assert_eq!(d.bytes(Verb::Write), 100);
        assert_eq!(d.ops(Verb::Read), 1);
        assert_eq!(d.bytes(Verb::Read), 40);
    }
}
