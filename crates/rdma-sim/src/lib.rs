//! # rdma-sim — a simulated RDMA fabric for disaggregated-memory research
//!
//! This crate models the subset of the ibverbs programming model that the
//! dLSM paper (ICDE 2023) builds on, without requiring RDMA hardware:
//!
//! * **Nodes** ([`Node`]) own registered **memory regions** ([`MemoryRegion`])
//!   addressed by `(node, mr, offset)` plus an `rkey` capability, mirroring
//!   `ibv_reg_mr`.
//! * **Queue pairs** ([`QueuePair`]) connect a local node to a remote node and
//!   carry one-sided READ / WRITE / WRITE-with-IMMEDIATE and atomic
//!   FETCH_ADD / CAS work requests, plus two-sided SEND. Each queue pair owns
//!   a **completion queue**; work requests complete asynchronously and in
//!   FIFO order per queue pair, exactly the property dLSM's flush-buffer
//!   recycling relies on (paper Sec. X-C).
//! * A **cost model** ([`NetworkProfile`]) charges every verb a base latency
//!   plus a size-proportional bandwidth term, enforced in real wall-clock
//!   time: a completion only becomes pollable once its deadline has passed.
//!   The profile for a Mellanox EDR ConnectX-4 NIC reproduces the paper's
//!   observation of a ~100x efficiency gap between 64 B and 1 MB transfers.
//! * The node that *owns* a region may access it directly through
//!   [`MemoryRegion::local_read`] / [`MemoryRegion::local_write`] at zero
//!   network cost — this asymmetry is what makes near-data compaction
//!   profitable.
//! * Fabric-wide **statistics** ([`FabricStats`]) count operations and bytes
//!   per verb so experiments can report network traffic.
//! * Optional **fault injection** ([`FaultHook`]) adds delay or drops
//!   completions to exercise timeout/retry paths.
//!
//! Like real RDMA, the simulator does **not** police concurrent conflicting
//! access to the same bytes; higher layers must ensure disjointness (the LSM
//! structures here are write-once).

pub mod fabric;
pub mod fault;
pub mod msg;
pub mod node;
pub mod profile;
pub mod qp;
pub mod region;
pub mod stats;
pub mod verbs;

pub use fabric::Fabric;
pub use fault::{ChaosPlan, FaultAction, FaultHook, FaultPlan, OpContext, Window, WindowKind};
pub use msg::{ImmEvent, Message};
pub use node::{Node, NodeId};
pub use profile::NetworkProfile;
pub use qp::{CompletionQueue, QueuePair};
pub use region::{MemoryRegion, MrId, RemoteAddr};
pub use stats::{FabricStats, StatsSnapshot};
pub use verbs::{Completion, RdmaError, Verb, WrId};

/// Result alias for fabric operations.
pub type Result<T> = std::result::Result<T, RdmaError>;
