//! Registered memory regions.
//!
//! A [`MemoryRegion`] is the simulated equivalent of memory pinned with
//! `ibv_reg_mr`: a contiguous byte range owned by one node, addressable from
//! remote nodes via `(node, mr, offset)` plus the region's `rkey`.
//!
//! The owning node may also access the region *locally* at zero network cost
//! ([`MemoryRegion::local_read`] / [`MemoryRegion::local_write`] /
//! [`MemoryRegion::local_slice`]); this models a memory node's CPU touching
//! its own DRAM and is the substrate for near-data compaction.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::node::NodeId;
use crate::verbs::RdmaError;

/// Identifier of a memory region within one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MrId(pub u32);

/// A fully-qualified remote address: which node, which region, where in it.
///
/// Carries the `rkey` capability; the fabric rejects operations whose rkey
/// does not match the region's registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteAddr {
    /// Owning node.
    pub node: NodeId,
    /// Region within the node.
    pub mr: MrId,
    /// Byte offset within the region.
    pub offset: u64,
    /// Remote-access key issued at registration.
    pub rkey: u32,
}

impl RemoteAddr {
    /// The same region, `delta` bytes further in.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // verb-style API, not arithmetic
    pub fn add(self, delta: u64) -> RemoteAddr {
        RemoteAddr { offset: self.offset + delta, ..self }
    }
}

/// Raw, 8-byte-aligned, heap-allocated slab. Interior mutability via raw
/// pointers; see the module docs for the (RDMA-like) aliasing contract.
struct Slab {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the slab is plain memory; synchronization of access is delegated to
// callers exactly as real RDMA delegates it to the application. All
// simulator-internal copies are `copy_nonoverlapping` on ranges the caller
// promises are not concurrently written.
unsafe impl Send for Slab {}
// SAFETY: same contract as Send above — concurrent access discipline is the
// caller's, as with real RDMA-registered memory.
unsafe impl Sync for Slab {}

impl Slab {
    fn new(len: usize) -> Slab {
        assert!(len > 0, "cannot register an empty region");
        let layout = Layout::from_size_align(len, 8).expect("slab layout");
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "slab allocation of {len} bytes failed");
        Slab { ptr, len }
    }
}

impl Drop for Slab {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.len, 8).expect("slab layout");
        // SAFETY: allocated with the identical layout in `new`.
        unsafe { dealloc(self.ptr, layout) };
    }
}

/// A registered memory region.
pub struct MemoryRegion {
    node: NodeId,
    mr: MrId,
    rkey: u32,
    slab: Slab,
}

impl MemoryRegion {
    pub(crate) fn new(node: NodeId, mr: MrId, rkey: u32, len: usize) -> MemoryRegion {
        MemoryRegion { node, mr, rkey, slab: Slab::new(len) }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.slab.len
    }

    /// True if the region has zero capacity (never: registration requires a
    /// non-empty region), provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.slab.len == 0
    }

    /// The node that owns this region.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The region id within its node.
    pub fn mr(&self) -> MrId {
        self.mr
    }

    /// The remote-access key issued at registration.
    pub fn rkey(&self) -> u32 {
        self.rkey
    }

    /// A [`RemoteAddr`] pointing at `offset` within this region.
    pub fn addr(&self, offset: u64) -> RemoteAddr {
        RemoteAddr { node: self.node, mr: self.mr, offset, rkey: self.rkey }
    }

    pub(crate) fn check_rkey(&self, rkey: u32) -> Result<(), RdmaError> {
        if rkey != self.rkey {
            return Err(RdmaError::BadRkey { node: self.node.0, mr: self.mr.0 });
        }
        Ok(())
    }

    fn check_bounds(&self, offset: u64, len: usize) -> Result<(), RdmaError> {
        let end = offset.checked_add(len as u64);
        match end {
            Some(end) if end <= self.slab.len as u64 => Ok(()),
            _ => Err(RdmaError::OutOfBounds {
                node: self.node.0,
                mr: self.mr.0,
                offset,
                len,
                region_len: self.slab.len,
            }),
        }
    }

    /// Copy `dst.len()` bytes out of the region, starting at `offset`.
    ///
    /// Zero network cost: this is the owning node touching its own DRAM.
    pub fn local_read(&self, offset: u64, dst: &mut [u8]) -> Result<(), RdmaError> {
        self.check_bounds(offset, dst.len())?;
        // SAFETY: bounds checked; caller upholds the no-conflicting-writers
        // contract for the range.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.slab.ptr.add(offset as usize),
                dst.as_mut_ptr(),
                dst.len(),
            );
        }
        Ok(())
    }

    /// Copy `src` into the region at `offset`. Zero network cost.
    pub fn local_write(&self, offset: u64, src: &[u8]) -> Result<(), RdmaError> {
        self.check_bounds(offset, src.len())?;
        // SAFETY: bounds checked; caller upholds the disjointness contract.
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.as_ptr(),
                self.slab.ptr.add(offset as usize),
                src.len(),
            );
        }
        Ok(())
    }

    /// Borrow `len` bytes at `offset` as a shared slice, for zero-copy local
    /// reads by the owning node (e.g. a compaction worker scanning an
    /// SSTable in place).
    ///
    /// # Safety
    ///
    /// The caller must guarantee no concurrent writer mutates the range for
    /// the lifetime of the returned slice. In the LSM systems built on this
    /// crate, SSTable bytes are written once (before publication) and never
    /// mutated, so published table ranges always satisfy this.
    pub unsafe fn local_slice(&self, offset: u64, len: usize) -> Result<&[u8], RdmaError> {
        self.check_bounds(offset, len)?;
        Ok(std::slice::from_raw_parts(self.slab.ptr.add(offset as usize), len))
    }

    /// View the 8 bytes at `offset` as an atomic word (target of remote
    /// FETCH_ADD / CAS, and of local atomics by the owning node).
    pub fn atomic_u64(&self, offset: u64) -> Result<&AtomicU64, RdmaError> {
        self.check_bounds(offset, 8)?;
        if !offset.is_multiple_of(8) {
            return Err(RdmaError::Unaligned { offset });
        }
        // SAFETY: in-bounds, 8-aligned (slab base is 8-aligned), and
        // AtomicU64 may alias plain memory that is only accessed atomically.
        let ptr = unsafe { self.slab.ptr.add(offset as usize) } as *const AtomicU64;
        Ok(unsafe { &*ptr })
    }

    /// Read a `u64` at `offset` with a single atomic load (used by pollers
    /// watching a flag word).
    pub fn atomic_load(&self, offset: u64) -> Result<u64, RdmaError> {
        Ok(self.atomic_u64(offset)?.load(Ordering::Acquire))
    }
}

impl std::fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryRegion")
            .field("node", &self.node)
            .field("mr", &self.mr)
            .field("len", &self.slab.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(len: usize) -> MemoryRegion {
        MemoryRegion::new(NodeId(0), MrId(0), 42, len)
    }

    #[test]
    fn local_roundtrip() {
        let r = region(128);
        r.local_write(10, b"hello").unwrap();
        let mut buf = [0u8; 5];
        r.local_read(10, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn region_starts_zeroed() {
        let r = region(64);
        let mut buf = [1u8; 64];
        r.local_read(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let r = region(16);
        let mut buf = [0u8; 8];
        assert!(matches!(r.local_read(12, &mut buf), Err(RdmaError::OutOfBounds { .. })));
        // Overflowing offset must not wrap.
        assert!(matches!(r.local_read(u64::MAX, &mut buf), Err(RdmaError::OutOfBounds { .. })));
    }

    #[test]
    fn out_of_bounds_write_rejected() {
        let r = region(16);
        assert!(r.local_write(16, b"x").is_err());
        assert!(r.local_write(0, &[0u8; 17]).is_err());
        assert!(r.local_write(0, &[0u8; 16]).is_ok());
    }

    #[test]
    fn atomic_word_requires_alignment() {
        let r = region(64);
        assert!(matches!(r.atomic_u64(4), Err(RdmaError::Unaligned { .. })));
        let a = r.atomic_u64(8).unwrap();
        a.store(7, Ordering::Release);
        assert_eq!(r.atomic_load(8).unwrap(), 7);
        // The atomic view aliases the byte view.
        let mut buf = [0u8; 8];
        r.local_read(8, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 7);
    }

    #[test]
    fn rkey_checked() {
        let r = region(8);
        assert!(r.check_rkey(42).is_ok());
        assert!(matches!(r.check_rkey(41), Err(RdmaError::BadRkey { .. })));
    }

    #[test]
    fn remote_addr_add() {
        let r = region(8);
        let a = r.addr(0).add(5);
        assert_eq!(a.offset, 5);
        assert_eq!(a.rkey, r.rkey());
    }

    #[test]
    fn local_slice_reads_written_bytes() {
        let r = region(32);
        r.local_write(0, b"abcdef").unwrap();
        // SAFETY: no concurrent writers in this test.
        let s = unsafe { r.local_slice(2, 3).unwrap() };
        assert_eq!(s, b"cde");
        assert!(unsafe { r.local_slice(30, 4) }.is_err());
    }
}
