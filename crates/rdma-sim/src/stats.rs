//! Fabric-wide traffic statistics.
//!
//! Experiments use these counters to report how much data crossed the
//! simulated network — e.g. to show that near-data compaction collapses
//! compaction traffic to (almost) zero.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::verbs::Verb;

#[derive(Default)]
struct Counter {
    ops: AtomicU64,
    bytes: AtomicU64,
}

/// Atomic per-verb operation/byte counters for one fabric.
#[derive(Default)]
pub struct FabricStats {
    read: Counter,
    write: Counter,
    write_imm: Counter,
    send: Counter,
    fetch_add: Counter,
    cas: Counter,
}

impl FabricStats {
    fn counter(&self, verb: Verb) -> &Counter {
        match verb {
            Verb::Read => &self.read,
            Verb::Write => &self.write,
            Verb::WriteImm => &self.write_imm,
            Verb::Send => &self.send,
            Verb::FetchAdd => &self.fetch_add,
            Verb::CompareSwap => &self.cas,
        }
    }

    pub(crate) fn record(&self, verb: Verb, bytes: usize) {
        let c = self.counter(verb);
        // ORDERING: relaxed — verb counters; monotonic, readers tolerate staleness.
        c.ops.fetch_add(1, Ordering::Relaxed);
        c.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Number of operations posted with `verb` so far.
    pub fn ops(&self, verb: Verb) -> u64 {
        // ORDERING: relaxed — stats reads; tolerate staleness.
        self.counter(verb).ops.load(Ordering::Relaxed)
    }

    /// Payload bytes moved by `verb` so far.
    pub fn bytes(&self, verb: Verb) -> u64 {
        // ORDERING: relaxed — stats reads; tolerate staleness.
        self.counter(verb).bytes.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for v in Verb::ALL {
            let c = self.counter(v);
            // ORDERING: relaxed — stats reads; tolerate staleness.
            s.set(v, c.ops.load(Ordering::Relaxed), c.bytes.load(Ordering::Relaxed));
        }
        s
    }
}

/// An immutable copy of [`FabricStats`], supporting deltas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    ops: [u64; 6],
    bytes: [u64; 6],
}

impl StatsSnapshot {
    fn idx(verb: Verb) -> usize {
        // PANIC-SAFE: Verb::ALL enumerates every Verb variant by construction.
        Verb::ALL.iter().position(|&v| v == verb).expect("verb in ALL")
    }

    fn set(&mut self, verb: Verb, ops: u64, bytes: u64) {
        let i = Self::idx(verb);
        self.ops[i] = ops;
        self.bytes[i] = bytes;
    }

    /// Operations posted with `verb`.
    pub fn ops(&self, verb: Verb) -> u64 {
        self.ops[Self::idx(verb)]
    }

    /// Payload bytes moved by `verb`.
    pub fn bytes(&self, verb: Verb) -> u64 {
        self.bytes[Self::idx(verb)]
    }

    /// Total operations across all verbs.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Total payload bytes across all verbs.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Count one posted operation. `StatsSnapshot` doubles as the plain
    /// (non-atomic) per-queue-pair accumulator: a `QueuePair` is `!Sync`,
    /// so its traffic counter needs no atomics — see `QueuePair::traffic`.
    pub fn accumulate(&mut self, verb: Verb, bytes: usize) {
        let i = Self::idx(verb);
        self.ops[i] += 1;
        self.bytes[i] += bytes as u64;
    }

    /// Counter-wise sum (e.g. folding per-QP traffic across clients).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        for i in 0..6 {
            self.ops[i] += other.ops[i];
            self.bytes[i] += other.bytes[i];
        }
    }

    /// Counter-wise `self - earlier` (saturating), for measuring one
    /// experiment phase.
    #[must_use]
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut out = StatsSnapshot::default();
        for i in 0..6 {
            out.ops[i] = self.ops[i].saturating_sub(earlier.ops[i]);
            out.bytes[i] = self.bytes[i].saturating_sub(earlier.bytes[i]);
        }
        out
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for v in Verb::ALL {
            let (ops, bytes) = (self.ops(v), self.bytes(v));
            if ops != 0 {
                write!(f, "{}: {} ops / {:.1} MiB; ", v.name(), ops, bytes as f64 / (1 << 20) as f64)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = FabricStats::default();
        s.record(Verb::Read, 100);
        s.record(Verb::Read, 50);
        s.record(Verb::Write, 7);
        assert_eq!(s.ops(Verb::Read), 2);
        assert_eq!(s.bytes(Verb::Read), 150);
        let snap = s.snapshot();
        assert_eq!(snap.ops(Verb::Write), 1);
        assert_eq!(snap.total_ops(), 3);
        assert_eq!(snap.total_bytes(), 157);
    }

    #[test]
    fn delta_measures_a_phase() {
        let s = FabricStats::default();
        s.record(Verb::Send, 10);
        let before = s.snapshot();
        s.record(Verb::Send, 20);
        s.record(Verb::FetchAdd, 8);
        let d = s.snapshot().delta(&before);
        assert_eq!(d.ops(Verb::Send), 1);
        assert_eq!(d.bytes(Verb::Send), 20);
        assert_eq!(d.ops(Verb::FetchAdd), 1);
        assert_eq!(d.ops(Verb::Read), 0);
    }

    #[test]
    fn display_skips_idle_verbs() {
        let s = FabricStats::default();
        s.record(Verb::Write, 1 << 20);
        let text = s.snapshot().to_string();
        assert!(text.contains("write"));
        assert!(!text.contains("cas"));
    }
}
