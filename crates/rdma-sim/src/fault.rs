//! Fault injection.
//!
//! A [`FaultHook`] lets tests perturb the fabric: add latency to specific
//! verbs or drop completions entirely (the work request is posted but its
//! completion never arrives), which exercises the timeout/retry paths of the
//! RPC layer built on top.
//!
//! Two generations of hooks exist:
//!
//! * [`FaultPlan`] — fixed deterministic perturbation (delay-all,
//!   drop-every-nth), the original seed mechanism.
//! * [`ChaosPlan`] — a seeded chaos schedule: per-verb drop/delay
//!   *probabilities* driven by a reproducible counter-mode PRNG, plus
//!   scripted [`Window`]s (partition / crash) that blackhole every operation
//!   touching one node for a wall-clock interval. Failures reproduce from
//!   the printed seed.
//!
//! Drops come in two severities ([`FaultAction`]):
//!
//! * `DropCompletion` — the payload side effect still lands but the
//!   completion (and any message/immediate delivery) is lost, mirroring the
//!   lost-ACK ambiguity of real RDMA hardware;
//! * `Blackhole` — the operation vanishes entirely (cable pull / dead node):
//!   no payload, no completion, no delivery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::node::NodeId;
use crate::verbs::Verb;

/// What the fabric should do with one posted work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Apply payload side effects but lose the completion and any
    /// message/immediate delivery (lost ACK).
    DropCompletion,
    /// Lose the operation entirely: no side effects, no completion
    /// (lost request / dead link).
    Blackhole,
}

/// Everything a hook may inspect about one posted work request.
#[derive(Debug, Clone, Copy)]
pub struct OpContext {
    /// The verb being posted.
    pub verb: Verb,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Posting node.
    pub src: NodeId,
    /// Target node (the remote region's owner for one-sided ops, the QP's
    /// remote endpoint for sends).
    pub dst: NodeId,
}

/// Hook invoked for every posted work request.
pub trait FaultHook: Send + Sync {
    /// Extra latency added to this operation's completion deadline.
    fn extra_delay(&self, _verb: Verb, _bytes: usize) -> Duration {
        Duration::ZERO
    }

    /// If true, the operation's completion (and any remote side effect
    /// delivery such as an immediate event or message) is silently dropped.
    /// One-sided payload effects still land, mirroring the ambiguity of a
    /// lost ACK on real hardware.
    fn should_drop(&self, _verb: Verb) -> bool {
        false
    }

    /// Context-aware decision; the default delegates to [`Self::should_drop`]
    /// so pre-existing hooks keep their behavior.
    fn action(&self, ctx: &OpContext) -> FaultAction {
        if self.should_drop(ctx.verb) {
            FaultAction::DropCompletion
        } else {
            FaultAction::Deliver
        }
    }

    /// Context-aware delay; the default delegates to [`Self::extra_delay`].
    fn delay(&self, ctx: &OpContext) -> Duration {
        self.extra_delay(ctx.verb, ctx.bytes)
    }
}

/// A simple deterministic fault plan: drop every `drop_every`-th operation of
/// `drop_verb`, and delay all operations by `delay`.
pub struct FaultPlan {
    /// Added to every operation's completion deadline.
    pub delay: Duration,
    /// Which verb to drop (None = never drop).
    pub drop_verb: Option<Verb>,
    /// Drop every n-th matching operation (0 = never).
    pub drop_every: u64,
    counter: AtomicU64,
}

impl FaultPlan {
    /// Plan that only adds `delay` to every operation.
    pub fn delay_all(delay: Duration) -> FaultPlan {
        FaultPlan { delay, drop_verb: None, drop_every: 0, counter: AtomicU64::new(0) }
    }

    /// Plan that drops every `n`-th operation of `verb`.
    pub fn drop_every_nth(verb: Verb, n: u64) -> FaultPlan {
        FaultPlan {
            delay: Duration::ZERO,
            drop_verb: Some(verb),
            drop_every: n,
            counter: AtomicU64::new(0),
        }
    }
}

impl FaultHook for FaultPlan {
    fn extra_delay(&self, _verb: Verb, _bytes: usize) -> Duration {
        self.delay
    }

    fn should_drop(&self, verb: Verb) -> bool {
        if self.drop_every == 0 || self.drop_verb != Some(verb) {
            return false;
        }
        // ORDERING: relaxed — deterministic every-Nth schedule only needs the RMW's atomicity, not ordering.
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        n.is_multiple_of(self.drop_every)
    }
}

const VERBS: usize = 6;

fn verb_index(verb: Verb) -> usize {
    match verb {
        Verb::Read => 0,
        Verb::Write => 1,
        Verb::WriteImm => 2,
        Verb::Send => 3,
        Verb::FetchAdd => 4,
        Verb::CompareSwap => 5,
    }
}

/// What a scripted window does to operations touching its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Network partition: the node is unreachable but alive.
    Partition,
    /// Node crash: pair with `MemServer::crash()`/`restart()` on the server
    /// side; on the fabric it behaves like a partition (every op touching
    /// the node is blackholed).
    Crash,
}

/// One scripted blackhole interval for one node, relative to the plan's
/// construction instant.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// The node whose traffic is blackholed.
    pub node: NodeId,
    /// Window start, relative to plan construction.
    pub from: Duration,
    /// Window end (exclusive), relative to plan construction.
    pub until: Duration,
    /// Partition vs crash (fabric behavior is identical; the label keeps
    /// schedules self-describing).
    pub kind: WindowKind,
}

/// A seeded chaos schedule: probabilistic per-verb drops and delay jitter
/// from a reproducible PRNG, plus scripted partition/crash windows.
///
/// Randomness is counter-mode: decision `n` is `splitmix64(seed ^ n)`, so a
/// schedule is fully determined by its seed and the order in which
/// operations hit the fabric. Tests print the seed on failure
/// ([`ChaosPlan::seed`]).
pub struct ChaosPlan {
    seed: u64,
    counter: AtomicU64,
    /// Drop probability per verb, in parts per million.
    drop_ppm: [u32; VERBS],
    /// Upper bound of uniform delay jitter per verb.
    max_jitter: [Duration; VERBS],
    windows: Vec<Window>,
    epoch: Instant,
    /// Decisions taken (diagnostics).
    drops: AtomicU64,
    blackholes: AtomicU64,
}

impl ChaosPlan {
    /// A plan with no perturbation; configure with the builder methods.
    pub fn new(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            counter: AtomicU64::new(0),
            drop_ppm: [0; VERBS],
            max_jitter: [Duration::ZERO; VERBS],
            windows: Vec::new(),
            epoch: Instant::now(),
            drops: AtomicU64::new(0),
            blackholes: AtomicU64::new(0),
        }
    }

    /// Drop completions of `verb` with probability `prob` (0.0–1.0).
    pub fn drop(mut self, verb: Verb, prob: f64) -> ChaosPlan {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.drop_ppm[verb_index(verb)] = (prob * 1_000_000.0) as u32;
        self
    }

    /// Add uniform delay jitter in `[0, max]` to every operation of `verb`.
    pub fn jitter(mut self, verb: Verb, max: Duration) -> ChaosPlan {
        self.max_jitter[verb_index(verb)] = max;
        self
    }

    /// Blackhole everything touching `node` during `[from, until)` (relative
    /// to plan construction), as a network partition.
    pub fn partition_window(mut self, node: NodeId, from: Duration, until: Duration) -> ChaosPlan {
        self.windows.push(Window { node, from, until, kind: WindowKind::Partition });
        self
    }

    /// Blackhole everything touching `node` during `[from, until)` (relative
    /// to plan construction), as a node crash. Pair with
    /// `MemServer::crash()` + `restart()` to also stop/resume the server
    /// threads.
    pub fn crash_window(mut self, node: NodeId, from: Duration, until: Duration) -> ChaosPlan {
        self.windows.push(Window { node, from, until, kind: WindowKind::Crash });
        self
    }

    /// The reproduction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Scripted windows in this plan.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Completions probabilistically dropped so far.
    pub fn drops(&self) -> u64 {
        // ORDERING: relaxed — fault counters read for reporting.
        self.drops.load(Ordering::Relaxed)
    }

    /// Operations blackholed by scripted windows so far.
    pub fn blackholes(&self) -> u64 {
        // ORDERING: relaxed — fault counters read for reporting.
        self.blackholes.load(Ordering::Relaxed)
    }

    /// Scripted windows currently open, as
    /// `(partition_windows, crash_windows)` — the live fabric-state gauge
    /// chaos runs export alongside drop/blackhole counters.
    pub fn active_windows(&self) -> (usize, usize) {
        let elapsed = self.epoch.elapsed();
        let mut partitions = 0;
        let mut crashes = 0;
        for w in &self.windows {
            if w.from <= elapsed && elapsed < w.until {
                match w.kind {
                    WindowKind::Partition => partitions += 1,
                    WindowKind::Crash => crashes += 1,
                }
            }
        }
        (partitions, crashes)
    }

    /// Counter-mode PRNG draw: uniform 64 bits for decision `n`.
    fn draw(&self) -> u64 {
        // ORDERING: relaxed — every-Nth schedule; atomicity only.
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let mut z = self.seed ^ n.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn in_window(&self, node: NodeId) -> bool {
        if self.windows.is_empty() {
            return false;
        }
        let elapsed = self.epoch.elapsed();
        self.windows
            .iter()
            .any(|w| w.node == node && w.from <= elapsed && elapsed < w.until)
    }
}

impl FaultHook for ChaosPlan {
    fn action(&self, ctx: &OpContext) -> FaultAction {
        if self.in_window(ctx.src) || self.in_window(ctx.dst) {
            // ORDERING: relaxed — fault counter; reporting only.
            self.blackholes.fetch_add(1, Ordering::Relaxed);
            return FaultAction::Blackhole;
        }
        let ppm = self.drop_ppm[verb_index(ctx.verb)];
        if ppm > 0 && self.draw() % 1_000_000 < ppm as u64 {
            // ORDERING: relaxed — fault counter; reporting only.
            self.drops.fetch_add(1, Ordering::Relaxed);
            return FaultAction::DropCompletion;
        }
        FaultAction::Deliver
    }

    fn delay(&self, ctx: &OpContext) -> Duration {
        let max = self.max_jitter[verb_index(ctx.verb)];
        if max.is_zero() {
            return Duration::ZERO;
        }
        let nanos = max.as_nanos().max(1) as u64;
        Duration::from_nanos(self.draw() % nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_every_nth_counts_only_matching_verb() {
        let plan = FaultPlan::drop_every_nth(Verb::Send, 2);
        assert!(!plan.should_drop(Verb::Read));
        assert!(!plan.should_drop(Verb::Send)); // 1st
        assert!(plan.should_drop(Verb::Send)); // 2nd -> dropped
        assert!(!plan.should_drop(Verb::Send)); // 3rd
        assert!(plan.should_drop(Verb::Send)); // 4th -> dropped
    }

    #[test]
    fn delay_all_reports_delay() {
        let plan = FaultPlan::delay_all(Duration::from_micros(5));
        assert_eq!(plan.extra_delay(Verb::Write, 100), Duration::from_micros(5));
        assert!(!plan.should_drop(Verb::Write));
    }

    #[test]
    fn legacy_hook_maps_to_drop_completion() {
        let plan = FaultPlan::drop_every_nth(Verb::Write, 1);
        let ctx = OpContext { verb: Verb::Write, bytes: 8, src: NodeId(0), dst: NodeId(1) };
        assert_eq!(plan.action(&ctx), FaultAction::DropCompletion);
    }

    #[test]
    fn chaos_drop_rate_tracks_probability() {
        let plan = ChaosPlan::new(42).drop(Verb::Send, 0.10);
        let ctx = OpContext { verb: Verb::Send, bytes: 64, src: NodeId(0), dst: NodeId(1) };
        let n = 20_000;
        let dropped = (0..n)
            .filter(|_| plan.action(&ctx) == FaultAction::DropCompletion)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!(
            (0.08..0.12).contains(&rate),
            "10% nominal, measured {rate}"
        );
        // Other verbs untouched.
        let read = OpContext { verb: Verb::Read, ..ctx };
        assert!((0..1000).all(|_| plan.action(&read) == FaultAction::Deliver));
    }

    #[test]
    fn chaos_same_seed_same_schedule() {
        let ctx = OpContext { verb: Verb::Write, bytes: 64, src: NodeId(0), dst: NodeId(1) };
        let run = |seed| {
            let plan = ChaosPlan::new(seed).drop(Verb::Write, 0.05);
            (0..512).map(|_| plan.action(&ctx) == FaultAction::Deliver).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn jitter_bounded_and_seeded() {
        let plan = ChaosPlan::new(3).jitter(Verb::Read, Duration::from_micros(100));
        let ctx = OpContext { verb: Verb::Read, bytes: 64, src: NodeId(0), dst: NodeId(1) };
        for _ in 0..1000 {
            assert!(plan.delay(&ctx) < Duration::from_micros(100));
        }
        let other = OpContext { verb: Verb::Send, ..ctx };
        assert_eq!(plan.delay(&other), Duration::ZERO);
    }

    #[test]
    fn windows_blackhole_only_their_node_and_interval() {
        let node = NodeId(5);
        let plan = ChaosPlan::new(1).crash_window(
            node,
            Duration::ZERO,
            Duration::from_millis(50),
        );
        let hit = OpContext { verb: Verb::Send, bytes: 8, src: NodeId(0), dst: node };
        let miss = OpContext { verb: Verb::Send, bytes: 8, src: NodeId(0), dst: NodeId(1) };
        assert_eq!(plan.action(&hit), FaultAction::Blackhole);
        assert_eq!(plan.action(&miss), FaultAction::Deliver);
        assert!(plan.blackholes() >= 1);
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(plan.action(&hit), FaultAction::Deliver, "window expired");
    }

    #[test]
    fn active_windows_tracks_open_intervals_by_kind() {
        let plan = ChaosPlan::new(1)
            .crash_window(NodeId(1), Duration::ZERO, Duration::from_millis(50))
            .partition_window(NodeId(2), Duration::ZERO, Duration::from_millis(50))
            .partition_window(NodeId(3), Duration::from_secs(3600), Duration::from_secs(3601));
        assert_eq!(plan.active_windows(), (1, 1), "future window not active");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(plan.active_windows(), (0, 0), "expired windows closed");
    }
}
