//! Fault injection.
//!
//! A [`FaultHook`] lets tests perturb the fabric: add latency to specific
//! verbs or drop completions entirely (the work request is posted but its
//! completion never arrives), which exercises the timeout/retry paths of the
//! RPC layer built on top.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::verbs::Verb;

/// Hook invoked for every posted work request.
pub trait FaultHook: Send + Sync {
    /// Extra latency added to this operation's completion deadline.
    fn extra_delay(&self, _verb: Verb, _bytes: usize) -> Duration {
        Duration::ZERO
    }

    /// If true, the operation's completion (and any remote side effect
    /// delivery such as an immediate event or message) is silently dropped.
    /// One-sided payload effects still land, mirroring the ambiguity of a
    /// lost ACK on real hardware.
    fn should_drop(&self, _verb: Verb) -> bool {
        false
    }
}

/// A simple deterministic fault plan: drop every `drop_every`-th operation of
/// `drop_verb`, and delay all operations by `delay`.
pub struct FaultPlan {
    /// Added to every operation's completion deadline.
    pub delay: Duration,
    /// Which verb to drop (None = never drop).
    pub drop_verb: Option<Verb>,
    /// Drop every n-th matching operation (0 = never).
    pub drop_every: u64,
    counter: AtomicU64,
}

impl FaultPlan {
    /// Plan that only adds `delay` to every operation.
    pub fn delay_all(delay: Duration) -> FaultPlan {
        FaultPlan { delay, drop_verb: None, drop_every: 0, counter: AtomicU64::new(0) }
    }

    /// Plan that drops every `n`-th operation of `verb`.
    pub fn drop_every_nth(verb: Verb, n: u64) -> FaultPlan {
        FaultPlan {
            delay: Duration::ZERO,
            drop_verb: Some(verb),
            drop_every: n,
            counter: AtomicU64::new(0),
        }
    }
}

impl FaultHook for FaultPlan {
    fn extra_delay(&self, _verb: Verb, _bytes: usize) -> Duration {
        self.delay
    }

    fn should_drop(&self, verb: Verb) -> bool {
        if self.drop_every == 0 || self.drop_verb != Some(verb) {
            return false;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        n.is_multiple_of(self.drop_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_every_nth_counts_only_matching_verb() {
        let plan = FaultPlan::drop_every_nth(Verb::Send, 2);
        assert!(!plan.should_drop(Verb::Read));
        assert!(!plan.should_drop(Verb::Send)); // 1st
        assert!(plan.should_drop(Verb::Send)); // 2nd -> dropped
        assert!(!plan.should_drop(Verb::Send)); // 3rd
        assert!(plan.should_drop(Verb::Send)); // 4th -> dropped
    }

    #[test]
    fn delay_all_reports_delay() {
        let plan = FaultPlan::delay_all(Duration::from_micros(5));
        assert_eq!(plan.extra_delay(Verb::Write, 100), Duration::from_micros(5));
        assert!(!plan.should_drop(Verb::Write));
    }
}
