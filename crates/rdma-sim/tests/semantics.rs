//! Fabric semantics tests: ordering, cost-model monotonicity, concurrent
//! verbs, and two-sided delivery under load.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rdma_sim::{Fabric, NetworkProfile, Verb};

#[test]
fn concurrent_atomics_are_linearizable() {
    let fabric = Fabric::new(NetworkProfile::instant());
    let memory = fabric.add_node();
    let region = memory.register_region(64);
    let threads = 6;
    let per = 500u64;
    std::thread::scope(|s| {
        for _ in 0..threads {
            let fabric = Arc::clone(&fabric);
            let addr = region.addr(0);
            let compute = fabric.add_node();
            s.spawn(move || {
                let mut qp = fabric.create_qp(compute.id(), addr.node).unwrap();
                for _ in 0..per {
                    qp.fetch_add(addr, 1).unwrap();
                }
            });
        }
    });
    assert_eq!(region.atomic_load(0).unwrap(), threads * per);
}

#[test]
fn cas_elects_exactly_one_winner_per_round() {
    let fabric = Fabric::new(NetworkProfile::instant());
    let memory = fabric.add_node();
    let region = memory.register_region(64);
    let winners = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let fabric = Arc::clone(&fabric);
            let addr = region.addr(8);
            let compute = fabric.add_node();
            let winners = &winners;
            s.spawn(move || {
                let mut qp = fabric.create_qp(compute.id(), addr.node).unwrap();
                if qp.compare_swap(addr, 0, 1).unwrap() == 0 {
                    winners.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(winners.load(std::sync::atomic::Ordering::Relaxed), 1);
}

#[test]
fn many_senders_one_receiver_no_message_loss() {
    let fabric = Fabric::new(NetworkProfile::edr_100g().scaled(0.05));
    let receiver = fabric.add_node();
    let senders = 5;
    let per = 200u64;
    std::thread::scope(|s| {
        for t in 0..senders {
            let fabric = Arc::clone(&fabric);
            let target = receiver.id();
            let compute = fabric.add_node();
            s.spawn(move || {
                let mut qp = fabric.create_qp(compute.id(), target).unwrap();
                for i in 0..per {
                    qp.post_send(format!("{t}:{i}").into_bytes(), i).unwrap();
                    qp.drain().unwrap();
                }
            });
        }
        let receiver = &receiver;
        s.spawn(move || {
            let mut got = 0u64;
            let deadline = Instant::now() + Duration::from_secs(30);
            while got < senders * per {
                if receiver.recv(Duration::from_millis(100)).is_ok() {
                    got += 1;
                }
                assert!(Instant::now() < deadline, "only received {got} messages");
            }
        });
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Larger transfers never cost less, and effective bandwidth never
    /// decreases with unit size (the netgap monotonicity).
    #[test]
    fn cost_model_monotone(sizes in prop::collection::vec(1usize..(4 << 20), 2..20)) {
        let p = NetworkProfile::edr_100g();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            prop_assert!(p.transfer_cost(w[1]) >= p.transfer_cost(w[0]));
            prop_assert!(p.effective_bandwidth(w[1]) >= p.effective_bandwidth(w[0]) * 0.999);
        }
    }

    /// Per-QP completions always arrive in post order, whatever the mix of
    /// verb sizes.
    #[test]
    fn completions_fifo_for_any_size_mix(sizes in prop::collection::vec(1usize..32768, 1..40)) {
        let fabric = Fabric::new(NetworkProfile::edr_100g().scaled(0.01));
        let compute = fabric.add_node();
        let memory = fabric.add_node();
        let region = memory.register_region(64 << 10);
        let mut qp = fabric.create_qp(compute.id(), memory.id()).unwrap();
        qp.set_max_outstanding(sizes.len() + 1);
        let buf = vec![0u8; 32768];
        for (i, &size) in sizes.iter().enumerate() {
            qp.post_write(&buf[..size.min(64 << 10)], region.addr(0), i as u64).unwrap();
        }
        let ids: Vec<u64> = qp.drain().unwrap().iter().map(|c| c.wr_id).collect();
        let want: Vec<u64> = (0..sizes.len() as u64).collect();
        prop_assert_eq!(ids, want);
    }

    /// Written bytes are exactly readable back at arbitrary offsets.
    #[test]
    fn remote_write_read_consistency(
        writes in prop::collection::vec(
            (0u64..4000, prop::collection::vec(any::<u8>(), 1..64)),
            1..30,
        )
    ) {
        let fabric = Fabric::new(NetworkProfile::instant());
        let compute = fabric.add_node();
        let memory = fabric.add_node();
        let region = memory.register_region(8 << 10);
        let mut qp = fabric.create_qp(compute.id(), memory.id()).unwrap();
        // Model of the remote region.
        let mut model = vec![0u8; 8 << 10];
        for (off, data) in &writes {
            qp.write_sync(data, region.addr(*off)).unwrap();
            model[*off as usize..*off as usize + data.len()].copy_from_slice(data);
        }
        let mut back = vec![0u8; 8 << 10];
        qp.read_sync(region.addr(0), &mut back[..4096]).unwrap();
        qp.read_sync(region.addr(4096), &mut back[4096..]).unwrap();
        prop_assert_eq!(back, model);
    }
}

#[test]
fn stats_account_every_byte() {
    let fabric = Fabric::new(NetworkProfile::instant());
    let compute = fabric.add_node();
    let memory = fabric.add_node();
    let region = memory.register_region(1 << 20);
    let mut qp = fabric.create_qp(compute.id(), memory.id()).unwrap();
    let mut expected_w = 0u64;
    let mut expected_r = 0u64;
    for i in 1..=64usize {
        qp.write_sync(&vec![1u8; i * 13], region.addr(0)).unwrap();
        expected_w += (i * 13) as u64;
        let mut buf = vec![0u8; i * 7];
        qp.read_sync(region.addr(0), &mut buf).unwrap();
        expected_r += (i * 7) as u64;
    }
    let snap = fabric.stats().snapshot();
    assert_eq!(snap.bytes(Verb::Write), expected_w);
    assert_eq!(snap.bytes(Verb::Read), expected_r);
    assert_eq!(snap.ops(Verb::Write), 64);
    assert_eq!(snap.ops(Verb::Read), 64);
}
