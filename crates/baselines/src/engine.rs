//! The common engine interface driven by the benchmark harness.

/// Error surfaced by any engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError(pub String);

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for EngineError {}

impl From<dlsm::DbError> for EngineError {
    fn from(e: dlsm::DbError) -> Self {
        EngineError(e.to_string())
    }
}

impl From<rdma_sim::RdmaError> for EngineError {
    fn from(e: rdma_sim::RdmaError) -> Self {
        EngineError(e.to_string())
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

/// A key-value engine under test: dLSM, one of the RocksDB-RDMA ports,
/// Nova-LSM-style, or Sherman.
pub trait Engine: Send + Sync {
    /// Display name used in benchmark reports.
    fn name(&self) -> &str;

    /// Insert or overwrite.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Delete.
    fn delete(&self, key: &[u8]) -> Result<()>;

    /// A thread-local read handle.
    fn reader(&self) -> Box<dyn EngineReader + '_>;

    /// Block until background work (flush/compaction) settles.
    fn wait_until_quiescent(&self) {}

    /// Stop background work.
    fn shutdown(&self) {}

    /// Remote-memory bytes currently consumed (the paper's Fig. 9 space
    /// report).
    fn remote_space_used(&self) -> u64 {
        0
    }

    /// Compute-side telemetry: op latency histograms, breakdown spans and
    /// counters (DESIGN.md §8). `None` for engines without instrumentation;
    /// RDMA verb traffic is attached by the caller from the fabric.
    fn telemetry(&self) -> Option<dlsm_telemetry::TelemetrySnapshot> {
        None
    }

    /// Register live-state collectors with a metrics registry (DESIGN.md
    /// §8b). Default: nothing to export.
    fn register_metrics(&self, _reg: &dlsm_metrics::MetricsRegistry) {}

    /// A RocksDB-style stats report, `None` for engines without one. The
    /// bench harness prints it at the end of a run.
    fn stats_report(&self) -> Option<String> {
        None
    }
}

/// Thread-local read handle.
pub trait EngineReader {
    /// Point lookup.
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Full forward scan; returns the number of live entries visited
    /// (the `readseq` benchmark).
    fn scan_all(&mut self) -> Result<u64>;

    /// Bounded range scan: visit live entries with key ≥ `start` in key
    /// order, stopping after `limit` entries; returns the count visited
    /// (the YCSB-E scan verb).
    fn scan_from(
        &mut self,
        start: &[u8],
        limit: u64,
        visit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<u64>;
}
