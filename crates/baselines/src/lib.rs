//! # dlsm-baselines — the paper's five comparison systems, plus dLSM itself
//! behind one interface
//!
//! Sec. XI-A of the paper evaluates dLSM against:
//!
//! 1. **RocksDB-RDMA (8 KB)** — a conventional block-based LSM ported onto
//!    RDMA-extended remote memory: block SSTables read/written through an
//!    RDMA "file system", single-writer-queue software overhead,
//!    compute-side compaction.
//! 2. **RocksDB-RDMA (2 KB)** — same, smaller blocks.
//! 3. **Memory-RocksDB-RDMA** — block size equal to one key-value pair,
//!    SSTable indexes cached on the compute node, prefetching on.
//! 4. **Nova-LSM** — an LSM for *storage* disaggregation run over a
//!    tmpfs-like remote file API: two-sided RPC reads/writes with the extra
//!    server-side memory copy, 64 subranges for compaction parallelism.
//! 5. **Sherman** — a write-optimized B+-tree for disaggregated memory:
//!    internal nodes cached in compute memory, 1 KB leaves in remote
//!    memory; reads cost one RDMA read, writes cost lock + read + write-back.
//!
//! Baselines 1–4 are architectural configurations of the same LSM engine
//! (the knobs they differ in are exactly what the paper credits/blames);
//! Sherman is its own tree implementation in [`sherman`]. Everything is
//! exposed through the [`Engine`] trait so the benchmark harness drives all
//! systems identically.

pub mod engine;
pub mod presets;
pub mod sherman;

pub use engine::{Engine, EngineError, EngineReader};
pub use presets::{
    build_dlsm, build_dlsm_block, build_memory_rocksdb, build_nova_lsm, build_rocksdb_rdma,
    DlsmEngine, EngineDeps,
};
pub use sherman::Sherman;
