//! Engine presets: dLSM and the four LSM baselines as configurations.
//!
//! The architectural knobs per system (everything else is held equal, as the
//! paper holds SSTable sizes, MemTable sizes, bloom budgets etc. equal):
//!
//! | system              | format       | compaction   | data path | writes      | λ  |
//! |---------------------|--------------|--------------|-----------|-------------|----|
//! | dLSM                | byte-addr    | near-data    | one-sided | seq-range   | cfg|
//! | dLSM-Block          | block 8 KB   | near-data    | one-sided | seq-range   | cfg|
//! | RocksDB-RDMA (8 KB) | block 8 KB   | compute-side | one-sided | serialized  | 1  |
//! | RocksDB-RDMA (2 KB) | block 2 KB   | compute-side | one-sided | serialized  | 1  |
//! | Memory-RocksDB-RDMA | block = KV   | compute-side | one-sided | serialized  | 1  |
//! | Nova-LSM            | block 8 KB   | compute-side | two-sided | naive switch| 64 |

use std::sync::Arc;

use dlsm::{ComputeContext, DataPath, DbConfig, MemNodeHandle, ShardedDb, SwitchProtocol};
use dlsm_memnode::TableFormat;

use crate::engine::{Engine, EngineError, EngineReader, Result};

/// What every engine needs: a compute context and the memory node(s).
#[derive(Clone)]
pub struct EngineDeps {
    /// This compute node.
    pub ctx: Arc<ComputeContext>,
    /// Memory nodes (shards are placed round-robin).
    pub memnodes: Vec<Arc<MemNodeHandle>>,
}

/// Any LSM variant: a named [`ShardedDb`].
pub struct DlsmEngine {
    name: String,
    db: ShardedDb,
}

impl DlsmEngine {
    /// Wrap an already-open database.
    pub fn new(name: impl Into<String>, db: ShardedDb) -> DlsmEngine {
        DlsmEngine { name: name.into(), db }
    }

    /// The underlying database.
    pub fn db(&self) -> &ShardedDb {
        &self.db
    }
}

impl Engine for DlsmEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.db.put(key, value)?;
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.db.delete(key)?;
        Ok(())
    }

    fn reader(&self) -> Box<dyn EngineReader + '_> {
        Box::new(LsmReader { inner: self.db.reader() })
    }

    fn wait_until_quiescent(&self) {
        self.db.wait_until_quiescent();
    }

    fn shutdown(&self) {
        self.db.shutdown();
    }

    fn remote_space_used(&self) -> u64 {
        self.db.shards().iter().map(|s| s.remote_flush_in_use()).sum()
    }

    fn telemetry(&self) -> Option<dlsm_telemetry::TelemetrySnapshot> {
        Some(self.db.telemetry_snapshot())
    }

    fn register_metrics(&self, reg: &dlsm_metrics::MetricsRegistry) {
        self.db.register_metrics(reg);
    }

    fn stats_report(&self) -> Option<String> {
        Some(self.db.stats_report())
    }
}

struct LsmReader {
    inner: dlsm::shard::ShardedReader,
}

impl EngineReader for LsmReader {
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get(key).map_err(EngineError::from)
    }

    fn scan_all(&mut self) -> Result<u64> {
        let mut n = 0;
        for item in self.inner.scan(b"")? {
            item?;
            n += 1;
        }
        Ok(n)
    }

    fn scan_from(
        &mut self,
        start: &[u8],
        limit: u64,
        visit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<u64> {
        let mut n = 0;
        for item in self.inner.scan(start)? {
            if n >= limit {
                break;
            }
            let (k, v) = item?;
            visit(&k, &v);
            n += 1;
        }
        Ok(n)
    }
}

fn open(deps: &EngineDeps, cfg: DbConfig, lambda: usize, name: &str) -> Result<DlsmEngine> {
    let db = ShardedDb::open(Arc::clone(&deps.ctx), &deps.memnodes, cfg, lambda)?;
    Ok(DlsmEngine::new(name, db))
}

/// Split a per-tree L0 budget across λ shards: with λ independent trees the
/// *total* L0 backlog (and the remote memory pinned by it) should stay in
/// the same ballpark as the unsharded configuration.
fn shard_trigger(total: usize, lambda: usize) -> usize {
    (total / lambda.max(1)).max(6)
}

/// Split the per-tree background thread budget across λ shards (the paper's
/// thread counts are per database, not per shard — 64 subranges must not
/// mean 256 flush threads).
fn shard_threads(total: usize, lambda: usize) -> usize {
    (total / lambda.max(1)).max(1)
}

/// dLSM proper (paper configuration, λ shards).
pub fn build_dlsm(deps: &EngineDeps, base: DbConfig, lambda: usize) -> Result<DlsmEngine> {
    let cfg = DbConfig {
        format: TableFormat::ByteAddr,
        near_data_compaction: true,
        data_path: DataPath::OneSided,
        switch_protocol: SwitchProtocol::SeqRange,
        serialized_writes: false,
        l0_stop_writes_trigger: base
            .l0_stop_writes_trigger
            .map(|t| shard_trigger(t, lambda)),
        flush_threads: shard_threads(base.flush_threads, lambda),
        ..base
    };
    let name = if lambda > 1 { format!("dLSM-{lambda}") } else { "dLSM".into() };
    open(deps, cfg, lambda, &name)
}

/// dLSM with block SSTables (the Fig. 13 ablation).
pub fn build_dlsm_block(deps: &EngineDeps, base: DbConfig, block_size: u32) -> Result<DlsmEngine> {
    let cfg = DbConfig {
        format: TableFormat::Block(block_size),
        near_data_compaction: true,
        data_path: DataPath::OneSided,
        switch_protocol: SwitchProtocol::SeqRange,
        serialized_writes: false,
        ..base
    };
    open(deps, cfg, 1, "dLSM-Block")
}

/// RocksDB-RDMA: block SSTables over one-sided RDMA, single-writer-queue
/// software overhead, compute-side compaction.
pub fn build_rocksdb_rdma(deps: &EngineDeps, base: DbConfig, block_size: u32) -> Result<DlsmEngine> {
    let cfg = DbConfig {
        format: TableFormat::Block(block_size),
        near_data_compaction: false,
        data_path: DataPath::OneSided,
        switch_protocol: SwitchProtocol::NaiveDoubleChecked,
        serialized_writes: true,
        // Baselines run without the dLSM compute-side read cache.
        cache: dlsm::CacheConfig::default(),
        local_l0_cache_bytes: 0,
        ..base
    };
    let name = format!("RocksDB-RDMA ({} KB)", block_size >> 10);
    open(deps, cfg, 1, &name)
}

/// Memory-RocksDB-RDMA: one key-value pair per block, indexes cached on the
/// compute node, prefetching enabled.
pub fn build_memory_rocksdb(deps: &EngineDeps, base: DbConfig) -> Result<DlsmEngine> {
    let cfg = DbConfig {
        format: TableFormat::Block(0),
        near_data_compaction: false,
        data_path: DataPath::OneSided,
        switch_protocol: SwitchProtocol::NaiveDoubleChecked,
        serialized_writes: true,
        // Baselines run without the dLSM compute-side read cache.
        cache: dlsm::CacheConfig::default(),
        local_l0_cache_bytes: 0,
        ..base
    };
    open(deps, cfg, 1, "Memory-RocksDB-RDMA")
}

/// Nova-LSM-style: subranged LSM whose data path is the two-sided tmpfs RPC
/// (request → server memcpy → reply), compute-side compaction.
pub fn build_nova_lsm(deps: &EngineDeps, base: DbConfig, subranges: usize) -> Result<DlsmEngine> {
    let cfg = DbConfig {
        format: TableFormat::Block(8192),
        near_data_compaction: false,
        data_path: DataPath::TwoSidedRpc,
        switch_protocol: SwitchProtocol::NaiveDoubleChecked,
        serialized_writes: false,
        // Baselines run without the dLSM compute-side read cache.
        cache: dlsm::CacheConfig::default(),
        local_l0_cache_bytes: 0,
        l0_stop_writes_trigger: base
            .l0_stop_writes_trigger
            .map(|t| shard_trigger(t, subranges)),
        flush_threads: shard_threads(base.flush_threads, subranges),
        ..base
    };
    open(deps, cfg, subranges, "Nova-LSM")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsm_memnode::{MemServer, MemServerConfig};
    use rdma_sim::{Fabric, NetworkProfile};

    fn deps(fabric: &Arc<Fabric>, server: &MemServer) -> EngineDeps {
        EngineDeps {
            ctx: ComputeContext::new(fabric),
            memnodes: vec![MemNodeHandle::from_server(server)],
        }
    }

    fn server(fabric: &Arc<Fabric>) -> MemServer {
        MemServer::start(
            fabric,
            MemServerConfig {
                region_size: 96 << 20,
                flush_zone: 40 << 20,
                compaction_workers: 2,
                dispatchers: 1,
            },
        )
    }

    fn exercise(engine: &dyn Engine, n: u64) {
        for i in 0..n {
            let mut k = i.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes().to_vec();
            k.extend_from_slice(format!("-{i:06}").as_bytes());
            engine.put(&k, format!("v{i}").as_bytes()).unwrap();
        }
        engine.wait_until_quiescent();
        let mut r = engine.reader();
        for i in (0..n).step_by(59) {
            let mut k = i.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes().to_vec();
            k.extend_from_slice(format!("-{i:06}").as_bytes());
            assert_eq!(
                r.get(&k).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "{}: key {i} lost",
                engine.name()
            );
        }
        assert_eq!(r.scan_all().unwrap(), n, "{}: scan count", engine.name());
    }

    #[test]
    fn every_lsm_preset_works() {
        let fabric = Fabric::new(NetworkProfile::instant());
        let server = server(&fabric);
        let d = deps(&fabric, &server);
        let base = DbConfig::small();
        let engines: Vec<DlsmEngine> = vec![
            build_dlsm(&d, base.clone(), 1).unwrap(),
            build_dlsm(&d, base.clone(), 2).unwrap(),
            build_dlsm_block(&d, base.clone(), 2048).unwrap(),
            build_rocksdb_rdma(&d, base.clone(), 8192).unwrap(),
            build_rocksdb_rdma(&d, base.clone(), 2048).unwrap(),
            build_memory_rocksdb(&d, base.clone()).unwrap(),
            build_nova_lsm(&d, base.clone(), 4).unwrap(),
        ];
        for e in &engines {
            exercise(e, 1_200);
            let tel = e.telemetry().expect("LSM engines expose telemetry");
            assert_eq!(tel.counter("puts"), 1_200, "{}", e.name());
            assert_eq!(tel.op(dlsm_telemetry::OpClass::Put).count(), 1_200, "{}", e.name());
            e.shutdown();
        }
        server.shutdown();
    }
}
