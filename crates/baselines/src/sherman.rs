//! A Sherman-style write-optimized B+-tree on disaggregated memory
//! (baseline #5, after Wang et al., SIGMOD 2022).
//!
//! The traits the paper's evaluation depends on:
//!
//! * **Internal nodes are cached in compute-node local memory** — modelled
//!   as a sorted separator map from smallest-key to leaf extent, so
//!   traversal costs no network I/O.
//! * **Leaves (1 KB by default) live in remote memory.** A read costs
//!   exactly one RDMA read of one leaf — which is why Sherman slightly beats
//!   dLSM on random reads (Fig. 8).
//! * **Every write is read-modify-write over the network**: acquire the
//!   leaf's lock word with an RDMA CAS, read the leaf, modify locally,
//!   write the leaf back, release the lock — the per-write round trips that
//!   make Sherman 1.8–11.7x slower than dLSM on writes (Fig. 7a).
//! * **Scans walk leaves one 1 KB read at a time** (no multi-MB prefetch),
//!   the paper's explanation for Fig. 11.
//!
//! Reads are optimistic, Sherman-style: each leaf carries a version word at
//! its head and a copy at its tail (the paper's front/rear versions); a
//! reader accepts a leaf image only if it is unlocked and both versions
//! match, retrying otherwise — so a torn read concurrent with a writer's
//! write-back is detected from a single RDMA read. Remaining
//! simplification: leaves never merge on delete.

use std::collections::BTreeMap;
use std::sync::Arc;
use dlsm::{ComputeContext, MemNodeHandle};
use parking_lot::{Mutex, RwLock};
use rdma_sim::QueuePair;

use crate::engine::{Engine, EngineError, EngineReader, Result};

/// Default leaf size (the paper follows Sherman's 1 KB default).
pub const DEFAULT_LEAF_SIZE: usize = 1024;

const LOCK_OFF: u64 = 0;
/// Front version word (the paper's "front version").
const VERSION_OFF: usize = 8;
const COUNT_OFF: usize = 16;
const HEADER: usize = 20;
/// The rear version mirrors the front version in the last 8 bytes.
const TAIL: usize = 8;

/// The Sherman-style B+-tree.
pub struct Sherman {
    ctx: Arc<ComputeContext>,
    memnode: Arc<MemNodeHandle>,
    leaf_size: usize,
    /// Cached "internal nodes": smallest-key separator → leaf offset.
    index: RwLock<BTreeMap<Vec<u8>, u64>>,
    /// Queue-pair pool (writers/readers check one out per operation).
    qps: Mutex<Vec<QueuePair>>,
}

impl Sherman {
    /// Create an empty tree with the default 1 KB leaves.
    pub fn new(ctx: Arc<ComputeContext>, memnode: Arc<MemNodeHandle>) -> Result<Sherman> {
        Self::with_leaf_size(ctx, memnode, DEFAULT_LEAF_SIZE)
    }

    /// Create an empty tree with a custom leaf size.
    pub fn with_leaf_size(
        ctx: Arc<ComputeContext>,
        memnode: Arc<MemNodeHandle>,
        leaf_size: usize,
    ) -> Result<Sherman> {
        assert!(leaf_size >= 64, "leaf must hold the header and an entry");
        let tree = Sherman {
            ctx,
            memnode,
            leaf_size,
            index: RwLock::new(BTreeMap::new()),
            qps: Mutex::new(Vec::new()),
        };
        // Root leaf covering the whole key space.
        let first = tree.alloc_leaf()?;
        tree.with_qp(|qp| {
            // Zeroed region ⇒ count = 0, lock = 0: nothing to initialize.
            let _ = qp;
            Ok(())
        })?;
        tree.index.write().insert(Vec::new(), first);
        Ok(tree)
    }

    /// Leaf size in bytes.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Number of leaves (≈ cached internal-node footprint).
    pub fn leaf_count(&self) -> usize {
        self.index.read().len()
    }

    fn alloc_leaf(&self) -> Result<u64> {
        self.memnode
            .flush_alloc()
            .alloc(self.leaf_size as u64)
            .ok_or_else(|| EngineError("Sherman: remote memory exhausted".into()))
    }

    fn with_qp<R>(&self, f: impl FnOnce(&mut QueuePair) -> Result<R>) -> Result<R> {
        let mut qp = match self.qps.lock().pop() {
            Some(qp) => qp,
            None => self
                .ctx
                .fabric()
                .create_qp(self.ctx.node().id(), self.memnode.node_id())?,
        };
        let out = f(&mut qp);
        self.qps.lock().push(qp);
        out
    }

    /// Leaf that owns `key` per the cached separators.
    fn locate(&self, key: &[u8]) -> (Vec<u8>, u64) {
        let idx = self.index.read();
        let (sep, &leaf) = idx
            .range::<[u8], _>((std::ops::Bound::Unbounded, std::ops::Bound::Included(key)))
            // The separator map is seeded with the empty key at startup and
            // separators are never removed, so an Unbounded..=key range is
            // PANIC-SAFE: next_back() always yields at least that sentinel.
            .next_back()
            .expect("separator map always holds the empty key");
        (sep.clone(), leaf)
    }

    fn read_leaf(&self, qp: &mut QueuePair, leaf: u64) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; self.leaf_size];
        qp.read_sync(self.memnode.remote().addr(leaf), &mut buf)?;
        Ok(buf)
    }

    /// Front version of a leaf image.
    fn front_version(buf: &[u8]) -> u64 {
        // PANIC-SAFE: leaf buffers are always allocated at self.leaf_size
        // (>= HEADER + TAIL), so the 8-byte version slice cannot be short.
        u64::from_le_bytes(buf[VERSION_OFF..VERSION_OFF + 8].try_into().expect("version"))
    }

    /// Rear version (the copy in the final 8 bytes).
    fn rear_version(buf: &[u8]) -> u64 {
        let n = buf.len();
        u64::from_le_bytes(buf[n - TAIL..].try_into().expect("rear version"))
    }

    /// Whether a single-read leaf image is consistent: unlocked and with
    /// matching front/rear versions (Sherman's optimistic validation).
    fn image_consistent(buf: &[u8]) -> bool {
        let lock = u64::from_le_bytes(buf[0..8].try_into().expect("lock word"));
        lock == 0 && Self::front_version(buf) == Self::rear_version(buf)
    }

    fn parse(&self, buf: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // PANIC-SAFE: fixed-size leaf images guarantee the 4-byte count word
        // exists; entry bounds past it are checked with explicit errors below.
        let count = u32::from_le_bytes(
            buf[COUNT_OFF..COUNT_OFF + 4].try_into().expect("count word"),
        ) as usize;
        let mut out = Vec::with_capacity(count.min(4096));
        let mut off = HEADER;
        let limit = buf.len() - TAIL;
        for _ in 0..count {
            if off + 4 > limit {
                return Err(EngineError("Sherman: corrupt leaf".into()));
            }
            let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
            let vlen = u16::from_le_bytes([buf[off + 2], buf[off + 3]]) as usize;
            off += 4;
            if off + klen + vlen > limit {
                return Err(EngineError("Sherman: corrupt leaf entry".into()));
            }
            out.push((buf[off..off + klen].to_vec(), buf[off + klen..off + klen + vlen].to_vec()));
            off += klen + vlen;
        }
        Ok(out)
    }

    /// Serialize a leaf image at `version` (front + rear stamped).
    fn serialize(&self, entries: &[(Vec<u8>, Vec<u8>)], version: u64) -> Vec<u8> {
        let mut buf = vec![0u8; self.leaf_size];
        buf[VERSION_OFF..VERSION_OFF + 8].copy_from_slice(&version.to_le_bytes());
        buf[COUNT_OFF..COUNT_OFF + 4].copy_from_slice(&(entries.len() as u32).to_le_bytes());
        let mut off = HEADER;
        for (k, v) in entries {
            buf[off..off + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
            buf[off + 2..off + 4].copy_from_slice(&(v.len() as u16).to_le_bytes());
            off += 4;
            buf[off..off + k.len()].copy_from_slice(k);
            off += k.len();
            buf[off..off + v.len()].copy_from_slice(v);
            off += v.len();
        }
        let n = buf.len();
        buf[n - TAIL..].copy_from_slice(&version.to_le_bytes());
        buf
    }

    fn entries_size(entries: &[(Vec<u8>, Vec<u8>)]) -> usize {
        HEADER + TAIL + entries.iter().map(|(k, v)| 4 + k.len() + v.len()).sum::<usize>()
    }

    fn lock_leaf(&self, qp: &mut QueuePair, leaf: u64) -> Result<()> {
        let addr = self.memnode.remote().addr(leaf + LOCK_OFF);
        loop {
            if qp.compare_swap(addr, 0, 1)? == 0 {
                return Ok(());
            }
            // HOTPATH: Sherman's global on-chip lock *is* a remote spin lock;
            // spinning here reproduces the baseline faithfully (ROADMAP item 3
            // covers the dLSM-side wait refactor, not the baselines).
            std::thread::yield_now();
        }
    }

    fn unlock_leaf(&self, qp: &mut QueuePair, leaf: u64) -> Result<()> {
        let addr = self.memnode.remote().addr(leaf + LOCK_OFF);
        let prev = qp.compare_swap(addr, 1, 0)?;
        debug_assert_eq!(prev, 1, "unlocking an unlocked leaf");
        Ok(())
    }

    fn upsert(&self, key: &[u8], value: Option<&[u8]>) -> Result<()> {
        if key.len() > u16::MAX as usize || value.map_or(0, <[u8]>::len) > u16::MAX as usize {
            return Err(EngineError("Sherman: key/value too large".into()));
        }
        if 4 + key.len() + value.map_or(0, <[u8]>::len) + HEADER > self.leaf_size {
            return Err(EngineError("Sherman: entry exceeds leaf size".into()));
        }
        self.with_qp(|qp| {
            loop {
                let (_, leaf) = self.locate(key);
                self.lock_leaf(qp, leaf)?;
                // Re-validate: a concurrent split may have moved ownership.
                let (_, now) = self.locate(key);
                if now != leaf {
                    self.unlock_leaf(qp, leaf)?;
                    continue;
                }
                // Read-modify-write: the per-write network cost of Sherman.
                let buf = self.read_leaf(qp, leaf)?;
                let version = Self::front_version(&buf) + 1;
                let mut entries = self.parse(&buf)?;
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => match value {
                        Some(v) => entries[i].1 = v.to_vec(),
                        None => {
                            entries.remove(i);
                        }
                    },
                    Err(i) => {
                        if let Some(v) = value {
                            entries.insert(i, (key.to_vec(), v.to_vec()));
                        }
                    }
                }
                if Self::entries_size(&entries) <= self.leaf_size {
                    // Keep the lock bit set in the image; release with CAS.
                    let mut image = self.serialize(&entries, version);
                    image[0..8].copy_from_slice(&1u64.to_le_bytes());
                    qp.write_sync(&image, self.memnode.remote().addr(leaf))?;
                    self.unlock_leaf(qp, leaf)?;
                    return Ok(());
                }
                // Split: upper half moves to a fresh leaf; the separator map
                // (the cached internal nodes) is updated locally.
                let mid = entries.len() / 2;
                let upper = entries.split_off(mid);
                let sep = upper[0].0.clone();
                let new_leaf = self.alloc_leaf()?;
                let upper_image = self.serialize(&upper, 1);
                qp.write_sync(&upper_image, self.memnode.remote().addr(new_leaf))?;
                let mut lower_image = self.serialize(&entries, version);
                lower_image[0..8].copy_from_slice(&1u64.to_le_bytes());
                qp.write_sync(&lower_image, self.memnode.remote().addr(leaf))?;
                self.index.write().insert(sep, new_leaf);
                self.unlock_leaf(qp, leaf)?;
                // Retry the insert; it now routes to the right half.
            }
        })
    }

    /// Point lookup: one RDMA read of the owning leaf, validated with the
    /// front/rear version pair (retry on a torn or locked image).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.with_qp(|qp| {
            loop {
                let (_, leaf) = self.locate(key);
                let buf = self.read_leaf(qp, leaf)?;
                if !Self::image_consistent(&buf) {
                    // A writer holds the leaf or the image is torn; retry.
                    std::thread::yield_now();
                    continue;
                }
                let entries = self.parse(&buf)?;
                return Ok(entries
                    .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                    .ok()
                    .map(|i| entries[i].1.clone()));
            }
        })
    }

    /// Full forward scan: leaf-by-leaf 1 KB reads in separator order.
    pub fn scan_all(&self, mut visit: impl FnMut(&[u8], &[u8])) -> Result<u64> {
        let leaves: Vec<u64> = self.index.read().values().copied().collect();
        let mut n = 0;
        self.with_qp(|qp| {
            for leaf in leaves {
                let buf = loop {
                    let buf = self.read_leaf(qp, leaf)?;
                    if Self::image_consistent(&buf) {
                        break buf;
                    }
                    std::thread::yield_now();
                };
                for (k, v) in self.parse(&buf)? {
                    visit(&k, &v);
                    n += 1;
                }
            }
            Ok(())
        })?;
        Ok(n)
    }

    /// Remote bytes consumed by leaves.
    pub fn remote_space_used(&self) -> u64 {
        self.memnode.flush_alloc().in_use()
    }
}

impl Engine for Sherman {
    fn name(&self) -> &str {
        "Sherman"
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.upsert(key, Some(value))
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.upsert(key, None)
    }

    fn reader(&self) -> Box<dyn EngineReader + '_> {
        Box::new(ShermanReader { tree: self })
    }

    fn remote_space_used(&self) -> u64 {
        Sherman::remote_space_used(self)
    }
}

struct ShermanReader<'t> {
    tree: &'t Sherman,
}

impl<'t> EngineReader for ShermanReader<'t> {
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.tree.get(key)
    }

    fn scan_all(&mut self) -> Result<u64> {
        self.tree.scan_all(|_, _| {})
    }

    fn scan_from(
        &mut self,
        start: &[u8],
        limit: u64,
        visit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<u64> {
        // Sherman has no cursor API; walk the full leaf chain and window it.
        // Costs a full scan per call — fine for correctness coverage, not a
        // representative scan benchmark (use the LSM engines for YCSB-E).
        let mut n = 0;
        self.tree.scan_all(|k, v| {
            if k >= start && n < limit {
                visit(k, v);
                n += 1;
            }
        })?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsm_memnode::{MemServer, MemServerConfig};
    use rdma_sim::{Fabric, NetworkProfile, Verb};

    fn setup() -> (Arc<rdma_sim::Fabric>, MemServer, Sherman) {
        let fabric = Fabric::new(NetworkProfile::instant());
        let server = MemServer::start(
            &fabric,
            MemServerConfig {
                region_size: 64 << 20,
                flush_zone: 56 << 20,
                compaction_workers: 1,
                dispatchers: 1,
            },
        );
        let ctx = ComputeContext::new(&fabric);
        let mem = MemNodeHandle::from_server(&server);
        let tree = Sherman::new(ctx, mem).unwrap();
        (fabric, server, tree)
    }

    #[test]
    fn put_get_roundtrip() {
        let (_f, server, tree) = setup();
        tree.put(b"b", b"2").unwrap();
        tree.put(b"a", b"1").unwrap();
        assert_eq!(tree.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(tree.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(tree.get(b"c").unwrap(), None);
        tree.put(b"a", b"1'").unwrap();
        assert_eq!(tree.get(b"a").unwrap(), Some(b"1'".to_vec()));
        server.shutdown();
    }

    #[test]
    fn delete_removes() {
        let (_f, server, tree) = setup();
        tree.put(b"k", b"v").unwrap();
        tree.delete(b"k").unwrap();
        assert_eq!(tree.get(b"k").unwrap(), None);
        // Deleting a missing key is a no-op.
        tree.delete(b"missing").unwrap();
        server.shutdown();
    }

    #[test]
    fn splits_preserve_everything() {
        let (_f, server, tree) = setup();
        let n = 3_000u64;
        for i in 0..n {
            let k = i.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes();
            tree.put(&k, format!("v{i}").as_bytes()).unwrap();
        }
        assert!(tree.leaf_count() > 10, "splits must have happened");
        for i in (0..n).step_by(61) {
            let k = i.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes();
            assert_eq!(tree.get(&k).unwrap(), Some(format!("v{i}").into_bytes()));
        }
        server.shutdown();
    }

    #[test]
    fn scan_is_sorted_and_complete() {
        let (_f, server, tree) = setup();
        let n = 1_000u64;
        for i in 0..n {
            let k = i.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes();
            tree.put(&k, b"v").unwrap();
        }
        let mut keys = Vec::new();
        let count = tree.scan_all(|k, _| keys.push(k.to_vec())).unwrap();
        assert_eq!(count, n);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "scan must be key-ordered");
        server.shutdown();
    }

    #[test]
    fn read_costs_one_rdma_read() {
        let (fabric, server, tree) = setup();
        for i in 0..200u64 {
            tree.put(&i.to_be_bytes(), b"x").unwrap();
        }
        let before = fabric.stats().snapshot();
        assert_eq!(tree.get(&42u64.to_be_bytes()).unwrap(), Some(b"x".to_vec()));
        let d = fabric.stats().snapshot().delta(&before);
        assert_eq!(d.ops(Verb::Read), 1, "a Sherman read is exactly one leaf read");
        assert_eq!(d.bytes(Verb::Read), DEFAULT_LEAF_SIZE as u64);
        server.shutdown();
    }

    #[test]
    fn write_pays_lock_read_write_unlock() {
        let (fabric, server, tree) = setup();
        tree.put(b"warm", b"up").unwrap();
        let before = fabric.stats().snapshot();
        tree.put(b"key", b"value").unwrap();
        let d = fabric.stats().snapshot().delta(&before);
        assert_eq!(d.ops(Verb::CompareSwap), 2, "lock + unlock");
        assert_eq!(d.ops(Verb::Read), 1, "leaf fetch");
        assert_eq!(d.ops(Verb::Write), 1, "leaf write-back");
        server.shutdown();
    }

    #[test]
    fn leaf_versions_advance_with_writes() {
        let (_f, server, tree) = setup();
        tree.put(b"k", b"v1").unwrap();
        tree.put(b"k", b"v2").unwrap();
        // Read the root leaf raw and verify front == rear version > 0.
        let (_, leaf) = tree.locate(b"k");
        let buf = tree.with_qp(|qp| tree.read_leaf(qp, leaf)).unwrap();
        assert!(Sherman::image_consistent(&buf));
        assert!(Sherman::front_version(&buf) >= 2);
        server.shutdown();
    }

    #[test]
    fn concurrent_writers_disjoint_keys() {
        let (_f, server, tree) = setup();
        let tree = Arc::new(tree);
        std::thread::scope(|s| {
            for t in 0..6u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..400u64 {
                        let k = (t * 1_000_000 + i).wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes();
                        tree.put(&k, format!("t{t}i{i}").as_bytes()).unwrap();
                    }
                });
            }
        });
        for t in 0..6u64 {
            for i in (0..400u64).step_by(37) {
                let k = (t * 1_000_000 + i).wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes();
                assert_eq!(tree.get(&k).unwrap(), Some(format!("t{t}i{i}").into_bytes()));
            }
        }
        server.shutdown();
    }
}
