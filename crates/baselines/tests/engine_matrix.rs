//! Cross-engine coverage beyond the presets' own tests: Sherman leaf-size
//! variants, multi-dispatcher memory nodes, uneven cluster topologies, and
//! engine behaviour under a slowed fabric.

use std::sync::Arc;

use dlsm::{Cluster, ClusterConfig, ComputeContext, DbConfig, MemNodeHandle};
use dlsm_baselines::{build_dlsm, Engine, EngineDeps, Sherman};
use dlsm_memnode::{MemServer, MemServerConfig};
use rdma_sim::{Fabric, NetworkProfile};

fn server_with(fabric: &Arc<Fabric>, dispatchers: usize) -> MemServer {
    MemServer::start(
        fabric,
        MemServerConfig {
            region_size: 128 << 20,
            flush_zone: 96 << 20,
            compaction_workers: 2,
            dispatchers,
        },
    )
}

#[test]
fn sherman_works_across_leaf_sizes() {
    for leaf in [256usize, 1024, 4096] {
        let fabric = Fabric::new(NetworkProfile::instant());
        let server = server_with(&fabric, 1);
        let ctx = ComputeContext::new(&fabric);
        let mem = MemNodeHandle::from_server(&server);
        let tree = Sherman::with_leaf_size(ctx, mem, leaf).unwrap();
        assert_eq!(tree.leaf_size(), leaf);
        let n = 600u64;
        for i in 0..n {
            tree.put(&i.wrapping_mul(0x9E37_79B9).to_be_bytes(), format!("L{leaf}-{i}").as_bytes())
                .unwrap();
        }
        for i in (0..n).step_by(29) {
            assert_eq!(
                tree.get(&i.wrapping_mul(0x9E37_79B9).to_be_bytes()).unwrap(),
                Some(format!("L{leaf}-{i}").into_bytes()),
                "leaf={leaf} key {i}"
            );
        }
        // Smaller leaves split more.
        if leaf == 256 {
            assert!(tree.leaf_count() > 40, "got {}", tree.leaf_count());
        }
        server.shutdown();
    }
}

#[test]
fn sherman_rejects_oversized_entries() {
    let fabric = Fabric::new(NetworkProfile::instant());
    let server = server_with(&fabric, 1);
    let ctx = ComputeContext::new(&fabric);
    let mem = MemNodeHandle::from_server(&server);
    let tree = Sherman::with_leaf_size(ctx, mem, 256).unwrap();
    // An entry that cannot fit a 256-byte leaf must fail loudly, not loop.
    assert!(tree.put(b"big", &[0u8; 300]).is_err());
    // The tree remains usable.
    tree.put(b"ok", b"small").unwrap();
    assert_eq!(tree.get(b"ok").unwrap(), Some(b"small".to_vec()));
    server.shutdown();
}

#[test]
fn multi_dispatcher_memory_node_serves_concurrent_rpcs() {
    let fabric = Fabric::new(NetworkProfile::instant());
    let server = server_with(&fabric, 3);
    let ctx = ComputeContext::new(&fabric);
    let node_id = server.node_id();
    std::thread::scope(|s| {
        for t in 0..6u64 {
            let fabric = Arc::clone(&fabric);
            let compute = Arc::clone(ctx.node());
            s.spawn(move || {
                let mut client =
                    dlsm_memnode::RpcClient::new(&fabric, &compute, node_id, 4096).unwrap();
                for i in 0..200u64 {
                    let msg = format!("t{t}-{i}");
                    let echo = client
                        .ping(msg.as_bytes(), std::time::Duration::from_secs(10))
                        .unwrap();
                    assert_eq!(echo, msg.as_bytes());
                }
            });
        }
    });
    assert!(server.stats().rpcs.load(std::sync::atomic::Ordering::Relaxed) >= 1200);
    server.shutdown();
}

#[test]
fn uneven_cluster_topologies_round_robin_correctly() {
    // 3 compute nodes x 2 memory nodes with λ = 3: 9 shards over 2 servers —
    // uneven division exercises the flush-window partitioning.
    let fabric = Fabric::new(NetworkProfile::instant());
    let cluster = Cluster::start(
        &fabric,
        ClusterConfig {
            compute_nodes: 3,
            memory_nodes: 2,
            lambda: 3,
            mem_cfg: MemServerConfig {
                region_size: 96 << 20,
                flush_zone: 48 << 20,
                compaction_workers: 2,
                dispatchers: 1,
            },
            db_cfg: DbConfig::small(),
        },
    )
    .unwrap();
    let n = 1_200u64;
    for (c, compute) in cluster.computes().iter().enumerate() {
        for i in 0..n {
            let mut k = i.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes().to_vec();
            k.push(c as u8);
            compute.db.put(&k, format!("c{c}i{i}").as_bytes()).unwrap();
        }
    }
    cluster.wait_until_quiescent();
    for (c, compute) in cluster.computes().iter().enumerate() {
        let mut r = compute.db.reader();
        for i in (0..n).step_by(37) {
            let mut k = i.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes().to_vec();
            k.push(c as u8);
            assert_eq!(r.get(&k).unwrap(), Some(format!("c{c}i{i}").into_bytes()));
        }
    }
    cluster.shutdown();
}

#[test]
fn engines_survive_a_slow_fabric() {
    // A 20x slower network: everything still works, just slower — catches
    // timeout assumptions hidden in the engine paths.
    let fabric = Fabric::new(NetworkProfile::edr_100g().scaled(20.0));
    let server = server_with(&fabric, 1);
    let deps = EngineDeps {
        ctx: ComputeContext::new(&fabric),
        memnodes: vec![MemNodeHandle::from_server(&server)],
    };
    let engine = build_dlsm(&deps, DbConfig::small(), 1).unwrap();
    for i in 0..400u64 {
        engine.put(&i.to_be_bytes(), b"slow").unwrap();
    }
    engine.wait_until_quiescent();
    let mut r = engine.reader();
    for i in (0..400u64).step_by(23) {
        assert_eq!(r.get(&i.to_be_bytes()).unwrap(), Some(b"slow".to_vec()));
    }
    engine.shutdown();
    server.shutdown();
}
