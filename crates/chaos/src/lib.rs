//! Chaos harness: reusable pieces for running the database against a
//! `BTreeMap` model oracle while a seeded [`rdma_sim::ChaosPlan`] drops
//! completions, jitters latency, and blackholes the memory node through a
//! scripted crash window.
//!
//! The actual scenarios live in `tests/crash_oracle.rs`; this library holds
//! the deterministic op-script generator and the crash driver so future
//! chaos suites (multi-node, longer schedules) can share them. Everything is
//! keyed by a single `u64` seed, printed in every panic message — to
//! reproduce a failure, re-run the test whose seed it names.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dlsm_memnode::MemServer;
use dlsm_metrics::MetricsRegistry;
use rdma_sim::ChaosPlan;

/// One scripted operation: `put` (false = delete), key, version counter.
pub type Op = (bool, u64, u64);

/// Deterministic op script from a seed (xorshift64*), 10% deletes — the same
/// generator the fault-free model tests use, so a chaos failure can be
/// cross-checked against the clean run of the identical script.
pub fn script(seed: u64, ops: usize, key_space: u64) -> Vec<Op> {
    let mut x = seed | 1;
    let mut out = Vec::with_capacity(ops);
    for i in 0..ops {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let r = x.wrapping_mul(0x2545F4914F6CDD1D);
        out.push((!r.is_multiple_of(10), r % key_space, i as u64));
    }
    out
}

/// Key encoding: hashed prefix for spread, readable suffix for debugging.
pub fn kb(k: u64) -> Vec<u8> {
    let mut v = k.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes().to_vec();
    v.extend_from_slice(format!("#{k:06}").as_bytes());
    v
}

/// Drives `MemServer::crash()` / `restart()` on a schedule matching a
/// [`rdma_sim::ChaosPlan`] crash window: the fabric blackholes the node's
/// traffic during `[from, until)` while this thread stops and later resumes
/// the server's threads, so both the network and the CPU side of the failure
/// are modeled. Join with [`CrashDriver::join`] to get the server back; join
/// blocks until the restart has happened, so the caller may simply join as
/// soon as its workload is done.
pub struct CrashDriver {
    handle: std::thread::JoinHandle<MemServer>,
}

impl CrashDriver {
    /// Take ownership of `server` and crash/restart it over `[from, until)`
    /// measured from `epoch` (pass the instant the `ChaosPlan` was built).
    pub fn spawn(mut server: MemServer, epoch: Instant, from: Duration, until: Duration) -> Self {
        let handle = std::thread::spawn(move || {
            sleep_until(epoch + from);
            server.crash();
            sleep_until(epoch + until);
            server.restart();
            server
        });
        CrashDriver { handle }
    }

    /// Wait for the crash/restart cycle to complete and recover the server.
    pub fn join(self) -> MemServer {
        self.handle.join().expect("crash driver panicked")
    }
}

fn sleep_until(deadline: Instant) {
    let now = Instant::now();
    if deadline > now {
        std::thread::sleep(deadline - now);
    }
}

/// Export a [`ChaosPlan`]'s live state to `reg`: the seed (so a scrape of a
/// red run names its reproduction), cumulative dropped/blackholed
/// completions, and how many partition/crash windows are open right now.
pub fn register_chaos_metrics(plan: &Arc<ChaosPlan>, reg: &MetricsRegistry) {
    let plan = Arc::clone(plan);
    reg.register(move |out: &mut dlsm_metrics::Sample| {
        out.gauge("chaos_seed", plan.seed() as f64);
        let (partitions, crashes) = plan.active_windows();
        out.gauge("chaos_active_partition_windows", partitions as f64);
        out.gauge("chaos_active_crash_windows", crashes as f64);
        out.counter_with("chaos_dropped_completions", &[], plan.drops());
        out.counter_with("chaos_blackholed_ops", &[], plan.blackholes());
    });
}

/// Dumps a stats report to stderr if the current thread unwinds while the
/// guard is alive — so a failing chaos oracle ships the LSM shape, stall
/// attribution, and remote-memory accounting alongside the panic message.
///
/// The closure runs only on panic; a clean run costs one branch at drop.
pub struct ReportOnPanic<F: Fn() -> String> {
    report: F,
}

impl<F: Fn() -> String> ReportOnPanic<F> {
    /// Arm the guard. `report` is typically
    /// `move || db.stats_report().to_string()` (or the `ShardedDb` form,
    /// which is already a `String`).
    pub fn new(report: F) -> Self {
        ReportOnPanic { report }
    }
}

impl<F: Fn() -> String> Drop for ReportOnPanic<F> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("--- stats report at failure ---\n{}", (self.report)());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_is_deterministic_and_has_deletes() {
        let a = script(0xABCD, 1000, 100);
        assert_eq!(a, script(0xABCD, 1000, 100));
        assert_ne!(a, script(0xABCE, 1000, 100));
        let deletes = a.iter().filter(|(p, _, _)| !p).count();
        assert!(deletes > 0 && deletes < 300, "~10% deletes, got {deletes}");
    }

    #[test]
    fn keys_are_unique_and_ordered_by_hash() {
        let mut keys: Vec<Vec<u8>> = (0..500).map(kb).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 500);
    }

    #[test]
    fn chaos_collector_exports_plan_state() {
        use rdma_sim::NodeId;

        let plan = Arc::new(
            ChaosPlan::new(0xC0FFEE)
                .crash_window(NodeId(1), Duration::ZERO, Duration::from_secs(3600))
                .partition_window(NodeId(2), Duration::from_secs(3600), Duration::from_secs(3601)),
        );
        let reg = MetricsRegistry::new();
        register_chaos_metrics(&plan, &reg);
        let sample = reg.gather();
        assert_eq!(sample.gauge_value("chaos_seed", &[]), Some(0xC0FFEE as f64));
        assert_eq!(sample.gauge_value("chaos_active_crash_windows", &[]), Some(1.0));
        assert_eq!(sample.gauge_value("chaos_active_partition_windows", &[]), Some(0.0));
        let text = reg.render();
        assert!(text.contains("chaos_dropped_completions_total 0"), "{text}");
    }

    #[test]
    fn report_on_panic_is_silent_without_panic() {
        // The closure must not run on a clean drop.
        use std::sync::atomic::{AtomicBool, Ordering};
        let ran = Arc::new(AtomicBool::new(false));
        let flag = ran.clone();
        let guard = ReportOnPanic::new(move || {
            flag.store(true, Ordering::Relaxed);
            String::new()
        });
        drop(guard);
        assert!(!ran.load(Ordering::Relaxed));
    }
}
