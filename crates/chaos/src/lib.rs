//! Chaos harness: reusable pieces for running the database against a
//! `BTreeMap` model oracle while a seeded [`rdma_sim::ChaosPlan`] drops
//! completions, jitters latency, and blackholes the memory node through a
//! scripted crash window.
//!
//! The actual scenarios live in `tests/crash_oracle.rs`; this library holds
//! the deterministic op-script generator and the crash driver so future
//! chaos suites (multi-node, longer schedules) can share them. Everything is
//! keyed by a single `u64` seed, printed in every panic message — to
//! reproduce a failure, re-run the test whose seed it names.

use std::time::{Duration, Instant};

use dlsm_memnode::MemServer;

/// One scripted operation: `put` (false = delete), key, version counter.
pub type Op = (bool, u64, u64);

/// Deterministic op script from a seed (xorshift64*), 10% deletes — the same
/// generator the fault-free model tests use, so a chaos failure can be
/// cross-checked against the clean run of the identical script.
pub fn script(seed: u64, ops: usize, key_space: u64) -> Vec<Op> {
    let mut x = seed | 1;
    let mut out = Vec::with_capacity(ops);
    for i in 0..ops {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let r = x.wrapping_mul(0x2545F4914F6CDD1D);
        out.push((!r.is_multiple_of(10), r % key_space, i as u64));
    }
    out
}

/// Key encoding: hashed prefix for spread, readable suffix for debugging.
pub fn kb(k: u64) -> Vec<u8> {
    let mut v = k.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes().to_vec();
    v.extend_from_slice(format!("#{k:06}").as_bytes());
    v
}

/// Drives `MemServer::crash()` / `restart()` on a schedule matching a
/// [`rdma_sim::ChaosPlan`] crash window: the fabric blackholes the node's
/// traffic during `[from, until)` while this thread stops and later resumes
/// the server's threads, so both the network and the CPU side of the failure
/// are modeled. Join with [`CrashDriver::join`] to get the server back; join
/// blocks until the restart has happened, so the caller may simply join as
/// soon as its workload is done.
pub struct CrashDriver {
    handle: std::thread::JoinHandle<MemServer>,
}

impl CrashDriver {
    /// Take ownership of `server` and crash/restart it over `[from, until)`
    /// measured from `epoch` (pass the instant the `ChaosPlan` was built).
    pub fn spawn(mut server: MemServer, epoch: Instant, from: Duration, until: Duration) -> Self {
        let handle = std::thread::spawn(move || {
            sleep_until(epoch + from);
            server.crash();
            sleep_until(epoch + until);
            server.restart();
            server
        });
        CrashDriver { handle }
    }

    /// Wait for the crash/restart cycle to complete and recover the server.
    pub fn join(self) -> MemServer {
        self.handle.join().expect("crash driver panicked")
    }
}

fn sleep_until(deadline: Instant) {
    let now = Instant::now();
    if deadline > now {
        std::thread::sleep(deadline - now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_is_deterministic_and_has_deletes() {
        let a = script(0xABCD, 1000, 100);
        assert_eq!(a, script(0xABCD, 1000, 100));
        assert_ne!(a, script(0xABCE, 1000, 100));
        let deletes = a.iter().filter(|(p, _, _)| !p).count();
        assert!(deletes > 0 && deletes < 300, "~10% deletes, got {deletes}");
    }

    #[test]
    fn keys_are_unique_and_ordered_by_hash() {
        let mut keys: Vec<Vec<u8>> = (0..500).map(kb).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 500);
    }
}
