//! Model-oracle chaos runs (ISSUE acceptance): with ≥1% of Send and Write
//! completions dropped, latency jitter, and one scripted crash-restart of
//! the memory node mid-run, a 10k-op script must still behave exactly like
//! a `BTreeMap` — zero lost acknowledged writes, zero stale reads — and the
//! retried flush/compaction RPCs must leak no remote memory: after the run,
//! each zone allocator's `in_use()` equals exactly the bytes referenced by
//! the surviving version.
//!
//! Every assertion carries the seed; reproduce with the test that names it.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dlsm::handle::Origin;
use dlsm::{CacheConfig, ComputeContext, Db, DbConfig, DbReader, MemNodeHandle};
use dlsm_chaos::{kb, script, CrashDriver};
use dlsm_memnode::{MemServer, MemServerConfig, RetryPolicy};
use dlsm_telemetry::OpClass;
use rdma_sim::{ChaosPlan, Fabric, NetworkProfile, Verb};

const KEY_SPACE: u64 = 1_200;
const OPS: usize = 10_000;
// The raw 10k-op script completes in well under 100 ms on the instant
// profile, so the workload is paced (a short sleep every few ops) to span
// the crash window — otherwise the crash would only ever hit background
// flush/compaction, never foreground traffic.
const PACE_EVERY: usize = 16;
const PACE: Duration = Duration::from_millis(1);
const CRASH_FROM: Duration = Duration::from_millis(250);
const CRASH_UNTIL: Duration = Duration::from_millis(550);

/// A point read that rides through the crash window: transient errors are
/// retried for up to ~2.5 s; `None` means the node stayed unreachable (the
/// caller skips the check rather than failing on unavailability — chaos
/// tests assert *correctness*, availability is the retry policy's job).
fn read_with_retry(reader: &mut DbReader, key: &[u8]) -> Option<Option<Vec<u8>>> {
    for _ in 0..100 {
        match reader.get(key) {
            Ok(v) => return Some(v),
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    None
}

fn chaos_config() -> DbConfig {
    DbConfig {
        // Short write-completion poll: a dropped flush WRITE fails the flush
        // quickly (freeing its extent) and the flush loop retries.
        flush_poll_timeout: Duration::from_millis(300),
        // Generous retry budget so RPCs ride out the crash window instead of
        // surfacing errors; reconnect covers the restarted node.
        rpc_retry: RetryPolicy {
            max_attempts: 24,
            backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            reconnect_after: 2,
            // Fail blackholed attempts fast; the 120 s compaction call
            // timeout would otherwise burn seconds per attempt during the
            // crash window.
            attempt_timeout: Some(Duration::from_millis(200)),
        },
        // Chaos runs with the read cache ON (ISSUE 7): dropped completions,
        // the crash window and compaction-driven invalidation must never
        // make a cached read diverge from the model. Aggressive promotion
        // so the hot-extent path is exercised, not just flush mirroring.
        cache: CacheConfig {
            capacity_bytes: 8 << 20,
            promote_extent_after: 2,
            ..CacheConfig::default()
        },
        ..DbConfig::small()
    }
}

fn run_chaos(seed: u64) {
    let fabric = Fabric::new(NetworkProfile::instant());
    let server = MemServer::start(
        &fabric,
        MemServerConfig {
            region_size: 128 << 20,
            flush_zone: 64 << 20,
            compaction_workers: 2,
            dispatchers: 1,
        },
    );
    let mem_node = server.node_id();
    let ctx = ComputeContext::new(&fabric);
    let mem = MemNodeHandle::from_server(&server);
    let db = Db::open(ctx, mem, chaos_config()).unwrap();

    // Flight recorder: trace the whole chaos run; if any oracle below
    // panics, the rings are dumped as a Perfetto-loadable trace so the red
    // run ships the evidence (cross-node spans included).
    dlsm_trace::set_enabled(true);
    let _trace_dump = dlsm_trace::PanicDump::new(format!("results/chaos_trace_{seed:x}.json"));

    // And the LSM shape / stall / remote-memory snapshot goes to stderr on
    // any failed assertion below.
    let _stats_dump = dlsm_chaos::ReportOnPanic::new(|| db.stats_report().to_string());

    let epoch = Instant::now();
    let plan = Arc::new(
        ChaosPlan::new(seed)
            .drop(Verb::Send, 0.02)
            .drop(Verb::Write, 0.015)
            .drop(Verb::FetchAdd, 0.01)
            .jitter(Verb::Read, Duration::from_micros(80))
            .jitter(Verb::Write, Duration::from_micros(80))
            .crash_window(mem_node, CRASH_FROM, CRASH_UNTIL),
    );
    fabric.set_fault_hook(Some(plan.clone()));
    let driver = CrashDriver::spawn(server, epoch, CRASH_FROM, CRASH_UNTIL);

    // Single-threaded workload against the model. Acked mutations are
    // recorded in the model the moment the call returns; anything the model
    // holds must be readable afterwards (no lost acked writes).
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut reader = db.reader();
    let mut checked = 0u64;
    let mut skipped = 0u64;
    for (i, (is_put, k, version)) in script(seed, OPS, KEY_SPACE).into_iter().enumerate() {
        if is_put {
            let value = format!("v{k}@{version}").into_bytes();
            db.put(&kb(k), &value)
                .unwrap_or_else(|e| panic!("seed {seed:#x}: put op {i} failed: {e:?}"));
            model.insert(k, value);
        } else {
            db.delete(&kb(k))
                .unwrap_or_else(|e| panic!("seed {seed:#x}: delete op {i} failed: {e:?}"));
            model.remove(&k);
        }
        // Interleaved checked reads: the writer just acked this mutation, so
        // a read of the same key must observe the model's value exactly —
        // a stale read here means a retry resurrected an old version.
        if i % PACE_EVERY == 0 {
            std::thread::sleep(PACE);
        }
        if i % 97 == 0 {
            match read_with_retry(&mut reader, &kb(k)) {
                Some(got) => {
                    assert_eq!(
                        got,
                        model.get(&k).cloned(),
                        "seed {seed:#x}: stale read of key {k} at op {i}"
                    );
                    checked += 1;
                }
                None => skipped += 1, // node unreachable (crash window)
            }
        }
    }

    // Recover the server (join blocks until the restart happened), then
    // lift the chaos for verification: the question is whether the damage
    // done *during* the run corrupted anything, not whether verification
    // itself can fail.
    let server = driver.join();
    assert!(!server.is_crashed(), "seed {seed:#x}: driver left the node down");
    assert_eq!(
        server.stats().restarts.load(Ordering::Relaxed),
        1,
        "seed {seed:#x}: expected exactly one restart"
    );
    assert!(
        plan.drops() > 0,
        "seed {seed:#x}: chaos plan never dropped a completion — schedule too weak"
    );
    assert!(
        plan.blackholes() > 0,
        "seed {seed:#x}: crash window blackholed nothing — workload missed it"
    );
    assert!(
        checked > 50,
        "seed {seed:#x}: only {checked} mid-run reads verified ({skipped} skipped)"
    );
    fabric.set_fault_hook(None);

    db.force_flush()
        .unwrap_or_else(|e| panic!("seed {seed:#x}: post-chaos flush failed: {e:?}"));
    db.wait_until_quiescent();

    // Zero lost acked writes / zero stale reads: every key agrees with the
    // model, present and absent alike, then the full scan agrees in order.
    // Each key is read TWICE: the first read may miss the cache and fill it
    // from the fabric (an uncached read), the second is the cached replay —
    // both must be byte-identical to the model, so a cached read can never
    // diverge from its uncached twin even after crash-window compactions
    // invalidated and re-filled entries mid-run.
    let cache_before = db.cache_stats().expect("chaos runs with the cache on");
    for k in 0..KEY_SPACE {
        let got = reader
            .get(&kb(k))
            .unwrap_or_else(|e| panic!("seed {seed:#x}: final read of key {k} failed: {e:?}"));
        assert_eq!(got, model.get(&k).cloned(), "seed {seed:#x}: key {k} diverged");
        let replay = reader
            .get(&kb(k))
            .unwrap_or_else(|e| panic!("seed {seed:#x}: cached re-read of key {k} failed: {e:?}"));
        assert_eq!(replay, got, "seed {seed:#x}: cached re-read of key {k} diverged");
    }
    let cache_after = db.cache_stats().unwrap();
    assert!(
        cache_after.bytes_saved > cache_before.bytes_saved,
        "seed {seed:#x}: double-read sweep of {KEY_SPACE} keys saved no fabric bytes"
    );
    let want: Vec<(Vec<u8>, Vec<u8>)> = {
        let mut v: Vec<_> = model.iter().map(|(k, val)| (kb(*k), val.clone())).collect();
        v.sort();
        v
    };
    let got: Vec<(Vec<u8>, Vec<u8>)> = reader
        .scan(b"")
        .unwrap_or_else(|e| panic!("seed {seed:#x}: scan failed: {e:?}"))
        .map(|i| i.unwrap_or_else(|e| panic!("seed {seed:#x}: scan item failed: {e:?}")))
        .collect();
    assert_eq!(got, want, "seed {seed:#x}: scan diverged");

    // Telemetry consistency (DESIGN.md §8): drops, retries and the
    // crash-restart must leave the counters coherent with each other, not
    // just the data intact.
    //
    // 1. Every acked single-key mutation recorded exactly one Put latency
    //    sample — retries dedup to one ack, so the histogram must agree
    //    with the put/delete counters, not the attempt count.
    let tel = db.telemetry_snapshot();
    let stats = db.stats().snapshot();
    assert_eq!(
        tel.op(OpClass::Put).count(),
        stats.puts + stats.deletes,
        "seed {seed:#x}: put histogram diverged from acked-op counters"
    );
    // 2. Everything the flush path accounted as durably written crossed the
    //    fabric as RDMA WRITEs; dropped completions and retried flushes can
    //    only push fabric write bytes *above* the accounted flush bytes.
    let fab = fabric.stats().snapshot();
    let written = fab.bytes(Verb::Write) + fab.bytes(Verb::WriteImm);
    assert!(
        written >= stats.flush_bytes,
        "seed {seed:#x}: fabric write bytes ({written}) below accounted flush bytes ({})",
        stats.flush_bytes
    );
    // 3. Dedup bookkeeping: the server only replays (or drops a duplicate
    //    of) a request some client retransmitted, so replays + dup-drops
    //    are bounded by the clients' aggregate retry count — and a crash
    //    window this disruptive must have caused at least one retry.
    let (retries, reconnects) = db.telemetry().net.totals();
    let replayed = server.stats().replays.load(Ordering::Relaxed)
        + server.stats().dup_dropped.load(Ordering::Relaxed);
    assert!(
        replayed <= retries,
        "seed {seed:#x}: {replayed} server replays/dup-drops but only {retries} client retries"
    );
    assert!(
        retries > 0,
        "seed {seed:#x}: crash window caused no RPC retries ({reconnects} reconnects)"
    );
    // 4. Read-cache coherence: the counters must reconcile with each other
    //    and with the fabric even after drops, retries and the restart.
    //    Every resident entry was admitted exactly once, so admissions
    //    bound removals; bytes the cache claims to have saved require at
    //    least one hit; occupancy respects the budget; and once compaction
    //    obsoleted tables, the version fence must have purged entries.
    let cs = cache_after;
    assert!(cs.hits() > 0, "seed {seed:#x}: cache served no hits in a 10k-op run");
    assert!(cs.bytes_saved > 0, "seed {seed:#x}: cache hits saved no fabric bytes");
    assert!(
        cs.inserts >= cs.evictions + cs.invalidations,
        "seed {seed:#x}: cache removed more entries ({} evicted + {} invalidated) than it admitted ({})",
        cs.evictions,
        cs.invalidations,
        cs.inserts
    );
    assert!(
        cs.resident_bytes <= cs.capacity_bytes,
        "seed {seed:#x}: cache over budget ({} / {} B)",
        cs.resident_bytes,
        cs.capacity_bytes
    );
    if stats.compactions > 0 {
        assert!(
            cs.invalidations > 0,
            "seed {seed:#x}: {} compactions obsoleted tables but the cache purged nothing",
            stats.compactions
        );
    }
    // Bytes the cache claims to have saved are real avoided fabric READs:
    // after the double-read sweep warmed every live table, a third full
    // sweep must be served entirely from local blocks and extents — zero
    // fabric READ bytes (the one-RTT point read became zero-RTT) — while
    // staying byte-identical to the model.
    let warm_read_before = fabric.stats().snapshot().bytes(Verb::Read);
    let warm_saved_before = db.cache_stats().unwrap().bytes_saved;
    for k in 0..KEY_SPACE {
        let got = reader
            .get(&kb(k))
            .unwrap_or_else(|e| panic!("seed {seed:#x}: warm read of key {k} failed: {e:?}"));
        assert_eq!(got, model.get(&k).cloned(), "seed {seed:#x}: warm key {k} diverged");
    }
    let warm_read_delta =
        fabric.stats().snapshot().bytes(Verb::Read).saturating_sub(warm_read_before);
    assert_eq!(
        warm_read_delta, 0,
        "seed {seed:#x}: fully warm sweep still read {warm_read_delta} B from the fabric"
    );
    assert!(
        db.cache_stats().unwrap().bytes_saved > warm_saved_before,
        "seed {seed:#x}: warm sweep was not served by the cache"
    );

    // Leak accounting: sum the extents the surviving version references,
    // by zone; after shutdown drains the GC queue, each allocator must hold
    // exactly those bytes. A retried flush that double-allocated, or a
    // dropped compaction reply whose outputs were never reclaimed, shows up
    // here as in_use > live.
    let mut flush_live = 0u64;
    let mut compact_live = 0u64;
    for (origin, _offset, len) in db.live_extents() {
        match origin {
            Origin::Compute => flush_live += len,
            Origin::MemNode => compact_live += len,
            Origin::External => panic!("seed {seed:#x}: unexpected external extent"),
        }
    }
    drop(reader);
    db.shutdown();
    assert_eq!(
        db.remote_flush_in_use(),
        flush_live,
        "seed {seed:#x}: flush zone leaked (live tables hold {flush_live} B)"
    );
    assert_eq!(
        server.compaction_zone_in_use(),
        compact_live,
        "seed {seed:#x}: compaction zone leaked (live tables hold {compact_live} B)"
    );
    server.shutdown();
}

#[test]
fn chaos_oracle_seed_1() {
    run_chaos(0x5EED_0001);
}

#[test]
fn chaos_oracle_seed_2() {
    run_chaos(0x5EED_0002);
}

#[test]
fn chaos_oracle_seed_3() {
    run_chaos(0x5EED_0003);
}
