//! Runnable chaos demo: a seeded fault schedule (dropped completions,
//! latency jitter, one crash-restart of the memory node) under a live
//! workload, with a model-oracle verdict at the end.
//!
//! ```text
//! cargo run --release -p dlsm-chaos --example crash_demo [seed-hex]
//! ```
//!
//! Prints what the schedule actually did (drops, blackholed verbs, restart)
//! and whether the store still agrees byte-for-byte with an in-memory
//! model. The integration tests in `tests/crash_oracle.rs` assert the same
//! invariants across fixed seeds; this example exists to poke the harness
//! interactively with a seed of your choice.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dlsm::{ComputeContext, Db, DbConfig, MemNodeHandle};
use dlsm_chaos::{kb, script, CrashDriver};
use dlsm_memnode::{MemServer, MemServerConfig, RetryPolicy};
use rdma_sim::{ChaosPlan, Fabric, NetworkProfile, Verb};

const OPS: usize = 10_000;
const KEY_SPACE: u64 = 1_200;
const CRASH_FROM: Duration = Duration::from_millis(250);
const CRASH_UNTIL: Duration = Duration::from_millis(550);

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("seed is hex"))
        .unwrap_or(0x5EED_0001);
    println!("chaos demo: seed {seed:#x}, {OPS} ops over {KEY_SPACE} keys");
    println!(
        "schedule: drop 2% Send / 1.5% Write / 1% FetchAdd, 80µs jitter, \
         crash window [{CRASH_FROM:?}, {CRASH_UNTIL:?})"
    );

    let fabric = Fabric::new(NetworkProfile::instant());
    let server = MemServer::start(
        &fabric,
        MemServerConfig {
            region_size: 128 << 20,
            flush_zone: 64 << 20,
            compaction_workers: 2,
            dispatchers: 1,
        },
    );
    let mem_node = server.node_id();
    let db = Db::open(
        ComputeContext::new(&fabric),
        MemNodeHandle::from_server(&server),
        DbConfig {
            flush_poll_timeout: Duration::from_millis(300),
            rpc_retry: RetryPolicy {
                max_attempts: 24,
                backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(100),
                reconnect_after: 2,
                attempt_timeout: Some(Duration::from_millis(200)),
            },
            ..DbConfig::small()
        },
    )
    .unwrap();

    let epoch = Instant::now();
    let plan = Arc::new(
        ChaosPlan::new(seed)
            .drop(Verb::Send, 0.02)
            .drop(Verb::Write, 0.015)
            .drop(Verb::FetchAdd, 0.01)
            .jitter(Verb::Read, Duration::from_micros(80))
            .jitter(Verb::Write, Duration::from_micros(80))
            .crash_window(mem_node, CRASH_FROM, CRASH_UNTIL),
    );
    fabric.set_fault_hook(Some(plan.clone()));
    let driver = CrashDriver::spawn(server, epoch, CRASH_FROM, CRASH_UNTIL);

    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for (i, (is_put, k, version)) in script(seed, OPS, KEY_SPACE).into_iter().enumerate() {
        if is_put {
            let value = format!("v{k}@{version}").into_bytes();
            db.put(&kb(k), &value).expect("acked put");
            model.insert(k, value);
        } else {
            db.delete(&kb(k)).expect("acked delete");
            model.remove(&k);
        }
        if i % 16 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let server = driver.join();
    println!(
        "survived: {} completions dropped, {} blackholed, {} restart(s), node up: {}",
        plan.drops(),
        plan.blackholes(),
        server.stats().restarts.load(Ordering::Relaxed),
        !server.is_crashed(),
    );
    fabric.set_fault_hook(None);

    db.force_flush().expect("post-chaos flush");
    db.wait_until_quiescent();
    let mut reader = db.reader();
    let mut diverged = 0usize;
    for k in 0..KEY_SPACE {
        if reader.get(&kb(k)).expect("final read") != model.get(&k).cloned() {
            diverged += 1;
        }
    }
    db.shutdown();
    server.shutdown();
    if diverged == 0 {
        println!("oracle: all {KEY_SPACE} keys match the model — no lost acked writes");
    } else {
        println!("oracle: {diverged} keys DIVERGED from the model");
        std::process::exit(1);
    }
}
